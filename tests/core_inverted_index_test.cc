#include "core/inverted_index.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "util/random.h"

namespace skewsearch {
namespace {

TEST(FilterTableTest, EmptyTable) {
  FilterTable table;
  table.Freeze();
  EXPECT_EQ(table.num_pairs(), 0u);
  EXPECT_EQ(table.num_keys(), 0u);
  EXPECT_TRUE(table.Lookup(42).empty());
}

TEST(FilterTableTest, SingleKey) {
  FilterTable table;
  table.Add(7, 1);
  table.Add(7, 3);
  table.Add(7, 2);
  table.Freeze();
  auto postings = table.Lookup(7);
  EXPECT_EQ(std::vector<VectorId>(postings.begin(), postings.end()),
            (std::vector<VectorId>{1, 2, 3}));
  EXPECT_TRUE(table.Lookup(8).empty());
  EXPECT_EQ(table.num_keys(), 1u);
  EXPECT_EQ(table.num_pairs(), 3u);
}

TEST(FilterTableTest, MultipleKeysSortedLookups) {
  FilterTable table;
  table.Add(100, 5);
  table.Add(1, 0);
  table.Add(50, 9);
  table.Add(1, 4);
  table.Freeze();
  EXPECT_EQ(table.num_keys(), 3u);
  EXPECT_EQ(table.Lookup(1).size(), 2u);
  EXPECT_EQ(table.Lookup(50).size(), 1u);
  EXPECT_EQ(table.Lookup(100)[0], 5u);
  EXPECT_TRUE(table.Lookup(0).empty());
  EXPECT_TRUE(table.Lookup(101).empty());
  EXPECT_TRUE(table.Lookup(51).empty());
}

TEST(FilterTableTest, DuplicatePairsKept) {
  // The same (key, id) may be added twice (an element can choose the same
  // path in... it cannot within one repetition, but the table must not
  // assume it). Both entries survive.
  FilterTable table;
  table.Add(9, 2);
  table.Add(9, 2);
  table.Freeze();
  EXPECT_EQ(table.Lookup(9).size(), 2u);
}

TEST(FilterTableTest, PropertyMatchesReferenceMultimap) {
  Rng rng(11);
  FilterTable table;
  std::map<uint64_t, std::multiset<VectorId>> reference;
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.NextBounded(500);
    VectorId id = static_cast<VectorId>(rng.NextBounded(100));
    table.Add(key, id);
    reference[key].insert(id);
  }
  table.Freeze();
  EXPECT_EQ(table.num_keys(), reference.size());
  for (const auto& [key, ids] : reference) {
    auto postings = table.Lookup(key);
    std::multiset<VectorId> got(postings.begin(), postings.end());
    EXPECT_EQ(got, ids) << "key " << key;
  }
  // Absent keys.
  for (uint64_t key = 500; key < 600; ++key) {
    EXPECT_TRUE(table.Lookup(key).empty());
  }
}

TEST(FilterTableTest, MemoryBytesPositiveAfterFreeze) {
  FilterTable table;
  for (uint64_t k = 0; k < 100; ++k) table.Add(k, static_cast<VectorId>(k));
  table.Freeze();
  EXPECT_GT(table.MemoryBytes(), 100 * sizeof(uint64_t));
}

TEST(FilterTableTest, NumPairsConsistentBeforeAndAfterFreeze) {
  FilterTable table;
  EXPECT_FALSE(table.frozen());
  EXPECT_EQ(table.num_pairs(), 0u);
  table.Add(3, 1);
  table.Add(3, 1);  // duplicate pair: counted in both states
  table.Add(9, 2);
  EXPECT_EQ(table.num_pairs(), 3u);
  EXPECT_EQ(table.num_keys(), 0u);  // keys exist only once frozen
  table.Freeze();
  EXPECT_TRUE(table.frozen());
  EXPECT_EQ(table.num_pairs(), 3u);
  EXPECT_EQ(table.num_keys(), 2u);
}

TEST(FilterTableTest, EmptyFrozenTableStaysEmptyAndFrozen) {
  // A frozen table with zero pairs must not be mistaken for an unfrozen
  // one (the old ids_.empty() heuristic could not tell them apart).
  FilterTable table;
  table.Freeze();
  EXPECT_TRUE(table.frozen());
  EXPECT_EQ(table.num_pairs(), 0u);
  EXPECT_EQ(table.num_keys(), 0u);
  EXPECT_TRUE(table.Lookup(0).empty());
}

TEST(FilterTableTest, MemoryBytesTracksBothStates) {
  FilterTable building;
  EXPECT_EQ(building.MemoryBytes(), 0u);
  for (uint64_t k = 0; k < 1000; ++k) {
    building.Add(k % 37, static_cast<VectorId>(k));
  }
  const size_t staged = building.MemoryBytes();
  EXPECT_GT(staged, 0u);  // staging pairs are real heap usage
  building.Freeze();
  const size_t frozen = building.MemoryBytes();
  EXPECT_GT(frozen, 0u);
  // Freeze() releases the 16-byte staging pairs for ~12 bytes/pair of
  // frozen postings (plus key/offset overhead), so the footprint drops.
  EXPECT_LT(frozen, staged);
}

TEST(FilterTableTest, FrozenMemoryBytesMatchesSerializedCopy) {
  // The frozen footprint must not depend on how the table reached the
  // frozen state: a fresh Freeze() and a ReadFrom() round-trip of the
  // same table report the same MemoryBytes().
  FilterTable table;
  Rng rng(23);
  for (int i = 0; i < 4096; ++i) {
    table.Add(rng.NextBounded(700), static_cast<VectorId>(rng.NextBounded(99)));
  }
  table.Freeze();
  std::stringstream buffer;
  ASSERT_TRUE(table.WriteTo(&buffer).ok());
  FilterTable loaded;
  ASSERT_TRUE(loaded.ReadFrom(&buffer).ok());
  EXPECT_TRUE(loaded.frozen());
  EXPECT_EQ(loaded.num_pairs(), table.num_pairs());
  EXPECT_EQ(loaded.num_keys(), table.num_keys());
  EXPECT_EQ(loaded.MemoryBytes(), table.MemoryBytes());
}

TEST(FilterTableTest, ReserveDoesNotAffectContents) {
  FilterTable table;
  table.Reserve(1000);
  table.Add(5, 1);
  table.Freeze();
  EXPECT_EQ(table.Lookup(5).size(), 1u);
}

TEST(FilterTableTest, SerializationRoundTrip) {
  Rng rng(21);
  FilterTable table;
  for (int i = 0; i < 2000; ++i) {
    table.Add(rng.NextBounded(300), static_cast<VectorId>(rng.NextBounded(64)));
  }
  table.Freeze();

  std::stringstream buffer;
  ASSERT_TRUE(table.WriteTo(&buffer).ok());
  FilterTable loaded;
  ASSERT_TRUE(loaded.ReadFrom(&buffer).ok());
  EXPECT_EQ(loaded.num_keys(), table.num_keys());
  EXPECT_EQ(loaded.num_pairs(), table.num_pairs());
  for (uint64_t key = 0; key < 310; ++key) {
    auto a = table.Lookup(key);
    auto b = loaded.Lookup(key);
    ASSERT_EQ(a.size(), b.size()) << key;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(FilterTableTest, SerializationRejectsCorruption) {
  FilterTable table;
  table.Add(1, 2);
  table.Add(3, 4);
  table.Freeze();
  std::stringstream buffer;
  ASSERT_TRUE(table.WriteTo(&buffer).ok());
  std::string payload = buffer.str();

  // Truncated stream.
  std::stringstream truncated(payload.substr(0, payload.size() / 2));
  FilterTable loaded;
  EXPECT_TRUE(loaded.ReadFrom(&truncated).IsInvalidArgument());

  // Flipped byte inside the key array breaks the sorted-keys invariant.
  std::string corrupt = payload;
  corrupt[9] = static_cast<char>(0xff);
  std::stringstream corrupted(corrupt);
  EXPECT_FALSE(loaded.ReadFrom(&corrupted).ok());

  // Null stream argument.
  EXPECT_TRUE(loaded.ReadFrom(nullptr).IsInvalidArgument());
  EXPECT_TRUE(table.WriteTo(nullptr).IsInvalidArgument());
}

TEST(FilterTableTest, EmptyTableSerializationRoundTrip) {
  FilterTable table;
  table.Freeze();
  std::stringstream buffer;
  ASSERT_TRUE(table.WriteTo(&buffer).ok());
  FilterTable loaded;
  ASSERT_TRUE(loaded.ReadFrom(&buffer).ok());
  EXPECT_EQ(loaded.num_keys(), 0u);
  EXPECT_TRUE(loaded.Lookup(0).empty());
}

}  // namespace
}  // namespace skewsearch
