// Copyright 2026 The skewsearch Authors.
// FastSketcher: the early-exit pass must be bit-identical to the
// unpruned reference, and the agreement estimator must track Jaccard.

#include "hashing/sketch.h"

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace skewsearch {
namespace {

std::vector<ItemId> RandomSet(std::mt19937_64* rng, size_t size,
                              uint32_t universe) {
  std::uniform_int_distribution<uint32_t> pick(0, universe - 1);
  std::vector<ItemId> items;
  items.reserve(size);
  for (size_t i = 0; i < size; ++i) items.push_back(pick(*rng));
  return items;
}

TEST(FastSketcher, EmptySetIsAllInfinite) {
  FastSketcher sketcher(16, 7);
  std::vector<double> sketch;
  sketcher.Sketch({}, &sketch);
  ASSERT_EQ(sketch.size(), 16u);
  for (double v : sketch) {
    EXPECT_EQ(v, std::numeric_limits<double>::infinity());
  }
}

TEST(FastSketcher, SingleElementFillsEveryCoordinate) {
  FastSketcher sketcher(64, 123);
  std::vector<ItemId> one = {42};
  std::vector<double> sketch;
  sketcher.Sketch(one, &sketch);
  ASSERT_EQ(sketch.size(), 64u);
  for (double v : sketch) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// The load-bearing test: the pruning rule is a pure no-op on the output.
TEST(FastSketcher, PrunedMatchesReferenceBitForBit) {
  std::mt19937_64 rng(0xfeedULL);
  for (uint32_t t : {1u, 4u, 16u, 64u, 128u}) {
    for (size_t size : {1u, 2u, 7u, 50u, 500u}) {
      FastSketcher sketcher(t, rng());
      auto items = RandomSet(&rng, size, 1u << 20);
      std::vector<double> fast, reference;
      sketcher.Sketch(items, &fast);
      sketcher.SketchReference(items, &reference);
      ASSERT_EQ(fast, reference) << "t=" << t << " size=" << size;
    }
  }
}

TEST(FastSketcher, DeterministicAndSeedSensitive) {
  std::mt19937_64 rng(99);
  auto items = RandomSet(&rng, 100, 1u << 16);
  FastSketcher a(32, 1), b(32, 1), c(32, 2);
  std::vector<double> sa, sb, sc;
  a.Sketch(items, &sa);
  b.Sketch(items, &sb);
  c.Sketch(items, &sc);
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

TEST(FastSketcher, DuplicatesDoNotChangeTheSketch) {
  FastSketcher sketcher(32, 5);
  std::vector<ItemId> once = {3, 8, 21};
  std::vector<ItemId> twice = {3, 8, 21, 3, 8, 21};
  std::vector<double> a, b;
  sketcher.Sketch(once, &a);
  sketcher.Sketch(twice, &b);
  EXPECT_EQ(a, b);
}

TEST(FastSketcher, IdenticalSetsEstimateOne) {
  std::mt19937_64 rng(4);
  auto items = RandomSet(&rng, 200, 1u << 18);
  FastSketcher sketcher(128, 11);
  std::vector<double> a, b;
  sketcher.Sketch(items, &a);
  sketcher.Sketch(items, &b);
  EXPECT_EQ(FastSketcher::EstimateSimilarity(a, b), 1.0);
}

TEST(FastSketcher, DisjointSetsEstimateNearZero) {
  FastSketcher sketcher(512, 21);
  std::vector<ItemId> a_items, b_items;
  for (ItemId i = 0; i < 300; ++i) a_items.push_back(i);
  for (ItemId i = 1000; i < 1300; ++i) b_items.push_back(i);
  std::vector<double> a, b;
  sketcher.Sketch(a_items, &a);
  sketcher.Sketch(b_items, &b);
  EXPECT_LT(FastSketcher::EstimateSimilarity(a, b), 0.05);
}

TEST(FastSketcher, EstimateTracksJaccard) {
  // |A| = |B| = 100 with 50 shared: J = 50 / 150 = 1/3. Averaged over
  // seeds so the tolerance reflects the estimator's concentration, not
  // one draw's luck.
  std::vector<ItemId> a_items, b_items;
  for (ItemId i = 0; i < 100; ++i) a_items.push_back(i);
  for (ItemId i = 50; i < 150; ++i) b_items.push_back(i);
  double sum = 0.0;
  const int trials = 8;
  for (int trial = 0; trial < trials; ++trial) {
    FastSketcher sketcher(1024, 1000 + static_cast<uint64_t>(trial));
    std::vector<double> a, b;
    sketcher.Sketch(a_items, &a);
    sketcher.Sketch(b_items, &b);
    sum += FastSketcher::EstimateSimilarity(a, b);
  }
  EXPECT_NEAR(sum / trials, 1.0 / 3.0, 0.05);
}

TEST(FastSketcher, ClassicMinHashTracksJaccardToo) {
  std::vector<ItemId> a_items, b_items;
  for (ItemId i = 0; i < 100; ++i) a_items.push_back(i);
  for (ItemId i = 50; i < 150; ++i) b_items.push_back(i);
  FastSketcher sketcher(2048, 77);
  std::vector<double> a, b;
  sketcher.SketchClassic(a_items, &a);
  sketcher.SketchClassic(b_items, &b);
  EXPECT_NEAR(FastSketcher::EstimateSimilarity(a, b), 1.0 / 3.0, 0.06);
}

}  // namespace
}  // namespace skewsearch
