// Tests for the distributed join's wire codec: randomized round-trip
// property tests over every frame type, and the negative paths the
// spec (docs/WIRE_PROTOCOL.md) requires a decoder to reject — corrupt
// magic/version/type, truncated frames at every prefix, and oversized
// count fields that must fail before allocating anything.

#include "distributed/transport/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/random.h"

namespace skewsearch {
namespace wire {
namespace {

std::vector<uint8_t> HeaderBytes(FrameType type, uint32_t length,
                                 uint8_t version = kVersionMax) {
  std::vector<uint8_t> bytes;
  AppendFrameHeader(type, length, version, &bytes);
  return bytes;
}

TEST(DistributedWireTest, FrameHeaderRoundTrip) {
  std::vector<uint8_t> bytes = HeaderBytes(FrameType::kProbeBatch, 12345);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(bytes, &header).ok());
  EXPECT_EQ(header.type, FrameType::kProbeBatch);
  EXPECT_EQ(header.payload_length, 12345u);
  EXPECT_EQ(header.version, kVersionMax);
}

TEST(DistributedWireTest, FrameHeaderRejectsCorruptMagic) {
  std::vector<uint8_t> bytes = HeaderBytes(FrameType::kHello, 0);
  for (size_t byte = 0; byte < 4; ++byte) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[byte] ^= 0x40;
    FrameHeader header;
    EXPECT_FALSE(DecodeFrameHeader(corrupt, &header).ok())
        << "flipped magic byte " << byte;
  }
}

TEST(DistributedWireTest, FrameHeaderRejectsBadVersion) {
  FrameHeader header;
  EXPECT_FALSE(
      DecodeFrameHeader(HeaderBytes(FrameType::kHello, 0, 0), &header).ok());
  EXPECT_FALSE(
      DecodeFrameHeader(HeaderBytes(FrameType::kHello, 0, kVersionMax + 1),
                        &header)
          .ok());
}

TEST(DistributedWireTest, FrameHeaderRejectsUnknownTypeAndReservedBits) {
  std::vector<uint8_t> bytes = HeaderBytes(FrameType::kHello, 0);
  std::vector<uint8_t> bad_type = bytes;
  bad_type[5] = 0;  // type field
  FrameHeader header;
  EXPECT_FALSE(DecodeFrameHeader(bad_type, &header).ok());
  bad_type[5] = 99;
  EXPECT_FALSE(DecodeFrameHeader(bad_type, &header).ok());

  std::vector<uint8_t> bad_reserved = bytes;
  bad_reserved[6] = 1;  // reserved u16
  EXPECT_FALSE(DecodeFrameHeader(bad_reserved, &header).ok());
}

TEST(DistributedWireTest, FrameHeaderRejectsOversizedPayloadLength) {
  // A header announcing more than kMaxFramePayload must be rejected
  // before any payload is read — this is the transport's allocation
  // bound.
  std::vector<uint8_t> bytes =
      HeaderBytes(FrameType::kAssignment, kMaxFramePayload);
  FrameHeader header;
  EXPECT_TRUE(DecodeFrameHeader(bytes, &header).ok());
  const uint32_t oversized = kMaxFramePayload + 1;
  std::memcpy(bytes.data() + 8, &oversized, sizeof(oversized));
  EXPECT_FALSE(DecodeFrameHeader(bytes, &header).ok());
}

TEST(DistributedWireTest, FrameHeaderRejectsShortBuffer) {
  std::vector<uint8_t> bytes = HeaderBytes(FrameType::kHello, 0);
  FrameHeader header;
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeFrameHeader(
                     std::span<const uint8_t>(bytes.data(), len), &header)
                     .ok())
        << "prefix " << len;
  }
}

TEST(DistributedWireTest, HelloRoundTripAndValidation) {
  HelloFrame hello;
  hello.min_version = 1;
  hello.max_version = 3;
  hello.worker_id = 2;
  hello.num_workers = 7;
  Frame frame = EncodeHello(hello);
  EXPECT_EQ(frame.type, FrameType::kHello);
  HelloFrame decoded;
  ASSERT_TRUE(DecodeHello(frame, &decoded).ok());
  EXPECT_EQ(decoded.min_version, 1);
  EXPECT_EQ(decoded.max_version, 3);
  EXPECT_EQ(decoded.worker_id, 2u);
  EXPECT_EQ(decoded.num_workers, 7u);

  // Inverted version range and out-of-range worker ids are corruption.
  hello.min_version = 4;
  EXPECT_FALSE(DecodeHello(EncodeHello(hello), &decoded).ok());
  hello.min_version = 1;
  hello.worker_id = 7;
  EXPECT_FALSE(DecodeHello(EncodeHello(hello), &decoded).ok());
}

TEST(DistributedWireTest, DecodersRejectMismatchedFrameType) {
  Frame frame = EncodeShutdown();
  HelloFrame hello;
  HelloAckFrame hello_ack;
  WorkerAssignment assignment;
  AssignmentAckFrame assignment_ack;
  ProbeBatch probes;
  ResponseBatch responses;
  ErrorFrame error;
  EXPECT_FALSE(DecodeHello(frame, &hello).ok());
  EXPECT_FALSE(DecodeHelloAck(frame, &hello_ack).ok());
  EXPECT_FALSE(DecodeAssignment(frame, &assignment).ok());
  EXPECT_FALSE(DecodeAssignmentAck(frame, &assignment_ack).ok());
  EXPECT_FALSE(DecodeProbeBatch(frame, &probes).ok());
  EXPECT_FALSE(DecodeResponseBatch(frame, &responses).ok());
  EXPECT_FALSE(DecodeError(frame, &error).ok());
}

WorkerAssignment RandomAssignment(Rng* rng) {
  WorkerAssignment assignment;
  assignment.threshold = 0.5 + 0.4 * rng->NextDouble();
  assignment.measure = static_cast<Measure>(rng->NextBounded(5));
  const size_t num_keys = 1 + rng->NextBounded(20);
  uint64_t key = 0;
  std::vector<VectorId> referenced;
  for (size_t k = 0; k < num_keys; ++k) {
    key += 1 + rng->NextBounded(1000);
    std::vector<VectorId> ids;
    const size_t count = 1 + rng->NextBounded(6);
    for (size_t i = 0; i < count; ++i) {
      ids.push_back(static_cast<VectorId>(rng->NextBounded(50)));
    }
    for (VectorId id : ids) referenced.push_back(id);
    assignment.postings.emplace_back(key, std::move(ids));
  }
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());
  for (VectorId id : referenced) {
    std::vector<ItemId> items;
    ItemId item = 0;
    const size_t count = rng->NextBounded(8);
    for (size_t i = 0; i < count; ++i) {
      item += 1 + static_cast<ItemId>(rng->NextBounded(100));
      items.push_back(item);
    }
    assignment.vectors.emplace_back(id, std::move(items));
  }
  return assignment;
}

TEST(DistributedWireTest, AssignmentRandomizedRoundTrip) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    Rng rng(seed);
    WorkerAssignment assignment = RandomAssignment(&rng);
    Frame frame = EncodeAssignment(assignment);
    WorkerAssignment decoded;
    ASSERT_TRUE(DecodeAssignment(frame, &decoded).ok());
    EXPECT_EQ(decoded.threshold, assignment.threshold);
    EXPECT_EQ(decoded.measure, assignment.measure);
    ASSERT_EQ(decoded.postings.size(), assignment.postings.size());
    for (size_t k = 0; k < assignment.postings.size(); ++k) {
      EXPECT_EQ(decoded.postings[k].first, assignment.postings[k].first);
      EXPECT_EQ(decoded.postings[k].second, assignment.postings[k].second);
    }
    ASSERT_EQ(decoded.vectors.size(), assignment.vectors.size());
    for (size_t v = 0; v < assignment.vectors.size(); ++v) {
      EXPECT_EQ(decoded.vectors[v].first, assignment.vectors[v].first);
      EXPECT_EQ(decoded.vectors[v].second, assignment.vectors[v].second);
    }
  }
}

TEST(DistributedWireTest, AssignmentTruncatedAtEveryPrefixFails) {
  Rng rng(42);
  WorkerAssignment assignment = RandomAssignment(&rng);
  Frame frame = EncodeAssignment(assignment);
  // Every strict prefix must decode to an error — never crash, never
  // succeed (the payload is consumed exactly, so success on a prefix
  // would mean trailing-byte tolerance or a short read).
  for (size_t len = 0; len < frame.payload.size(); ++len) {
    Frame truncated;
    truncated.type = frame.type;
    truncated.payload.assign(frame.payload.begin(),
                             frame.payload.begin() + len);
    WorkerAssignment decoded;
    EXPECT_FALSE(DecodeAssignment(truncated, &decoded).ok())
        << "prefix " << len << " of " << frame.payload.size();
  }
  // And the full payload with trailing garbage fails too.
  Frame padded = frame;
  padded.payload.push_back(0);
  WorkerAssignment decoded;
  EXPECT_FALSE(DecodeAssignment(padded, &decoded).ok());
}

TEST(DistributedWireTest, AssignmentRejectsUnsortedKeysAndVectors) {
  WorkerAssignment assignment;
  assignment.threshold = 0.5;
  assignment.postings.emplace_back(10, std::vector<VectorId>{1});
  assignment.postings.emplace_back(10, std::vector<VectorId>{2});
  assignment.vectors.emplace_back(1, std::vector<ItemId>{3});
  assignment.vectors.emplace_back(2, std::vector<ItemId>{3});
  WorkerAssignment decoded;
  EXPECT_FALSE(DecodeAssignment(EncodeAssignment(assignment), &decoded).ok())
      << "duplicate keys must be rejected";

  assignment.postings[1].first = 11;
  ASSERT_TRUE(DecodeAssignment(EncodeAssignment(assignment), &decoded).ok());

  assignment.vectors[1].first = 1;  // duplicate vector id
  EXPECT_FALSE(
      DecodeAssignment(EncodeAssignment(assignment), &decoded).ok());

  assignment.vectors[1].first = 2;
  assignment.vectors[1].second = {5, 5};  // non-increasing items
  EXPECT_FALSE(
      DecodeAssignment(EncodeAssignment(assignment), &decoded).ok());
}

TEST(DistributedWireTest, OversizedCountsFailBeforeAllocating) {
  // Hand-craft payloads whose count fields wildly exceed the bytes
  // present. The bounded-allocation rule: the decoder must reject them
  // by comparing the count against the remaining payload, so a 30-byte
  // frame can never make it resize a vector to 2^32 elements. (Run
  // under ASan in CI, an actual oversized allocation would abort.)
  {
    PayloadWriter writer;
    writer.F64(0.5);
    writer.U8(0);
    writer.U32(0xFFFFFFFFu);  // posting-key count
    Frame frame{FrameType::kAssignment, kVersionMin, std::move(writer).Take()};
    WorkerAssignment decoded;
    EXPECT_FALSE(DecodeAssignment(frame, &decoded).ok());
  }
  {
    PayloadWriter writer;
    writer.F64(0.5);
    writer.U8(0);
    writer.U32(1);            // one key...
    writer.U64(7);            // key
    writer.U32(0xFFFFFFFFu);  // ...claiming 4G posting ids
    Frame frame{FrameType::kAssignment, kVersionMin, std::move(writer).Take()};
    WorkerAssignment decoded;
    EXPECT_FALSE(DecodeAssignment(frame, &decoded).ok());
  }
  {
    PayloadWriter writer;
    writer.U32(0xFFFFFFFFu);  // probe count
    Frame frame{FrameType::kProbeBatch, kVersionMin, std::move(writer).Take()};
    ProbeBatch decoded;
    EXPECT_FALSE(DecodeProbeBatch(frame, &decoded).ok());
  }
  {
    PayloadWriter writer;
    writer.U32(1);            // one probe...
    writer.U32(3);            // left
    writer.U8(0);             // flags
    writer.U32(0xFFFFFFFFu);  // ...claiming 4G items
    Frame frame{FrameType::kProbeBatch, kVersionMin, std::move(writer).Take()};
    ProbeBatch decoded;
    EXPECT_FALSE(DecodeProbeBatch(frame, &decoded).ok());
  }
  {
    PayloadWriter writer;
    writer.U32(0xFFFFFFFFu);  // response count
    Frame frame{FrameType::kResponseBatch, kVersionMin, std::move(writer).Take()};
    ResponseBatch decoded;
    EXPECT_FALSE(DecodeResponseBatch(frame, &decoded).ok());
  }
  {
    PayloadWriter writer;
    writer.U32(1);            // one response...
    writer.U32(3);            // left
    writer.U64(0);            // candidates
    writer.U64(0);            // verifications
    writer.U32(0xFFFFFFFFu);  // ...claiming 4G matches
    Frame frame{FrameType::kResponseBatch, kVersionMin, std::move(writer).Take()};
    ResponseBatch decoded;
    EXPECT_FALSE(DecodeResponseBatch(frame, &decoded).ok());
  }
}

TEST(DistributedWireTest, ProbeBatchRandomizedRoundTrip) {
  for (uint64_t seed = 11; seed <= 16; ++seed) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    Rng rng(seed);
    std::vector<std::vector<ItemId>> item_storage;
    std::vector<ProbeRequest> batch;
    const size_t count = rng.NextBounded(10);
    item_storage.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      std::vector<ItemId> items;
      const size_t num_items = rng.NextBounded(12);
      ItemId item = 0;
      for (size_t j = 0; j < num_items; ++j) {
        item += 1 + static_cast<ItemId>(rng.NextBounded(50));
        items.push_back(item);
      }
      item_storage.push_back(std::move(items));
      ProbeRequest request;
      request.left = static_cast<VectorId>(rng.NextBounded(1000));
      request.items = item_storage.back();
      request.exclude_left_and_below = rng.NextBounded(2) == 1;
      const size_t num_keys = rng.NextBounded(8);
      for (size_t k = 0; k < num_keys; ++k) {
        request.keys.push_back(rng.NextUint64());
      }
      batch.push_back(std::move(request));
    }
    Frame frame = EncodeProbeBatch(batch);
    ProbeBatch decoded;
    ASSERT_TRUE(DecodeProbeBatch(frame, &decoded).ok());
    ASSERT_EQ(decoded.probes.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(decoded.probes[i].left, batch[i].left);
      EXPECT_EQ(decoded.probes[i].exclude_left_and_below,
                batch[i].exclude_left_and_below);
      EXPECT_TRUE(std::equal(decoded.probes[i].items.begin(),
                             decoded.probes[i].items.end(),
                             batch[i].items.begin(), batch[i].items.end()));
      EXPECT_EQ(decoded.probes[i].keys, batch[i].keys);
      // The owned probe's view must reproduce the original request.
      ProbeRequest view = decoded.probes[i].View();
      EXPECT_EQ(view.left, batch[i].left);
      EXPECT_EQ(view.keys, batch[i].keys);
    }
  }
}

TEST(DistributedWireTest, ProbeBatchRejectsUnknownFlags) {
  ProbeRequest request;
  request.left = 1;
  Frame frame = EncodeProbeBatch(std::span<const ProbeRequest>(&request, 1));
  // flags byte sits right after the count (u32) and left (u32).
  frame.payload[8] = 0x02;
  ProbeBatch decoded;
  EXPECT_FALSE(DecodeProbeBatch(frame, &decoded).ok());
}

TEST(DistributedWireTest, ResponseBatchRandomizedRoundTrip) {
  for (uint64_t seed = 21; seed <= 26; ++seed) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    Rng rng(seed);
    std::vector<ProbeResponse> batch;
    const size_t count = rng.NextBounded(10);
    for (size_t i = 0; i < count; ++i) {
      ProbeResponse response;
      response.left = static_cast<VectorId>(rng.NextBounded(1000));
      response.candidates = rng.NextUint64();
      response.verifications = rng.NextUint64();
      const size_t num_matches = rng.NextBounded(6);
      for (size_t m = 0; m < num_matches; ++m) {
        response.matches.push_back(
            {static_cast<VectorId>(rng.NextBounded(1000)),
             rng.NextDouble()});
      }
      batch.push_back(std::move(response));
    }
    Frame frame = EncodeResponseBatch(batch);
    ResponseBatch decoded;
    ASSERT_TRUE(DecodeResponseBatch(frame, &decoded).ok());
    ASSERT_EQ(decoded.responses.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(decoded.responses[i].left, batch[i].left);
      EXPECT_EQ(decoded.responses[i].candidates, batch[i].candidates);
      EXPECT_EQ(decoded.responses[i].verifications, batch[i].verifications);
      ASSERT_EQ(decoded.responses[i].matches.size(),
                batch[i].matches.size());
      for (size_t m = 0; m < batch[i].matches.size(); ++m) {
        EXPECT_EQ(decoded.responses[i].matches[m], batch[i].matches[m]);
      }
    }
  }
}

TEST(DistributedWireTest, ErrorFrameCarriesEveryStatusCode) {
  const Status statuses[] = {
      Status::InvalidArgument("bad arg"), Status::NotFound("missing"),
      Status::IOError("io"),              Status::Aborted("stop"),
      Status::NotSupported("nope"),       Status::Internal("bug"),
  };
  for (const Status& status : statuses) {
    SCOPED_TRACE(status.ToString());
    Frame frame = EncodeError(status);
    ErrorFrame error;
    ASSERT_TRUE(DecodeError(frame, &error).ok());
    Status round_tripped = StatusFromError(error);
    EXPECT_EQ(round_tripped.code(), status.code());
    EXPECT_EQ(round_tripped.message(), status.message());
  }
  // An Error frame claiming code OK must not decode into success.
  Frame ok_error = EncodeError(Status::Internal("x"));
  ok_error.payload[0] = 0;
  ok_error.payload[1] = 0;
  ErrorFrame error;
  ASSERT_TRUE(DecodeError(ok_error, &error).ok());
  EXPECT_FALSE(StatusFromError(error).ok());
}

TEST(DistributedWireTest, ErrorFrameLengthMismatchRejected) {
  Frame frame = EncodeError(Status::Internal("hello"));
  frame.payload.pop_back();  // message shorter than its declared length
  ErrorFrame error;
  EXPECT_FALSE(DecodeError(frame, &error).ok());
}

TEST(DistributedWireTest, ShutdownHasEmptyPayload) {
  Frame frame = EncodeShutdown();
  EXPECT_EQ(frame.type, FrameType::kShutdown);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(DistributedWireTest, ProbeBatchV2CarriesEpochAndSeq) {
  ProbeRequest request;
  request.left = 42;
  request.keys = {11, 12};
  const std::span<const ProbeRequest> batch(&request, 1);

  Frame v2 = EncodeProbeBatch(batch, /*version=*/2, /*epoch=*/3, /*seq=*/9);
  EXPECT_EQ(v2.version, 2);
  ProbeBatch decoded;
  ASSERT_TRUE(DecodeProbeBatch(v2, &decoded).ok());
  EXPECT_EQ(decoded.epoch, 3u);
  EXPECT_EQ(decoded.seq, 9u);
  ASSERT_EQ(decoded.probes.size(), 1u);
  EXPECT_EQ(decoded.probes[0].left, 42u);

  // A v1 frame has no epoch/seq prefix; the decoder must leave the
  // defaults and read the same body.
  Frame v1 = EncodeProbeBatch(batch);
  EXPECT_EQ(v1.version, kVersionMin);
  EXPECT_EQ(v1.payload.size() + 12, v2.payload.size());
  ProbeBatch old;
  ASSERT_TRUE(DecodeProbeBatch(v1, &old).ok());
  EXPECT_EQ(old.epoch, 0u);
  EXPECT_EQ(old.seq, 0u);
  ASSERT_EQ(old.probes.size(), 1u);
  EXPECT_EQ(old.probes[0].keys, request.keys);
}

TEST(DistributedWireTest, ResponseBatchV2CarriesEpochAndSeq) {
  ProbeResponse response;
  response.left = 7;
  response.matches.push_back({3, 0.9});
  response.candidates = 5;
  response.verifications = 2;
  const std::span<const ProbeResponse> batch(&response, 1);

  Frame v2 =
      EncodeResponseBatch(batch, /*version=*/2, /*epoch=*/1, /*seq=*/4);
  EXPECT_EQ(v2.version, 2);
  ResponseBatch decoded;
  ASSERT_TRUE(DecodeResponseBatch(v2, &decoded).ok());
  EXPECT_EQ(decoded.epoch, 1u);
  EXPECT_EQ(decoded.seq, 4u);
  ASSERT_EQ(decoded.responses.size(), 1u);
  EXPECT_EQ(decoded.responses[0].left, 7u);
  ASSERT_EQ(decoded.responses[0].matches.size(), 1u);
  EXPECT_EQ(decoded.responses[0].matches[0].id, 3u);

  Frame v1 = EncodeResponseBatch(batch);
  ResponseBatch old;
  ASSERT_TRUE(DecodeResponseBatch(v1, &old).ok());
  EXPECT_EQ(old.epoch, 0u);
  EXPECT_EQ(old.seq, 0u);
}

TEST(DistributedWireTest, ReassignmentRandomizedRoundTrip) {
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    Rng rng(seed);
    ReassignmentFrame reassignment;
    reassignment.epoch = 1 + static_cast<uint32_t>(rng.NextBounded(100));
    reassignment.assignment = RandomAssignment(&rng);
    Frame frame = EncodeReassignment(reassignment);
    EXPECT_EQ(frame.type, FrameType::kReassignment);
    EXPECT_EQ(frame.version, 2);
    ReassignmentFrame decoded;
    ASSERT_TRUE(DecodeReassignment(frame, &decoded).ok());
    EXPECT_EQ(decoded.epoch, reassignment.epoch);
    EXPECT_EQ(decoded.assignment.threshold,
              reassignment.assignment.threshold);
    ASSERT_EQ(decoded.assignment.postings.size(),
              reassignment.assignment.postings.size());
    for (size_t k = 0; k < decoded.assignment.postings.size(); ++k) {
      EXPECT_EQ(decoded.assignment.postings[k],
                reassignment.assignment.postings[k]);
    }
    ASSERT_EQ(decoded.assignment.vectors.size(),
              reassignment.assignment.vectors.size());
  }
}

TEST(DistributedWireTest, ReassignmentRejectsEpochZero) {
  Rng rng(31);
  ReassignmentFrame reassignment;
  reassignment.epoch = 1;
  reassignment.assignment = RandomAssignment(&rng);
  Frame frame = EncodeReassignment(reassignment);
  // Overwrite the little-endian epoch prefix with 0: epochs start at 1
  // (0 is the pre-recovery state), so the decoder must reject it.
  frame.payload[0] = frame.payload[1] = frame.payload[2] =
      frame.payload[3] = 0;
  ReassignmentFrame decoded;
  Status status = DecodeReassignment(frame, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("epoch"), std::string::npos);
}

TEST(DistributedWireTest, ReassignmentAckRoundTripAndTruncation) {
  ReassignmentAckFrame ack;
  ack.epoch = 6;
  ack.counters.num_keys = 10;
  ack.counters.num_entries = 55;
  ack.counters.distinct_vectors = 17;
  Frame frame = EncodeReassignmentAck(ack);
  EXPECT_EQ(frame.type, FrameType::kReassignmentAck);
  ReassignmentAckFrame decoded;
  ASSERT_TRUE(DecodeReassignmentAck(frame, &decoded).ok());
  EXPECT_EQ(decoded.epoch, 6u);
  EXPECT_EQ(decoded.counters.num_keys, 10u);
  EXPECT_EQ(decoded.counters.num_entries, 55u);
  EXPECT_EQ(decoded.counters.distinct_vectors, 17u);
  for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
    Frame truncated = frame;
    truncated.payload.resize(cut);
    ReassignmentAckFrame out;
    EXPECT_FALSE(DecodeReassignmentAck(truncated, &out).ok())
        << "prefix " << cut;
  }
}

}  // namespace
}  // namespace wire
}  // namespace skewsearch
