// Metrics-registry tests: counter/gauge/histogram semantics, the
// log-bucket boundaries, quantile estimation, the text/JSON exposition
// goldens that `join-stats` and `--metrics-dump` depend on, and an
// exact-count concurrency stress. The stress suite's name contains
// "Concurrency" so CI's TSan matrix picks it up.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace skewsearch::obs {
namespace {

TEST(ObsMetricsTest, CounterCountsAndNames) {
  Counter counter("test.counter");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  EXPECT_EQ(counter.name(), "test.counter");
}

TEST(ObsMetricsTest, GaugeGoesNegative) {
  Gauge gauge("test.gauge");
  gauge.Set(5);
  gauge.Add(-8);
  EXPECT_EQ(gauge.Value(), -3);
  gauge.Add(3);
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(ObsMetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  EXPECT_EQ(a, registry.GetCounter("x"));
  EXPECT_NE(a, registry.GetCounter("y"));
  // The same name registers independently per kind (by convention
  // names are unique across kinds; the registry does not enforce it).
  Gauge* g = registry.GetGauge("x");
  Histogram* h = registry.GetHistogram("x");
  EXPECT_EQ(g, registry.GetGauge("x"));
  EXPECT_EQ(h, registry.GetHistogram("x"));
}

TEST(ObsMetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds exact zeros; bucket b >= 1 holds the values of bit
  // width b, i.e. [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 63), 64);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            64);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(64),
            std::numeric_limits<uint64_t>::max());

  Histogram histogram("test.hist");
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(2);
  histogram.Record(3);
  histogram.Record(4);
  HistogramData data = histogram.Snapshot();
  EXPECT_EQ(data.count, 5u);
  EXPECT_EQ(data.sum, 10u);
  EXPECT_EQ(data.max, 4u);
  ASSERT_EQ(data.buckets.size(), 4u);  // indices 0, 1, 2, 3
  EXPECT_EQ(data.buckets[0], (std::pair<uint8_t, uint64_t>{0, 1}));
  EXPECT_EQ(data.buckets[1], (std::pair<uint8_t, uint64_t>{1, 1}));
  EXPECT_EQ(data.buckets[2], (std::pair<uint8_t, uint64_t>{2, 2}));
  EXPECT_EQ(data.buckets[3], (std::pair<uint8_t, uint64_t>{3, 1}));
}

TEST(ObsMetricsTest, HistogramQuantilesClampToMax) {
  Histogram histogram("test.hist");
  histogram.Record(0);
  histogram.Record(5);
  histogram.Record(5);
  histogram.Record(1000);
  HistogramData data = histogram.Snapshot();
  // Rank-2 sample sits in bucket 3 (values 4..7) -> upper bound 7.
  EXPECT_EQ(data.Quantile(0.50), 7u);
  // Rank-4 sample sits in bucket 10 (upper bound 1023), clamped to the
  // exact max.
  EXPECT_EQ(data.Quantile(0.90), 1000u);
  EXPECT_EQ(data.Quantile(0.99), 1000u);
  EXPECT_EQ(data.Quantile(0.0), 0u);  // rank floor is 1 -> bucket 0

  HistogramData empty;
  EXPECT_EQ(empty.Quantile(0.5), 0u);
}

MetricsRegistry* GoldenRegistry() {
  auto* registry = new MetricsRegistry();
  registry->GetCounter("worker.batches")->Increment(3);
  registry->GetGauge("epoch.backlog")->Set(-2);
  Histogram* h = registry->GetHistogram("query.lat");
  h->Record(0);
  h->Record(5);
  h->Record(5);
  h->Record(1000);
  return registry;
}

TEST(ObsMetricsTest, TextExpositionGolden) {
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  EXPECT_EQ(registry->TextExposition(),
            "gauge epoch.backlog -2\n"
            "histogram query.lat count=4 sum=1010 p50=7 p90=1000 "
            "p99=1000 max=1000\n"
            "counter worker.batches 3\n");
}

TEST(ObsMetricsTest, JsonExpositionGolden) {
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  EXPECT_EQ(registry->JsonExposition(),
            "{\n"
            "  \"metrics\": {\n"
            "    \"epoch.backlog\": {\"type\": \"gauge\", \"value\": -2},\n"
            "    \"query.lat\": {\"type\": \"histogram\", \"count\": 4, "
            "\"sum\": 1010, \"max\": 1000, \"p50\": 7, \"p90\": 1000, "
            "\"p99\": 1000, \"buckets\": [[0, 1], [3, 2], [10, 1]]},\n"
            "    \"worker.batches\": {\"type\": \"counter\", \"value\": 3}\n"
            "  }\n"
            "}\n");
}

TEST(ObsMetricsTest, SnapshotSortsByNameAcrossKinds) {
  MetricsRegistry registry;
  registry.GetHistogram("c");
  registry.GetCounter("b");
  registry.GetGauge("a");
  registry.GetCounter("d");
  std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot[0].name, "a");
  EXPECT_EQ(snapshot[1].name, "b");
  EXPECT_EQ(snapshot[2].name, "c");
  EXPECT_EQ(snapshot[3].name, "d");
  EXPECT_EQ(snapshot[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snapshot[2].kind, MetricKind::kHistogram);
}

TEST(ObsMetricsTest, SpanRecordsIntoHistogramAndTrace) {
  Histogram histogram("span.test");
  {
    ScopedTrace trace;
    {
      SpanTimer span(&histogram, "span.test");
    }
    ASSERT_EQ(trace.entries().size(), 1u);
    EXPECT_EQ(trace.entries()[0].name, "span.test");
  }
  EXPECT_EQ(histogram.Count(), 1u);
  // With the trace gone, spans still record to the histogram only.
  {
    SpanTimer span(&histogram, "span.test");
  }
  EXPECT_EQ(histogram.Count(), 2u);
  EXPECT_EQ(ScopedTrace::Current(), nullptr);
}

TEST(ObsMetricsTest, ScopedTraceNests) {
  ScopedTrace outer;
  EXPECT_EQ(ScopedTrace::Current(), &outer);
  {
    ScopedTrace inner;
    EXPECT_EQ(ScopedTrace::Current(), &inner);
    inner.Add("phase", 7);
    EXPECT_EQ(inner.entries().size(), 1u);
  }
  EXPECT_EQ(ScopedTrace::Current(), &outer);
  EXPECT_TRUE(outer.entries().empty());
}

TEST(ObsMetricsConcurrencyTest, RecordersCountExactly) {
  // 8 threads hammer one counter, one gauge and one histogram through
  // registry lookups (registration races included); after joining, all
  // totals must be exact — the wait-free hot path loses no updates.
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* counter = registry.GetCounter("stress.counter");
      Gauge* gauge = registry.GetGauge("stress.gauge");
      Histogram* histogram = registry.GetHistogram("stress.hist");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1);
        gauge->Add(-1);
        histogram->Record(i % 4);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.GetCounter("stress.counter")->Value(),
            kThreads * kPerThread);
  EXPECT_EQ(registry.GetGauge("stress.gauge")->Value(), 0);
  HistogramData data = registry.GetHistogram("stress.hist")->Snapshot();
  EXPECT_EQ(data.count, kThreads * kPerThread);
  // Per thread the values cycle 0,1,2,3 -> sum 6 per 4 records.
  EXPECT_EQ(data.sum, kThreads * kPerThread / 4 * 6);
  EXPECT_EQ(data.max, 3u);
  ASSERT_EQ(data.buckets.size(), 3u);  // buckets 0 {0}, 1 {1}, 2 {2,3}
  EXPECT_EQ(data.buckets[0].second, kThreads * kPerThread / 4);
  EXPECT_EQ(data.buckets[1].second, kThreads * kPerThread / 4);
  EXPECT_EQ(data.buckets[2].second, kThreads * kPerThread / 2);
}

TEST(ObsMetricsConcurrencyTest, SnapshotRacesWithRecorders) {
  // Snapshots taken while writers run must stay internally safe (no
  // torn strings, no crashes); value exactness is only asserted after
  // the writers quiesce.
  MetricsRegistry registry;
  registry.GetHistogram("race.hist");  // nonempty from the first snapshot
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop, t] {
      Counter* counter =
          registry.GetCounter("race." + std::to_string(t));
      Histogram* histogram = registry.GetHistogram("race.hist");
      while (!stop.load(std::memory_order_acquire)) {
        counter->Increment();
        histogram->Record(1);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    std::vector<MetricSnapshot> snapshot = registry.Snapshot();
    EXPECT_LE(snapshot.size(), 5u);
    std::string text = registry.TextExposition();
    EXPECT_FALSE(text.empty());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(registry.Snapshot().size(), 5u);
}

}  // namespace
}  // namespace skewsearch::obs
