#include "hashing/path_hasher.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace skewsearch {
namespace {

TEST(PathHasherTest, RootKeysDifferAcrossRepetitions) {
  PathHasher hasher(42, 16);
  std::set<uint64_t> roots;
  for (uint32_t rep = 0; rep < 100; ++rep) {
    roots.insert(hasher.RootKey(rep));
  }
  EXPECT_EQ(roots.size(), 100u);
}

TEST(PathHasherTest, RootKeysDifferAcrossSeeds) {
  PathHasher a(1, 16), b(2, 16);
  EXPECT_NE(a.RootKey(0), b.RootKey(0));
}

TEST(PathHasherTest, ExtendKeyOrderSensitive) {
  PathHasher hasher(42, 16);
  uint64_t root = hasher.RootKey(0);
  uint64_t ab = hasher.ExtendKey(hasher.ExtendKey(root, 1), 2);
  uint64_t ba = hasher.ExtendKey(hasher.ExtendKey(root, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(PathHasherTest, ExtendKeyDistinctItems) {
  PathHasher hasher(42, 16);
  uint64_t root = hasher.RootKey(0);
  std::set<uint64_t> keys;
  for (uint32_t item = 0; item < 10000; ++item) {
    keys.insert(hasher.ExtendKey(root, item));
  }
  EXPECT_EQ(keys.size(), 10000u);
}

TEST(PathHasherTest, LevelDrawDeterministic) {
  PathHasher hasher(42, 16);
  EXPECT_DOUBLE_EQ(hasher.LevelDraw(1, 777, 3), hasher.LevelDraw(1, 777, 3));
}

TEST(PathHasherTest, LevelDrawInUnitInterval) {
  PathHasher hasher(42, 16);
  for (uint32_t item = 0; item < 1000; ++item) {
    double u = hasher.LevelDraw(1 + (item % 16), item * 17, item);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PathHasherTest, LevelDrawVariesWithLevel) {
  PathHasher hasher(42, 16);
  int equal = 0;
  for (int level = 1; level < 16; ++level) {
    if (hasher.LevelDraw(level, 12345, 7) ==
        hasher.LevelDraw(level + 1, 12345, 7)) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(PathHasherTest, LevelDrawUniformMean) {
  PathHasher hasher(42, 16);
  double sum = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += hasher.LevelDraw(1 + (i % 16),
                            static_cast<uint64_t>(i) * 2654435761ULL,
                            static_cast<uint32_t>(i % 977));
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(PathHasherTest, DrawRateMatchesThreshold) {
  // Fraction of draws below a threshold s should be ~s — this is the
  // property the sampling recursion relies on.
  PathHasher hasher(123, 16);
  for (double s : {0.05, 0.2, 0.5}) {
    int below = 0;
    const int kDraws = 40000;
    for (int i = 0; i < kDraws; ++i) {
      if (hasher.LevelDraw(3, static_cast<uint64_t>(i) * 7919 + 1,
                           static_cast<uint32_t>(i % 1009)) < s) {
        ++below;
      }
    }
    EXPECT_NEAR(static_cast<double>(below) / kDraws, s, 0.01)
        << "threshold " << s;
  }
}

TEST(PathHasherTest, PairwiseEngineAlsoUniform) {
  PathHasher hasher(321, 16, HashEngine::kPairwise);
  double sum = 0.0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    double u = hasher.LevelDraw(1 + (i % 16),
                                static_cast<uint64_t>(i) * 104729 + 3,
                                static_cast<uint32_t>(i % 499));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(PathHasherTest, EnginesProduceDifferentDraws) {
  PathHasher mixer(42, 16, HashEngine::kMixer);
  PathHasher pairwise(42, 16, HashEngine::kPairwise);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (mixer.LevelDraw(1, static_cast<uint64_t>(i), 5) ==
        pairwise.LevelDraw(1, static_cast<uint64_t>(i), 5)) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(PathHasherTest, SharedPrefixConsistency) {
  // The core correctness property: two parties extending the same path
  // prefix with the same item observe the same draw, regardless of which
  // vector they are processing.
  PathHasher hasher(42, 16);
  uint64_t path_of_x = hasher.ExtendKey(hasher.RootKey(3), 17);
  uint64_t path_of_q = hasher.ExtendKey(hasher.RootKey(3), 17);
  EXPECT_EQ(path_of_x, path_of_q);
  EXPECT_DOUBLE_EQ(hasher.LevelDraw(2, path_of_x, 99),
                   hasher.LevelDraw(2, path_of_q, 99));
}

}  // namespace
}  // namespace skewsearch
