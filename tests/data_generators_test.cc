#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/intersect.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(GeneratorsTest, UniformProbabilities) {
  auto dist = UniformProbabilities(10, 0.25).value();
  EXPECT_EQ(dist.dimension(), 10u);
  for (ItemId i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(dist.p(i), 0.25);
}

TEST(GeneratorsTest, UniformRejectsBadP) {
  EXPECT_FALSE(UniformProbabilities(10, 0.0).ok());
  EXPECT_FALSE(UniformProbabilities(10, 1.0).ok());
  EXPECT_FALSE(UniformProbabilities(0, 0.5).ok());
}

TEST(GeneratorsTest, TwoBlockLayout) {
  auto dist = TwoBlockProbabilities(3, 0.4, 2, 0.05).value();
  EXPECT_EQ(dist.dimension(), 5u);
  EXPECT_DOUBLE_EQ(dist.p(0), 0.4);
  EXPECT_DOUBLE_EQ(dist.p(2), 0.4);
  EXPECT_DOUBLE_EQ(dist.p(3), 0.05);
  EXPECT_DOUBLE_EQ(dist.p(4), 0.05);
}

TEST(GeneratorsTest, HarmonicCapsFirstTerms) {
  auto dist = HarmonicProbabilities(10).value();
  EXPECT_DOUBLE_EQ(dist.p(0), 0.5);  // 1/1 capped
  EXPECT_DOUBLE_EQ(dist.p(1), 0.5);  // 1/2
  EXPECT_DOUBLE_EQ(dist.p(2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(dist.p(9), 0.1);
}

TEST(GeneratorsTest, HarmonicSumIsLogarithmic) {
  auto dist = HarmonicProbabilities(100000).value();
  // sum 1/k ~ ln d + gamma; the cap subtracts 0.5 from the first term.
  double expect = std::log(100000.0) + 0.5772 - 0.5;
  EXPECT_NEAR(dist.SumP(), expect, 0.05);
}

TEST(GeneratorsTest, ZipfDecays) {
  auto dist = ZipfProbabilities(100, 1.0, 0.5).value();
  EXPECT_DOUBLE_EQ(dist.p(0), 0.5);
  EXPECT_NEAR(dist.p(9), 0.05, 1e-12);
  for (ItemId i = 1; i < 100; ++i) EXPECT_LE(dist.p(i), dist.p(i - 1));
}

TEST(GeneratorsTest, PiecewiseZipfConcatenates) {
  auto dist = PiecewiseZipfProbabilities(
                  {{10, 0.5, 0.0}, {20, 0.1, 1.0}})
                  .value();
  EXPECT_EQ(dist.dimension(), 30u);
  EXPECT_DOUBLE_EQ(dist.p(5), 0.5);   // flat head
  EXPECT_DOUBLE_EQ(dist.p(10), 0.1);  // tail head
  EXPECT_NEAR(dist.p(29), 0.1 / 20.0, 1e-12);
}

TEST(GeneratorsTest, ScaleToAverageSizeHitsTarget) {
  auto base = ZipfProbabilities(1000, 1.0, 0.5).value();
  auto scaled = ScaleToAverageSize(base, 25.0).value();
  EXPECT_NEAR(scaled.SumP(), 25.0, 0.01);
  // The cap must be respected.
  EXPECT_LE(scaled.MaxP(), 0.5 + 1e-12);
}

TEST(GeneratorsTest, ScaleToAverageSizeRejectsNonPositive) {
  auto base = UniformProbabilities(10, 0.2).value();
  EXPECT_FALSE(ScaleToAverageSize(base, 0.0).ok());
  EXPECT_FALSE(ScaleToAverageSize(base, -3.0).ok());
}

TEST(GeneratorsTest, GenerateDatasetShape) {
  auto dist = UniformProbabilities(50, 0.2).value();
  Rng rng(1);
  Dataset data = GenerateDataset(dist, 200, &rng);
  EXPECT_EQ(data.size(), 200u);
  EXPECT_EQ(data.dimension(), 50u);
  EXPECT_NEAR(data.AverageSize(), 10.0, 1.5);
}

TEST(GeneratorsTest, PlantedPairIsCorrelated) {
  auto dist = UniformProbabilities(2000, 0.05).value();
  Rng rng(2);
  PlantedPairInstance inst = GeneratePlantedPair(dist, 50, 0.9, &rng);
  EXPECT_EQ(inst.data.size(), 50u);
  ASSERT_NE(inst.first, inst.second);
  auto a = inst.data.Get(inst.first);
  auto b = inst.data.Get(inst.second);
  // alpha = 0.9: intersection should far exceed the independent
  // expectation (|a|*0.05 ~ 5).
  size_t inter = IntersectSizeMerge(a, b);
  EXPECT_GT(inter, a.size() / 2);
}

TEST(GeneratorsTest, PlantedPairPositionsShuffled) {
  auto dist = UniformProbabilities(500, 0.1).value();
  // Over several instances, the planted pair should not always be the last
  // position.
  int last_position_hits = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    PlantedPairInstance inst = GeneratePlantedPair(dist, 10, 0.8, &rng);
    if (inst.second == 9u) ++last_position_hits;
  }
  EXPECT_LT(last_position_hits, 10);
}

TEST(TopicModelTest, TopicsHaveRequestedSize) {
  auto background = UniformProbabilities(1000, 0.01).value();
  TopicModelOptions options;
  options.num_topics = 5;
  options.topic_size = 12;
  Rng rng(3);
  TopicModelGenerator gen(background, options, &rng);
  for (size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(gen.topic(t).size(), 12u);
    // Topic items sorted and in range.
    for (size_t k = 1; k < gen.topic(t).size(); ++k) {
      EXPECT_LT(gen.topic(t)[k - 1], gen.topic(t)[k]);
    }
    EXPECT_LT(gen.topic(t).back(), 1000u);
  }
}

TEST(TopicModelTest, InjectsCooccurrence) {
  // With one always-active topic, its items co-occur far more often than
  // independence predicts.
  auto background = UniformProbabilities(5000, 0.002).value();
  TopicModelOptions options;
  options.num_topics = 1;
  options.topic_size = 10;
  options.activation_prob = 0.5;
  options.include_prob = 0.9;
  Rng rng(4);
  TopicModelGenerator gen(background, options, &rng);
  Dataset data = gen.Generate(2000, &rng);

  ItemId a = gen.topic(0)[0];
  ItemId b = gen.topic(0)[1];
  size_t both = 0, only_a = 0, only_b = 0;
  for (VectorId id = 0; id < data.size(); ++id) {
    auto v = data.GetVector(id);
    bool ha = v.Contains(a), hb = v.Contains(b);
    both += (ha && hb);
    only_a += ha;
    only_b += hb;
  }
  double n = static_cast<double>(data.size());
  double expected_indep = (only_a / n) * (only_b / n) * n;
  EXPECT_GT(static_cast<double>(both), 2.0 * expected_indep);
}

TEST(TopicModelTest, ZeroActivationIsPureBackground) {
  auto background = UniformProbabilities(100, 0.1).value();
  TopicModelOptions options;
  options.num_topics = 3;
  options.activation_prob = 0.0;
  Rng rng(5);
  TopicModelGenerator gen(background, options, &rng);
  Dataset data = gen.Generate(500, &rng);
  EXPECT_NEAR(data.AverageSize(), 10.0, 1.0);
}

}  // namespace
}  // namespace skewsearch
