// Statistical checks of the paper's internal lemmas, plus failure
// injection: these pin the implementation to the analysis at the level of
// the proofs, not just end-to-end recall.

#include <gtest/gtest.h>

#include <cmath>

#include "core/path_policy.h"
#include "core/rho.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "sim/intersect.h"
#include "util/logging.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(Lemma11Test, SharedThresholdMassExceedsOnePlusDelta) {
  // Lemma 11: for q ~ D_alpha(x), E[sum_{i in x n q} s(x, |v|, i)]
  // >= 1 + delta, and the sum concentrates. We check the empirical mean
  // and the fraction of violations at |v| = 0.
  const double alpha = 0.6, delta = 0.2;
  auto dist = TwoBlockProbabilities(300, 0.25, 30000, 0.003).value();
  CorrelatedPolicy policy(&dist, alpha, delta);
  CorrelatedQuerySampler sampler(&dist, alpha);
  Rng rng(31);

  double total = 0.0;
  int below_one = 0;
  const int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    SparseVector x = dist.Sample(&rng);
    SparseVector q = sampler.SampleCorrelated(x.span(), &rng);
    double sum = 0.0;
    size_t i = 0, j = 0;
    while (i < x.size() && j < q.size()) {
      if (x[i] < q[j]) {
        ++i;
      } else if (x[i] > q[j]) {
        ++j;
      } else {
        sum += policy.Threshold(x.size(), 0, x[i]);
        ++i;
        ++j;
      }
    }
    total += sum;
    below_one += (sum < 1.0);
  }
  EXPECT_GE(total / kTrials, 1.0 + delta - 0.05);
  // Concentration: few trials fall below the Lemma 5 requirement of 1.
  EXPECT_LT(below_one, kTrials / 10);
}

TEST(Lemma5Test, CollisionRateAtLeastInverseLogN) {
  // Lemma 5: when the threshold condition holds, a repetition produces a
  // shared filter with probability >= 1/log n. Empirically across
  // distributions the per-repetition collision rate for correlated pairs
  // must clear that bound.
  Rng rng(32);
  struct Case {
    ProductDistribution dist;
    double alpha;
  };
  std::vector<Case> cases;
  cases.push_back({UniformProbabilities(1600, 0.05).value(), 0.8});
  cases.push_back(
      {TwoBlockProbabilities(240, 0.25, 12000, 0.005).value(), 0.8});
  for (auto& c : cases) {
    const size_t n = 256;
    Dataset data = GenerateDataset(c.dist, n, &rng);
    SkewedPathIndex index;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = c.alpha;
    options.repetitions = 40;
    ASSERT_TRUE(index.Build(&data, &c.dist, options).ok());
    CorrelatedQuerySampler sampler(&c.dist, c.alpha);
    double total_rate = 0.0;
    const int kPairs = 15;
    for (int t = 0; t < kPairs; ++t) {
      SparseVector x = data.GetVector(static_cast<VectorId>(t));
      SparseVector q = sampler.SampleCorrelated(x.span(), &rng);
      total_rate += index.EstimateCollisionRate(x.span(), q.span());
    }
    double bound = 1.0 / std::log(static_cast<double>(n));  // ~0.18
    EXPECT_GE(total_rate / kPairs, bound)
        << "distribution with max p " << c.dist.MaxP();
  }
}

TEST(Lemma7Test, FarCollisionsBoundedByFilterCount) {
  // Lemma 7: E[sum_x |F(q) n F(x)|] = O(E|F(q)|) because each filter's
  // collision probability is capped at 1/n by the stop rule. Measured:
  // candidates per unrelated query stay within a small factor of the
  // number of probed filters.
  auto dist = TwoBlockProbabilities(200, 0.25, 10000, 0.005).value();
  Rng rng(33);
  const size_t n = 1000;
  Dataset data = GenerateDataset(dist, n, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.repetitions = 8;
  options.delta = 0.1;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  double candidates = 0, filters = 0;
  for (int t = 0; t < 40; ++t) {
    SparseVector q = dist.Sample(&rng);
    QueryStats stats;
    index.QueryAll(q.span(), 2.0, &stats);
    candidates += static_cast<double>(stats.candidates);
    filters += static_cast<double>(stats.filters);
  }
  EXPECT_LT(candidates, 5.0 * filters + 40.0);
}

TEST(HashEngineParityTest, PairwiseAndMixerReachSameRecall) {
  // The default mixer engine must not lose recall relative to the
  // provably pairwise-independent engine.
  auto dist = TwoBlockProbabilities(200, 0.25, 10000, 0.005).value();
  Rng rng(34);
  const size_t n = 300;
  Dataset data = GenerateDataset(dist, n, &rng);
  CorrelatedQuerySampler sampler(&dist, 0.75);

  auto recall_with = [&](HashEngine engine) {
    SkewedPathIndex index;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = 0.75;
    options.repetitions = 12;
    options.hash_engine = engine;
    EXPECT_TRUE(index.Build(&data, &dist, options).ok());
    Rng qrng(35);
    int found = 0;
    const int kQueries = 60;
    for (int t = 0; t < kQueries; ++t) {
      VectorId target = static_cast<VectorId>(qrng.NextBounded(n));
      SparseVector q = sampler.SampleCorrelated(data.Get(target), &qrng);
      auto hit = index.Query(q.span());
      found += (hit && hit->id == target);
    }
    return found;
  };
  int mixer = recall_with(HashEngine::kMixer);
  int pairwise = recall_with(HashEngine::kPairwise);
  EXPECT_GE(mixer, 48);
  EXPECT_GE(pairwise, 48);
  EXPECT_NEAR(mixer, pairwise, 8);
}

TEST(FailureInjectionTest, PathCapDegradesGracefully) {
  // A pathologically small path cap must be reported in the stats and
  // must not break queries (recall drops, nothing crashes).
  auto dist = UniformProbabilities(1000, 0.06).value();
  Rng rng(36);
  Dataset data = GenerateDataset(dist, 200, &rng);
  SetLogLevel(LogLevel::kError);  // silence the expected cap warning
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.8;
  options.repetitions = 4;
  options.max_paths_per_element = 4;  // absurdly small
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  SetLogLevel(LogLevel::kWarning);
  EXPECT_GT(index.build_stats().cap_hits, 0u);
  // Queries still execute and return verified results only.
  CorrelatedQuerySampler sampler(&dist, 0.8);
  for (int t = 0; t < 10; ++t) {
    SparseVector q = sampler.SampleCorrelated(data.Get(t), &rng);
    auto hit = index.Query(q.span());
    if (hit) {
      EXPECT_GE(hit->similarity, index.verify_threshold());
    }
  }
}

TEST(FailureInjectionTest, QueryWithForeignItemsIsSafe) {
  // Query items beyond the distribution's universe must not crash the
  // engine (they are simply never on any stored path).
  auto dist = UniformProbabilities(100, 0.1).value();
  Rng rng(37);
  Dataset data = GenerateDataset(dist, 50, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.5;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  // All query items inside the universe but absent from the data are fine;
  // the engine consults dist.LogInvP(i) for items on paths, so the query
  // must stay within the declared universe — verify the documented
  // contract instead of relying on out-of-range reads.
  SparseVector inside = SparseVector::Of({97, 98, 99});
  EXPECT_NO_FATAL_FAILURE({
    auto hit = index.Query(inside.span());
    (void)hit;
  });
}

}  // namespace
}  // namespace skewsearch
