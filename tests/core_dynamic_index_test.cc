// DynamicIndex: online inserts/removes on top of the sharded layout —
// fresh-build equivalence with the unsharded index, insert-then-query
// recall, remove-then-query absence, compaction transparency, and
// Save/Load round-trips including tombstone state.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/dynamic_index.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "maintenance/service.h"
#include "test_paths.h"
#include "util/random.h"

namespace skewsearch {
namespace {

class DynamicIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dist_ = TwoBlockProbabilities(150, 0.25, 8000, 0.005).value();
    Rng rng(31);
    data_ = GenerateDataset(dist_, 250, &rng);
  }

  DynamicIndexOptions Options(int num_shards = 4,
                              double compact_fraction = 0.25) const {
    DynamicIndexOptions options;
    options.index.mode = IndexMode::kCorrelated;
    options.index.alpha = 0.7;
    options.index.repetitions = 10;
    options.index.seed = 515;
    options.num_shards = num_shards;
    options.compact_dead_fraction = compact_fraction;
    return options;
  }

  // Samples `count` non-empty vectors the filter family actually emits
  // paths for (a path-less vector is unfindable by design).
  std::vector<SparseVector> FreshVectors(const DynamicIndex& index,
                                         size_t count, uint64_t seed) {
    std::vector<SparseVector> out;
    Rng rng(seed);
    while (out.size() < count) {
      SparseVector v = dist_.Sample(&rng);
      if (v.span().empty()) continue;
      std::vector<uint64_t> keys;
      for (int rep = 0; rep < index.repetitions(); ++rep) {
        index.family().ComputeFilters(v.span(),
                                      static_cast<uint32_t>(rep), &keys);
      }
      if (!keys.empty()) out.push_back(std::move(v));
    }
    return out;
  }

  ProductDistribution dist_;
  Dataset data_;
};

void ExpectSameMatches(const std::vector<Match>& a,
                       const std::vector<Match>& b, const std::string& ctx) {
  ASSERT_EQ(a.size(), b.size()) << ctx;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << ctx << " entry " << i;
    EXPECT_EQ(a[i].similarity, b[i].similarity) << ctx << " entry " << i;
  }
}

bool ContainsId(const std::vector<Match>& matches, VectorId id) {
  for (const Match& m : matches) {
    if (m.id == id) return true;
  }
  return false;
}

TEST_F(DynamicIndexTest, FreshBuildMatchesUnshardedQueryAll) {
  SkewedPathIndex reference;
  ASSERT_TRUE(reference.Build(&data_, &dist_, Options().index).ok());
  DynamicIndex dynamic;
  ASSERT_TRUE(dynamic.Build(&data_, &dist_, Options()).ok());
  EXPECT_EQ(dynamic.size(), data_.size());

  CorrelatedQuerySampler sampler(&dist_, 0.7);
  Rng rng(32);
  for (int t = 0; t < 30; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data_.size()));
    SparseVector q = sampler.SampleCorrelated(data_.Get(target), &rng);
    ExpectSameMatches(dynamic.QueryAll(q.span(), 0.0),
                      reference.QueryAll(q.span(), 0.0),
                      "query " + std::to_string(t));
  }
}

TEST_F(DynamicIndexTest, InsertThenQueryFindsTheNewVector) {
  DynamicIndex index;
  ASSERT_TRUE(index.Build(&data_, &dist_, Options()).ok());

  auto fresh = FreshVectors(index, 40, 33);
  std::vector<VectorId> ids;
  for (const SparseVector& v : fresh) {
    size_t num_filters = 0;
    auto id = index.Insert(v.span(), &num_filters);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_GE(*id, data_.size());
    EXPECT_GT(num_filters, 0u);
    EXPECT_TRUE(index.IsLive(*id));
    ids.push_back(*id);
  }
  EXPECT_EQ(index.size(), data_.size() + fresh.size());

  // An exact-duplicate query shares every filter key with the inserted
  // vector, so it must be surfaced in every repetition: recall 100%.
  for (size_t i = 0; i < fresh.size(); ++i) {
    auto hit = index.Query(fresh[i].span());
    ASSERT_TRUE(hit.has_value()) << "inserted vector " << i << " lost";
    EXPECT_GE(hit->similarity, index.verify_threshold());
    auto all = index.QueryAll(fresh[i].span(), 0.999);
    EXPECT_TRUE(ContainsId(all, ids[i]))
        << "inserted vector " << i << " not in QueryAll";
  }

  // Correlated (non-exact) queries against inserted vectors succeed with
  // the recall the repetition count provisions for.
  CorrelatedQuerySampler sampler(&dist_, 0.8);
  Rng rng(34);
  int found = 0;
  for (size_t i = 0; i < fresh.size(); ++i) {
    SparseVector q = sampler.SampleCorrelated(fresh[i].span(), &rng);
    auto all = index.QueryAll(q.span(), 0.0);
    found += ContainsId(all, ids[i]);
  }
  EXPECT_GE(found, static_cast<int>(fresh.size() * 7 / 10))
      << "correlated recall on inserted vectors: " << found << "/"
      << fresh.size();
}

TEST_F(DynamicIndexTest, RemoveThenQueryNeverReturnsIt) {
  // Compaction disabled so removal is pure tombstoning here.
  DynamicIndex index;
  ASSERT_TRUE(index.Build(&data_, &dist_, Options(4, 100.0)).ok());
  auto fresh = FreshVectors(index, 10, 35);
  std::vector<VectorId> inserted_ids;
  for (const SparseVector& v : fresh) {
    inserted_ids.push_back(*index.Insert(v.span()));
  }

  std::vector<VectorId> removed = {0, 3, 17, 42, 100, inserted_ids[0],
                                   inserted_ids[5]};
  for (VectorId id : removed) {
    ASSERT_TRUE(index.Remove(id).ok()) << "id " << id;
    EXPECT_FALSE(index.IsLive(id));
    EXPECT_TRUE(index.Remove(id).IsNotFound()) << "double remove " << id;
  }
  EXPECT_EQ(index.num_tombstones(), removed.size());
  EXPECT_EQ(index.size(), data_.size() + fresh.size() - removed.size());

  // Probing with the removed vectors themselves: the strongest possible
  // pull towards the tombstoned id — it must never come back.
  for (VectorId id : removed) {
    auto items = id < data_.size()
                     ? data_.Get(id)
                     : fresh[id == inserted_ids[0] ? 0 : 5].span();
    auto hit = index.Query(items);
    if (hit.has_value()) {
      EXPECT_NE(hit->id, id);
    }
    EXPECT_FALSE(ContainsId(index.QueryAll(items, 0.0), id));
  }
  // Unknown ids are clean errors.
  EXPECT_TRUE(index.Remove(1u << 30).IsNotFound());
}

TEST_F(DynamicIndexTest, CompactionPreservesResultsAndFires) {
  // Two identical indexes, one with compaction effectively disabled; the
  // same mutation stream must leave them query-equivalent.
  DynamicIndex compacting, reference;
  ASSERT_TRUE(compacting.Build(&data_, &dist_, Options(2, 0.25)).ok());
  ASSERT_TRUE(reference.Build(&data_, &dist_, Options(2, 100.0)).ok());
  MaintenanceService service;
  ASSERT_TRUE(service.Attach(&compacting).ok());

  auto fresh = FreshVectors(compacting, 20, 36);
  for (const SparseVector& v : fresh) {
    VectorId a = *compacting.Insert(v.span());
    VectorId b = *reference.Insert(v.span());
    EXPECT_EQ(a, b);  // same id assignment order
  }
  // Remove enough of the base to push shards past 25% dead entries.
  Rng rng(37);
  size_t removed = 0;
  for (VectorId id = 0; id < data_.size() && removed < data_.size() / 2;
       id += 1 + static_cast<VectorId>(rng.NextBounded(2))) {
    ASSERT_TRUE(compacting.Remove(id).ok());
    ASSERT_TRUE(reference.Remove(id).ok());
    ++removed;
  }
  // Remove() never compacts in the caller's thread anymore — the work
  // happens when the maintenance pass runs.
  EXPECT_EQ(compacting.num_compactions(), 0u);
  ASSERT_TRUE(service.RunOnce().ok());
  EXPECT_GT(compacting.num_compactions(), 0u);
  EXPECT_GT(service.stats().compactions, 0u);
  EXPECT_EQ(reference.num_compactions(), 0u);
  // Compaction dropped the tombstones it covered.
  EXPECT_LT(compacting.num_tombstones(), reference.num_tombstones());
  EXPECT_EQ(compacting.size(), reference.size());

  CorrelatedQuerySampler sampler(&dist_, 0.7);
  Rng qrng(38);
  for (int t = 0; t < 25; ++t) {
    VectorId target = static_cast<VectorId>(qrng.NextBounded(data_.size()));
    SparseVector q = sampler.SampleCorrelated(data_.Get(target), &qrng);
    ExpectSameMatches(compacting.QueryAll(q.span(), 0.0),
                      reference.QueryAll(q.span(), 0.0),
                      "query " + std::to_string(t));
  }
}

TEST_F(DynamicIndexTest, BatchQueryMatchesSerial) {
  DynamicIndex index;
  ASSERT_TRUE(index.Build(&data_, &dist_, Options()).ok());
  auto fresh = FreshVectors(index, 15, 39);
  for (const SparseVector& v : fresh) ASSERT_TRUE(index.Insert(v.span()).ok());
  for (VectorId id = 0; id < 20; id += 3) ASSERT_TRUE(index.Remove(id).ok());

  CorrelatedQuerySampler sampler(&dist_, 0.7);
  Rng rng(40);
  Dataset queries;
  for (int t = 0; t < 30; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data_.size()));
    queries.Add(sampler.SampleCorrelated(data_.Get(target), &rng).span());
  }
  auto serial = index.BatchQuery(queries, 1);
  auto parallel = index.BatchQuery(queries, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].has_value(), parallel[i].has_value()) << i;
    if (serial[i]) {
      EXPECT_EQ(serial[i]->id, parallel[i]->id) << i;
      EXPECT_EQ(serial[i]->similarity, parallel[i]->similarity) << i;
    }
  }
}

TEST_F(DynamicIndexTest, InsertValidation) {
  DynamicIndex index;
  ASSERT_TRUE(index.Build(&data_, &dist_, Options()).ok());
  EXPECT_TRUE(index.Insert({}).status().IsInvalidArgument());
  std::vector<ItemId> unsorted = {5, 3, 9};
  EXPECT_TRUE(index.Insert(unsorted).status().IsInvalidArgument());
  std::vector<ItemId> out_of_universe = {
      1, static_cast<ItemId>(dist_.dimension())};
  EXPECT_TRUE(index.Insert(out_of_universe).status().IsInvalidArgument());
  DynamicIndex unbuilt;
  std::vector<ItemId> ok_items = {1, 2, 3};
  EXPECT_TRUE(unbuilt.Insert(ok_items).status().IsInvalidArgument());
  EXPECT_TRUE(unbuilt.Remove(0).IsInvalidArgument());
}

class DynamicIndexIoTest : public DynamicIndexTest {
 protected:
  void SetUp() override {
    DynamicIndexTest::SetUp();
    path_ = test::TempPath("dynamic_io", this, ".skidx");
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(DynamicIndexIoTest, SaveLoadRoundTripsTombstonesAndInserts) {
  DynamicIndex original;
  ASSERT_TRUE(original.Build(&data_, &dist_, Options(3, 100.0)).ok());
  auto fresh = FreshVectors(original, 20, 41);
  std::vector<VectorId> ids;
  for (const SparseVector& v : fresh) ids.push_back(*original.Insert(v.span()));
  std::vector<VectorId> removed = {2, 8, 50, ids[1], ids[7]};
  for (VectorId id : removed) ASSERT_TRUE(original.Remove(id).ok());
  ASSERT_TRUE(original.Save(path_).ok());

  DynamicIndex loaded;
  ASSERT_TRUE(loaded.Load(path_, &data_, &dist_).ok());
  EXPECT_EQ(loaded.num_shards(), original.num_shards());
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.num_tombstones(), original.num_tombstones());
  EXPECT_EQ(loaded.base_size(), data_.size());
  for (VectorId id : removed) EXPECT_FALSE(loaded.IsLive(id));
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(loaded.IsLive(ids[i]), original.IsLive(ids[i])) << i;
  }

  CorrelatedQuerySampler sampler(&dist_, 0.7);
  Rng rng(42);
  for (int t = 0; t < 25; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data_.size()));
    SparseVector q = sampler.SampleCorrelated(data_.Get(target), &rng);
    ExpectSameMatches(loaded.QueryAll(q.span(), 0.0),
                      original.QueryAll(q.span(), 0.0),
                      "query " + std::to_string(t));
  }
  for (const SparseVector& v : fresh) {
    ExpectSameMatches(loaded.QueryAll(v.span(), 0.0),
                      original.QueryAll(v.span(), 0.0), "inserted probe");
  }

  // The id space continues where it left off: new inserts after Load get
  // fresh ids and are findable.
  auto more = FreshVectors(loaded, 3, 43);
  for (const SparseVector& v : more) {
    auto id = loaded.Insert(v.span());
    ASSERT_TRUE(id.ok());
    EXPECT_GE(*id, data_.size() + fresh.size());
    EXPECT_TRUE(ContainsId(loaded.QueryAll(v.span(), 0.999), *id));
  }
}

TEST_F(DynamicIndexIoTest, LoadRejectsDifferentDatasetAndCorruption) {
  DynamicIndex original;
  ASSERT_TRUE(original.Build(&data_, &dist_, Options(3)).ok());
  auto fresh = FreshVectors(original, 5, 44);
  for (const SparseVector& v : fresh) {
    ASSERT_TRUE(original.Insert(v.span()).ok());
  }
  ASSERT_TRUE(original.Remove(1).ok());
  ASSERT_TRUE(original.Save(path_).ok());

  Rng rng(45);
  Dataset other = GenerateDataset(dist_, 250, &rng);
  DynamicIndex loaded;
  EXPECT_TRUE(loaded.Load(path_, &other, &dist_).IsInvalidArgument());

  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  for (size_t keep = 0; keep < contents.size();
       keep += 1 + contents.size() / 37) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(keep));
    out.close();
    DynamicIndex truncated;
    EXPECT_FALSE(truncated.Load(path_, &data_, &dist_).ok())
        << "prefix of " << keep << " bytes";
  }
}

}  // namespace
}  // namespace skewsearch
