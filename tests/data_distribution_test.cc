#include "data/distribution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/math.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(ProductDistributionTest, CreateValidates) {
  EXPECT_FALSE(ProductDistribution::Create({}).ok());
  EXPECT_FALSE(ProductDistribution::Create({0.0}).ok());
  EXPECT_FALSE(ProductDistribution::Create({1.0}).ok());
  EXPECT_FALSE(ProductDistribution::Create({0.5, -0.1}).ok());
  EXPECT_TRUE(ProductDistribution::Create({0.5, 0.001}).ok());
}

TEST(ProductDistributionTest, Accessors) {
  auto dist = ProductDistribution::Create({0.5, 0.25, 0.125}).value();
  EXPECT_EQ(dist.dimension(), 3u);
  EXPECT_DOUBLE_EQ(dist.p(1), 0.25);
  EXPECT_DOUBLE_EQ(dist.SumP(), 0.875);
  EXPECT_DOUBLE_EQ(dist.MaxP(), 0.5);
  EXPECT_NEAR(dist.LogInvP(2), std::log(8.0), 1e-12);
}

TEST(ProductDistributionTest, HalfAssumption) {
  EXPECT_TRUE(ProductDistribution::Create({0.5, 0.1})
                  .value()
                  .SatisfiesHalfAssumption());
  EXPECT_FALSE(
      ProductDistribution::Create({0.7}).value().SatisfiesHalfAssumption());
}

TEST(ProductDistributionTest, CForN) {
  std::vector<double> p(100, 0.25);  // sum = 25
  auto dist = ProductDistribution::Create(p).value();
  EXPECT_NEAR(dist.CForN(1000), 25.0 / std::log(1000.0), 1e-12);
  EXPECT_EQ(dist.CForN(1), 0.0);
}

TEST(ProductDistributionTest, BlocksMergeEqualProbabilities) {
  std::vector<double> p(1000, 0.3);
  auto dist = ProductDistribution::Create(p).value();
  EXPECT_EQ(dist.NumSamplingBlocks(), 1u);
}

TEST(ProductDistributionTest, BlocksSplitOnLargeRatio) {
  std::vector<double> p;
  p.insert(p.end(), 100, 0.4);
  p.insert(p.end(), 100, 0.01);
  auto dist = ProductDistribution::Create(p).value();
  EXPECT_EQ(dist.NumSamplingBlocks(), 2u);
}

TEST(ProductDistributionTest, SampleRespectsSupport) {
  auto dist = ProductDistribution::Create({0.5, 0.5, 0.5}).value();
  Rng rng(1);
  for (int t = 0; t < 100; ++t) {
    SparseVector x = dist.Sample(&rng);
    for (ItemId id : x.ids()) EXPECT_LT(id, 3u);
    // Sorted strictly increasing.
    for (size_t i = 1; i < x.size(); ++i) EXPECT_LT(x[i - 1], x[i]);
  }
}

TEST(ProductDistributionTest, SampleMeanSizeMatchesSumP) {
  std::vector<double> p;
  p.insert(p.end(), 200, 0.3);
  p.insert(p.end(), 1000, 0.01);
  auto dist = ProductDistribution::Create(p).value();
  Rng rng(2);
  double total = 0.0;
  const int kSamples = 2000;
  for (int t = 0; t < kSamples; ++t) {
    total += static_cast<double>(dist.Sample(&rng).size());
  }
  double mean = total / kSamples;
  // E|x| = 70; Chernoff tolerance for 2000*70 draws.
  EXPECT_NEAR(mean, dist.SumP(), 1.5);
}

TEST(ProductDistributionTest, PerItemFrequencyMatchesP) {
  // Exercises both the skip and the thinning path: probabilities vary
  // within a factor-2 block.
  std::vector<double> p{0.5, 0.3, 0.28, 0.26, 0.05, 0.04, 0.03};
  auto dist = ProductDistribution::Create(p).value();
  Rng rng(3);
  std::vector<int> counts(p.size(), 0);
  const int kSamples = 40000;
  for (int t = 0; t < kSamples; ++t) {
    SparseVector sample = dist.Sample(&rng);
    for (ItemId id : sample.ids()) counts[id]++;
  }
  for (size_t i = 0; i < p.size(); ++i) {
    double freq = static_cast<double>(counts[i]) / kSamples;
    double sigma = std::sqrt(p[i] * (1 - p[i]) / kSamples);
    EXPECT_NEAR(freq, p[i], 6 * sigma) << "item " << i;
  }
}

TEST(ProductDistributionTest, RareItemsSampledAtCorrectRate) {
  // A large block of very rare items: skip sampling must neither over- nor
  // under-sample. Total expected hits = d_rare * p_rare * samples.
  const size_t d = 100000;
  const double p_rare = 1e-4;
  std::vector<double> p(d, p_rare);
  auto dist = ProductDistribution::Create(p).value();
  Rng rng(4);
  size_t hits = 0;
  const int kSamples = 2000;
  for (int t = 0; t < kSamples; ++t) hits += dist.Sample(&rng).size();
  double expected = d * p_rare * kSamples;  // = 20000
  double sigma = std::sqrt(expected);
  EXPECT_NEAR(static_cast<double>(hits), expected, 6 * sigma);
}

TEST(ProductDistributionTest, SamplingIsFastForHugeSparseUniverse) {
  // O(E|x|) sampling: a 5M-dimensional universe with tiny probabilities
  // must sample quickly (this test fails by timeout if sampling is O(d)
  // per draw... it would take minutes).
  const size_t d = 5000000;
  std::vector<double> p(d, 2e-6);
  auto dist = ProductDistribution::Create(p).value();
  Rng rng(5);
  size_t total = 0;
  for (int t = 0; t < 2000; ++t) total += dist.Sample(&rng).size();
  // E = 2000 * 10 = 20000.
  EXPECT_NEAR(static_cast<double>(total), 20000.0, 900.0);
}

TEST(ProductDistributionTest, DeterministicGivenRngSeed) {
  auto dist = ProductDistribution::Create({0.5, 0.2, 0.1, 0.4}).value();
  Rng r1(99), r2(99);
  for (int t = 0; t < 50; ++t) {
    EXPECT_EQ(dist.Sample(&r1), dist.Sample(&r2));
  }
}

}  // namespace
}  // namespace skewsearch
