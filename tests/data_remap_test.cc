#include "data/remap.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "sim/measures.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(RemapTest, IdentityIsIdentity) {
  ItemRemap remap = ItemRemap::Identity(10);
  for (ItemId i = 0; i < 10; ++i) {
    EXPECT_EQ(remap.Forward(i), i);
    EXPECT_EQ(remap.Backward(i), i);
  }
}

TEST(RemapTest, BijectionRoundTrips) {
  Dataset data;
  data.Add(SparseVector::Of({0, 3}));
  data.Add(SparseVector::Of({3}));
  data.Add(SparseVector::Of({3, 1}));
  ItemRemap remap = ItemRemap::ByFrequency(data);
  for (ItemId i = 0; i < remap.dimension(); ++i) {
    EXPECT_EQ(remap.Backward(remap.Forward(i)), i);
    EXPECT_EQ(remap.Forward(remap.Backward(i)), i);
  }
}

TEST(RemapTest, ByFrequencyOrdersDescending) {
  Dataset data;
  data.Add(SparseVector::Of({0, 3}));  // counts: 0->1, 1->1, 3->3
  data.Add(SparseVector::Of({3}));
  data.Add(SparseVector::Of({3, 1}));
  ItemRemap remap = ItemRemap::ByFrequency(data);
  EXPECT_EQ(remap.Forward(3), 0u);  // most frequent becomes id 0
  // Ties (items 0 and 1, count 1; item 2, count 0 last).
  EXPECT_LT(remap.Forward(0), remap.Forward(1));
  EXPECT_EQ(remap.Forward(2), 3u);
}

TEST(RemapTest, ByProbabilityOrdersDescending) {
  auto dist = ProductDistribution::Create({0.1, 0.5, 0.3, 0.2}).value();
  ItemRemap remap = ItemRemap::ByProbability(dist);
  EXPECT_EQ(remap.Forward(1), 0u);
  EXPECT_EQ(remap.Forward(2), 1u);
  EXPECT_EQ(remap.Forward(3), 2u);
  EXPECT_EQ(remap.Forward(0), 3u);
  auto remapped = remap.Apply(dist).value();
  for (ItemId i = 1; i < 4; ++i) {
    EXPECT_LE(remapped.p(i), remapped.p(i - 1));
  }
}

TEST(RemapTest, SimilaritiesInvariant) {
  auto dist = ZipfProbabilities(500, 1.0, 0.4).value();
  Rng rng(1);
  Dataset data = GenerateDataset(dist, 50, &rng);
  ItemRemap remap = ItemRemap::ByFrequency(data);
  Dataset mapped = remap.Apply(data);
  ASSERT_EQ(mapped.size(), data.size());
  for (VectorId i = 0; i < 20; ++i) {
    for (VectorId j = i; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(BraunBlanquet(data.Get(i), data.Get(j)),
                       BraunBlanquet(mapped.Get(i), mapped.Get(j)))
          << i << "," << j;
      EXPECT_DOUBLE_EQ(Jaccard(data.Get(i), data.Get(j)),
                       Jaccard(mapped.Get(i), mapped.Get(j)));
    }
  }
}

TEST(RemapTest, ReducesSamplerBlocksOnShuffledZipf) {
  // A Zipf distribution with shuffled ids fragments into many sampler
  // blocks; probability-ordering collapses them.
  auto zipf = ZipfProbabilities(2000, 1.0, 0.5).value();
  std::vector<double> shuffled = zipf.probabilities();
  Rng rng(2);
  rng.Shuffle(&shuffled);
  auto scattered = ProductDistribution::Create(shuffled).value();
  ItemRemap remap = ItemRemap::ByProbability(scattered);
  auto ordered = remap.Apply(scattered).value();
  EXPECT_LT(ordered.NumSamplingBlocks(),
            scattered.NumSamplingBlocks() / 4);
}

TEST(RemapTest, ApplyDistributionRejectsWrongDimension) {
  auto dist = UniformProbabilities(8, 0.2).value();
  ItemRemap remap = ItemRemap::Identity(10);
  EXPECT_FALSE(remap.Apply(dist).ok());
}

TEST(RemapTest, ApplySparseVector) {
  auto dist = ProductDistribution::Create({0.1, 0.5, 0.3}).value();
  ItemRemap remap = ItemRemap::ByProbability(dist);
  SparseVector v = SparseVector::Of({0, 2});
  SparseVector mapped = remap.Apply(v);
  // 0 (p=0.1) -> id 2; 2 (p=0.3) -> id 1.
  EXPECT_EQ(mapped, SparseVector::Of({1, 2}));
}

}  // namespace
}  // namespace skewsearch
