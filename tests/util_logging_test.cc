#include "util/logging.h"

#include <gtest/gtest.h>

namespace skewsearch {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, DefaultFiltersBelowWarning) {
  // The library default keeps tests quiet; just assert the macro compiles
  // and runs at every level without crashing.
  SetLogLevel(LogLevel::kError);
  SKEWSEARCH_LOG(kDebug) << "debug " << 1;
  SKEWSEARCH_LOG(kInfo) << "info " << 2.5;
  SKEWSEARCH_LOG(kWarning) << "warn " << "text";
  SKEWSEARCH_LOG(kError) << "error " << 'c';
  SUCCEED();
}

TEST_F(LoggingTest, StreamAcceptsMixedTypes) {
  SetLogLevel(LogLevel::kError);
  SKEWSEARCH_LOG(kDebug) << 1 << " " << 2u << " " << 3.0 << " " << true;
  SUCCEED();
}

}  // namespace
}  // namespace skewsearch
