// MaintenanceService: the decoupled housekeeping policy. Covers the
// writer-stall fix (Remove only notifies, never compacts inline), the
// background thread compacting dirty shards, drift-triggered parameter
// re-derive + live rebuild (growth and shrink) with recall preserved,
// and snapshot isolation: a reader pinned across compaction and rebuild
// sees byte-identical results to completion.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic_index.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "maintenance/service.h"
#include "util/random.h"

namespace skewsearch {
namespace {

class MaintenanceServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dist_ = TwoBlockProbabilities(150, 0.25, 8000, 0.005).value();
    Rng rng(71);
    data_ = GenerateDataset(dist_, 250, &rng);
  }

  DynamicIndexOptions Options(int num_shards = 4,
                              double compact_fraction = 0.25) const {
    DynamicIndexOptions options;
    options.index.mode = IndexMode::kCorrelated;
    options.index.alpha = 0.7;
    options.index.repetitions = 10;
    options.index.seed = 717;
    options.num_shards = num_shards;
    options.compact_dead_fraction = compact_fraction;
    return options;
  }

  // Samples `count` non-empty vectors the index's *current* filter
  // family emits paths for.
  std::vector<SparseVector> FreshVectors(const DynamicIndex& index,
                                         size_t count, uint64_t seed) {
    std::vector<SparseVector> out;
    Rng rng(seed);
    while (out.size() < count) {
      SparseVector v = dist_.Sample(&rng);
      if (v.span().empty()) continue;
      std::vector<uint64_t> keys;
      for (int rep = 0; rep < index.repetitions(); ++rep) {
        index.family().ComputeFilters(v.span(), static_cast<uint32_t>(rep),
                                      &keys);
      }
      if (!keys.empty()) out.push_back(std::move(v));
    }
    return out;
  }

  // True iff the index's current family emits at least one path for
  // `items` (a path-less vector is legitimately unfindable).
  bool HasPaths(const DynamicIndex& index, std::span<const ItemId> items) {
    std::vector<uint64_t> keys;
    for (int rep = 0; rep < index.repetitions(); ++rep) {
      index.family().ComputeFilters(items, static_cast<uint32_t>(rep),
                                    &keys);
    }
    return !keys.empty();
  }

  ProductDistribution dist_;
  Dataset data_;
};

void ExpectSameMatches(const std::vector<Match>& a,
                       const std::vector<Match>& b, const std::string& ctx) {
  ASSERT_EQ(a.size(), b.size()) << ctx;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << ctx << " entry " << i;
    EXPECT_EQ(a[i].similarity, b[i].similarity) << ctx << " entry " << i;
  }
}

bool ContainsId(const std::vector<Match>& matches, VectorId id) {
  for (const Match& m : matches) {
    if (m.id == id) return true;
  }
  return false;
}

// A writer crossing the threshold must return without compacting; the
// listener is notified instead and the service does the work.
TEST_F(MaintenanceServiceTest, RemoveNotifiesInsteadOfCompactingInline) {
  struct CountingListener : MaintenanceListener {
    void OnShardDirty(int /*shard*/) override { notifications.fetch_add(1); }
    std::atomic<int> notifications{0};
  };
  DynamicIndex index;
  ASSERT_TRUE(index.Build(&data_, &dist_, Options(2, 0.05)).ok());
  CountingListener listener;
  index.SetMaintenanceListener(&listener);
  for (VectorId id = 0; id < 60; ++id) {
    ASSERT_TRUE(index.Remove(id).ok());
  }
  EXPECT_EQ(index.num_compactions(), 0u) << "Remove() compacted inline";
  EXPECT_GT(listener.notifications.load(), 0);
  EXPECT_EQ(index.num_tombstones(), 60u);  // nothing dropped yet
  index.SetMaintenanceListener(nullptr);

  // The service performs the queued work and clears covered tombstones.
  MaintenanceService service;
  ASSERT_TRUE(service.Attach(&index).ok());
  ASSERT_TRUE(service.RunOnce().ok());
  EXPECT_GT(index.num_compactions(), 0u);
  EXPECT_EQ(index.num_tombstones(), 0u);
  EXPECT_EQ(index.size(), data_.size() - 60);
}

TEST_F(MaintenanceServiceTest, BackgroundThreadCompactsDirtyShards) {
  DynamicIndex index, reference;
  ASSERT_TRUE(index.Build(&data_, &dist_, Options(4, 0.10)).ok());
  ASSERT_TRUE(reference.Build(&data_, &dist_, Options(4, 100.0)).ok());
  MaintenanceService service;
  MaintenanceOptions options;
  options.poll_interval_ms = 1;
  options.drift_factor = 0.0;  // isolate compaction
  ASSERT_TRUE(service.Attach(&index, options).ok());
  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(service.running());

  for (VectorId id = 0; id < 100; ++id) {
    ASSERT_TRUE(index.Remove(id).ok());
    ASSERT_TRUE(reference.Remove(id).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (index.num_compactions() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_FALSE(service.running());
  EXPECT_GT(index.num_compactions(), 0u);
  EXPECT_TRUE(service.last_error().ok()) << service.last_error().ToString();
  EXPECT_GT(service.stats().scans, 0u);

  // Compaction is invisible to queries: same answers as the
  // tombstone-only reference.
  CorrelatedQuerySampler sampler(&dist_, 0.7);
  Rng rng(72);
  for (int t = 0; t < 25; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data_.size()));
    SparseVector q = sampler.SampleCorrelated(data_.Get(target), &rng);
    ExpectSameMatches(index.QueryAll(q.span(), 0.0),
                      reference.QueryAll(q.span(), 0.0),
                      "query " + std::to_string(t));
  }
}

TEST_F(MaintenanceServiceTest, DriftRebuildRederivesParameters) {
  // Derived repetitions (repetitions = 0) so the rebuild visibly
  // re-provisions L = ceil(boost * ln n) for the grown live count.
  DynamicIndexOptions options = Options(3, 100.0);
  options.index.repetitions = 0;
  DynamicIndex index;
  ASSERT_TRUE(index.Build(&data_, &dist_, options).ok());
  const int reps_before = index.repetitions();
  const size_t derived_before = index.derived_n();
  EXPECT_EQ(derived_before, data_.size());
  EXPECT_EQ(index.edition_version(), 0u);

  // Grow the live count past the 2x drift factor.
  auto fresh = FreshVectors(index, 2 * data_.size() + 10, 73);
  std::vector<VectorId> inserted_ids;
  for (const SparseVector& v : fresh) {
    auto id = index.Insert(v.span());
    ASSERT_TRUE(id.ok());
    inserted_ids.push_back(*id);
  }
  const size_t live = index.size();
  ASSERT_GT(live, 2 * derived_before);

  MaintenanceService service;
  MaintenanceOptions maintenance;
  maintenance.drift_factor = 2.0;
  maintenance.min_rebuild_n = 2;
  ASSERT_TRUE(service.Attach(&index, maintenance).ok());
  ASSERT_TRUE(service.RunOnce().ok());

  EXPECT_EQ(index.num_rebuilds(), 1u);
  EXPECT_EQ(service.stats().rebuilds, 1u);
  EXPECT_EQ(index.derived_n(), live);
  EXPECT_EQ(index.edition_version(), 1u);
  EXPECT_GT(index.repetitions(), reps_before)
      << "ln n grew by more than a repetition's worth";
  EXPECT_EQ(index.size(), live) << "rebuild changed the live set";

  // Once re-derived, the same live count must not re-trigger.
  ASSERT_TRUE(service.RunOnce().ok());
  EXPECT_EQ(index.num_rebuilds(), 1u);

  // Recall is preserved across the rebuild: every vector the *new*
  // family emits paths for is findable by its exact duplicate.
  for (size_t i = 0; i < fresh.size(); i += 7) {
    if (!HasPaths(index, fresh[i].span())) continue;
    auto all = index.QueryAll(fresh[i].span(), 0.999);
    EXPECT_TRUE(ContainsId(all, inserted_ids[i]))
        << "inserted vector " << i << " lost by the rebuild";
  }
  for (VectorId id = 0; id < data_.size(); id += 11) {
    if (!HasPaths(index, data_.Get(id))) continue;
    auto all = index.QueryAll(data_.Get(id), 0.999);
    EXPECT_TRUE(ContainsId(all, id))
        << "base vector " << id << " lost by the rebuild";
  }

  // Correlated recall meets the same bar the pre-rebuild index is held
  // to elsewhere in the suite.
  CorrelatedQuerySampler sampler(&dist_, 0.8);
  Rng rng(74);
  int found = 0, probed = 0;
  for (size_t i = 0; i < fresh.size(); i += 3) {
    SparseVector q = sampler.SampleCorrelated(fresh[i].span(), &rng);
    ++probed;
    found += ContainsId(index.QueryAll(q.span(), 0.0), inserted_ids[i]);
  }
  EXPECT_GE(found, probed * 7 / 10)
      << "correlated recall after rebuild: " << found << "/" << probed;
}

TEST_F(MaintenanceServiceTest, ShrinkDriftRebuildFiresToo) {
  DynamicIndexOptions options = Options(3, 100.0);
  options.index.repetitions = 0;
  DynamicIndex index;
  ASSERT_TRUE(index.Build(&data_, &dist_, options).ok());
  // Remove down to a third of the build-time n.
  for (VectorId id = 0; id < (2 * data_.size()) / 3; ++id) {
    ASSERT_TRUE(index.Remove(id).ok());
  }
  const size_t live = index.size();
  MaintenanceService service;
  MaintenanceOptions maintenance;
  maintenance.dead_ratio = 100.0;  // isolate the drift path
  maintenance.drift_factor = 2.0;
  maintenance.min_rebuild_n = 2;
  ASSERT_TRUE(service.Attach(&index, maintenance).ok());
  ASSERT_TRUE(service.RunOnce().ok());
  EXPECT_EQ(index.num_rebuilds(), 1u);
  EXPECT_EQ(index.derived_n(), live);
  EXPECT_EQ(index.size(), live);
  // The rebuild regenerated postings for the survivors only; the
  // removed ids stay gone.
  for (VectorId id = 0; id < (2 * data_.size()) / 3; id += 13) {
    EXPECT_FALSE(index.IsLive(id));
    EXPECT_FALSE(ContainsId(index.QueryAll(data_.Get(id), 0.0), id));
  }
  for (VectorId id = static_cast<VectorId>((2 * data_.size()) / 3);
       id < data_.size(); id += 7) {
    if (!HasPaths(index, data_.Get(id))) continue;
    EXPECT_TRUE(ContainsId(index.QueryAll(data_.Get(id), 0.999), id));
  }
}

// The acceptance criterion: for a fixed snapshot epoch, results are
// byte-identical before, during and after background compaction and a
// drift rebuild.
TEST_F(MaintenanceServiceTest, SnapshotIsolationAcrossCompactionAndRebuild) {
  DynamicIndex index;
  ASSERT_TRUE(index.Build(&data_, &dist_, Options(4, 0.25)).ok());
  auto fresh = FreshVectors(index, 30, 75);
  for (const SparseVector& v : fresh) {
    ASSERT_TRUE(index.Insert(v.span()).ok());
  }

  CorrelatedQuerySampler sampler(&dist_, 0.7);
  Rng rng(76);
  std::vector<SparseVector> probes;
  for (int t = 0; t < 20; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data_.size()));
    probes.push_back(sampler.SampleCorrelated(data_.Get(target), &rng));
  }

  DynamicIndex::Snapshot snapshot = index.GetSnapshot();
  ASSERT_TRUE(snapshot.valid());
  const size_t size_at_pin = snapshot.size();
  std::vector<std::vector<Match>> before;
  for (const SparseVector& q : probes) {
    before.push_back(snapshot.QueryAll(q.span(), 0.0));
  }

  // Mutate heavily: removals that trigger compaction, then a rebuild.
  MaintenanceService service;
  MaintenanceOptions maintenance;
  maintenance.drift_factor = 1.01;  // any change counts as drift
  maintenance.min_rebuild_n = 2;
  ASSERT_TRUE(service.Attach(&index, maintenance).ok());
  for (VectorId id = 0; id < 120; ++id) {
    ASSERT_TRUE(index.Remove(id).ok());
  }
  ASSERT_TRUE(service.RunOnce().ok());
  EXPECT_GT(index.num_compactions() + index.num_rebuilds(), 0u);

  // The pinned snapshot still answers from the pre-mutation state.
  EXPECT_EQ(snapshot.size(), size_at_pin);
  for (size_t t = 0; t < probes.size(); ++t) {
    ExpectSameMatches(snapshot.QueryAll(probes[t].span(), 0.0), before[t],
                      "pinned snapshot, probe " + std::to_string(t));
  }
  // A removed id the old snapshot could return must *still* be
  // returnable from it (reads-at-epoch semantics), but never from a
  // fresh view.
  for (size_t t = 0; t < probes.size(); ++t) {
    auto now = index.QueryAll(probes[t].span(), 0.0);
    for (const Match& m : now) {
      EXPECT_FALSE(m.id < 120) << "fresh view returned a removed id";
    }
  }

  // Releasing the snapshot lets the retired tables be reclaimed.
  snapshot = DynamicIndex::Snapshot();
  index.epochs().Collect();
  EXPECT_EQ(index.epochs().limbo_size(), 0u);
}

TEST_F(MaintenanceServiceTest, ServiceLifecycleAndValidation) {
  MaintenanceService service;
  EXPECT_TRUE(service.RunOnce().IsInvalidArgument());
  EXPECT_TRUE(service.Start().IsInvalidArgument());
  EXPECT_TRUE(service.Attach(nullptr).IsInvalidArgument());

  DynamicIndex index;
  ASSERT_TRUE(index.Build(&data_, &dist_, Options()).ok());
  MaintenanceOptions bad;
  bad.poll_interval_ms = 0;
  EXPECT_TRUE(service.Attach(&index, bad).IsInvalidArgument());
  ASSERT_TRUE(service.Attach(&index).ok());
  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(service.Start().ok());  // idempotent
  service.Stop();
  service.Stop();  // idempotent
  ASSERT_TRUE(service.RunOnce().ok());  // manual drive still works
  service.Detach();
  EXPECT_TRUE(service.RunOnce().IsInvalidArgument());

  // Index-side validation of the maintenance entry points.
  EXPECT_TRUE(index.CompactShard(-1).IsInvalidArgument());
  EXPECT_TRUE(index.CompactShard(index.num_shards()).IsInvalidArgument());
  EXPECT_TRUE(index.RebuildForSize(1).IsInvalidArgument());
  DynamicIndex unbuilt;
  EXPECT_TRUE(unbuilt.CompactShard(0).IsInvalidArgument());
  EXPECT_TRUE(unbuilt.RebuildForSize(100).IsInvalidArgument());
}

}  // namespace
}  // namespace skewsearch
