#include "core/split_search.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(SplitSearchTest, AnalyzeValidates) {
  auto dist = UniformProbabilities(100, 0.2).value();
  EXPECT_FALSE(SplitSearcher::Analyze(dist, 100, 0.0).ok());
  EXPECT_FALSE(SplitSearcher::Analyze(dist, 100, 1.0).ok());
  EXPECT_TRUE(SplitSearcher::Analyze(dist, 100, 0.5).ok());
}

TEST(SplitSearchTest, AnalyzePartitionsUniverse) {
  auto dist = TwoBlockProbabilities(300, 0.3, 700, 0.001).value();
  auto plan = SplitSearcher::Analyze(dist, 1000, 0.5).value();
  EXPECT_EQ(plan.frequent_items, 300u);
  EXPECT_EQ(plan.rare_items, 700u);
  EXPECT_GT(plan.ell, 0.0);
  EXPECT_LT(plan.ell, 0.5);
}

TEST(SplitSearchTest, SplitStrictlyBetterOnTwoBlockSkew) {
  // The motivating example's point: balancing ell makes
  // max(rho_f, rho_r) < rho_unsplit when the frequent and rare halves
  // have very different background intersections.
  auto skewed = TwoBlockProbabilities(200, 0.3, 20000, 0.002).value();
  auto plan = SplitSearcher::Analyze(skewed, 4096, 0.5).value();
  EXPECT_LT(std::max(plan.rho_frequent, plan.rho_rare),
            plan.rho_unsplit - 0.05);
}

TEST(SplitSearchTest, SplitStrictlyBetterOnHarmonic) {
  auto harmonic = HarmonicProbabilities(100000).value();
  auto plan = SplitSearcher::Analyze(harmonic, 4096, 0.5).value();
  EXPECT_LT(std::max(plan.rho_frequent, plan.rho_rare),
            plan.rho_unsplit - 0.01);
}

TEST(SplitSearchTest, UniformSplitDegeneratesGracefully) {
  // No skew: the frequency split puts everything on one side; the plan
  // must stay close to the unsplit exponent rather than blowing up.
  auto uniform = UniformProbabilities(1000, 0.1).value();
  auto plan = SplitSearcher::Analyze(uniform, 4096, 0.5).value();
  EXPECT_LE(std::max(plan.rho_frequent, plan.rho_rare), 1.0);
  EXPECT_GE(plan.rho_unsplit, 0.0);
}

TEST(SplitSearchTest, ExplicitEllHonored) {
  auto dist = TwoBlockProbabilities(100, 0.3, 1000, 0.01).value();
  auto plan = SplitSearcher::Analyze(dist, 500, 0.5, -1.0, 0.2).value();
  EXPECT_DOUBLE_EQ(plan.ell, 0.2);
}

TEST(SplitSearchTest, BuildAndQueryFindsDuplicates) {
  auto dist = TwoBlockProbabilities(150, 0.25, 8000, 0.01).value();
  Rng rng(1);
  Dataset data = GenerateDataset(dist, 200, &rng);
  SplitSearcher searcher;
  SplitSearchOptions options;
  options.b1 = 0.7;
  options.index.repetition_boost = 3.0;
  ASSERT_TRUE(searcher.Build(&data, &dist, options).ok());
  EXPECT_GT(searcher.plan().frequent_items, 0u);
  EXPECT_GT(searcher.plan().rare_items, 0u);

  int found = 0;
  for (VectorId id = 0; id < 30; ++id) {
    QueryStats stats;
    auto hit = searcher.Query(data.Get(id), &stats);
    if (hit && hit->similarity >= 0.7) ++found;
  }
  EXPECT_GE(found, 24);
}

TEST(SplitSearchTest, ReturnedSimilarityIsFullVector) {
  auto dist = TwoBlockProbabilities(100, 0.3, 4000, 0.01).value();
  Rng rng(2);
  Dataset data = GenerateDataset(dist, 150, &rng);
  SplitSearcher searcher;
  SplitSearchOptions options;
  options.b1 = 0.8;
  ASSERT_TRUE(searcher.Build(&data, &dist, options).ok());
  auto hit = searcher.Query(data.Get(5));
  if (hit) {
    EXPECT_GE(hit->similarity, 0.8);
  }
}

TEST(SplitSearchTest, BuildValidates) {
  SplitSearcher searcher;
  SplitSearchOptions options;
  auto dist = UniformProbabilities(10, 0.2).value();
  EXPECT_TRUE(searcher.Build(nullptr, &dist, options).IsInvalidArgument());
}

}  // namespace
}  // namespace skewsearch
