// Differential identity suite for the SKF1 frozen-shard path: a mapped
// index (MapFrozen) must answer every query byte-identically to the heap
// index it was frozen from (and to a heap Load of the same build),
// across dataset shapes, seeds, sharded and unsharded — plus committed
// save -> freeze -> map round-trip goldens that pin the format bytes.
// Regenerate goldens with SKEWSEARCH_REGEN_GOLDEN=1 after a deliberate
// format change (and update docs/FILE_FORMATS.md accordingly).

#include "core/frozen_shard.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/sharded_index.h"
#include "core/skewed_index.h"
#include "data/generators.h"
#include "data/mann_profiles.h"
#include "test_paths.h"
#include "util/random.h"

namespace skewsearch {
namespace {

struct Shape {
  const char* name;
  ProductDistribution dist;
  size_t n;
};

std::vector<Shape> AllShapes() {
  std::vector<Shape> shapes;
  shapes.push_back(
      {"Zipf", ZipfProbabilities(4000, 0.8, 0.4).value(), 200});
  shapes.push_back(
      {"TwoBlock", TwoBlockProbabilities(150, 0.25, 6000, 0.005).value(),
       200});
  return shapes;
}

/// A small Mann-style stand-in (piecewise-Zipf head/tail), sized for
/// test speed rather than fidelity.
Shape MannShape(uint64_t seed) {
  MannProfileSpec spec;
  spec.name = "TEST";
  spec.n = 180;
  spec.d = 1500;
  spec.avg_size = 10.0;
  spec.zipf_exponent = 0.9;
  spec.head_fraction = 0.15;
  spec.head_exponent = 0.4;
  spec.topic_strength = 0.0;
  spec.topic_size = 0;
  spec.heavy_tail = 0.0;
  Rng rng(seed);
  MannInstance inst = BuildMannInstance(spec, &rng).value();
  return {"Mann", std::move(inst.distribution), inst.data.size()};
}

SkewedIndexOptions Options(uint64_t seed) {
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.repetitions = 6;
  options.seed = seed * 1000003 + 17;
  return options;
}

/// Exhaustive self-join sweep through QueryAll: the canonical pair list
/// both index flavors must agree on byte-for-byte.
std::vector<std::pair<VectorId, Match>> JoinSweep(const Dataset& data,
                                                  const SkewedPathIndex& a) {
  std::vector<std::pair<VectorId, Match>> pairs;
  for (VectorId id = 0; id < data.size(); ++id) {
    for (const Match& m :
         a.QueryAll(data.Get(id), a.verify_threshold())) {
      if (m.id != id) pairs.emplace_back(id, m);
    }
  }
  return pairs;
}

std::vector<std::pair<VectorId, Match>> JoinSweep(const Dataset& data,
                                                  const ShardedIndex& a) {
  std::vector<std::pair<VectorId, Match>> pairs;
  for (VectorId id = 0; id < data.size(); ++id) {
    for (const Match& m :
         a.QueryAll(data.Get(id), a.verify_threshold())) {
      if (m.id != id) pairs.emplace_back(id, m);
    }
  }
  return pairs;
}

template <typename Index>
void ExpectIdenticalQueries(const Dataset& data, const Index& heap,
                            const Index& mapped) {
  size_t hits = 0;
  for (VectorId id = 0; id < data.size(); ++id) {
    auto query = data.Get(id);
    auto a = heap.Query(query);
    auto b = mapped.Query(query);
    ASSERT_EQ(a.has_value(), b.has_value()) << "query " << id;
    if (a) {
      EXPECT_EQ(a->id, b->id) << "query " << id;
      EXPECT_EQ(a->similarity, b->similarity) << "query " << id;
      ++hits;
    }
    EXPECT_EQ(heap.QueryAll(query, heap.verify_threshold()),
              mapped.QueryAll(query, mapped.verify_threshold()))
        << "query " << id;
  }
  // Self-queries must find themselves, so the comparison is never
  // vacuous.
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(JoinSweep(data, heap), JoinSweep(data, mapped));
}

class FrozenShardTest : public ::testing::Test {
 protected:
  std::string Tmp(const std::string& suffix) {
    return test::TempPath("frozen_shard", this, suffix);
  }
  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }
  std::string Track(std::string path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(FrozenShardTest, MapMatchesHeapLoadAcrossShapesAndSeeds) {
  for (uint64_t seed : {7u, 21u}) {
    std::vector<Shape> shapes = AllShapes();
    shapes.push_back(MannShape(seed));
    for (Shape& shape : shapes) {
      SCOPED_TRACE(std::string(shape.name) + " seed " +
                   std::to_string(seed));
      Rng rng(seed);
      Dataset data = GenerateDataset(shape.dist, shape.n, &rng);

      SkewedPathIndex built;
      ASSERT_TRUE(built.Build(&data, &shape.dist, Options(seed)).ok());
      std::string saved = Track(Tmp(".skidx"));
      std::string frozen = Track(Tmp(".skf"));
      ASSERT_TRUE(built.Save(saved).ok());
      ASSERT_TRUE(built.Freeze(frozen).ok());

      SkewedPathIndex heap;
      ASSERT_TRUE(heap.Load(saved, &data, &shape.dist).ok());
      SkewedPathIndex mapped;
      ASSERT_TRUE(mapped.MapFrozen(frozen, &data, &shape.dist).ok());
      ASSERT_TRUE(mapped.built());
      ASSERT_NE(mapped.frozen_file(), nullptr);
      EXPECT_TRUE(mapped.filter_table().is_view());
      // The view holds no posting heap of its own.
      EXPECT_LT(mapped.MemoryBytes(), heap.MemoryBytes() / 4 + 1024);

      ExpectIdenticalQueries(data, heap, mapped);
      ExpectIdenticalQueries(data, built, mapped);
    }
  }
}

TEST_F(FrozenShardTest, ShardedMapMatchesHeapLoad) {
  for (uint64_t seed : {3u, 13u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto dist = TwoBlockProbabilities(120, 0.22, 5000, 0.006).value();
    Rng rng(seed);
    Dataset data = GenerateDataset(dist, 220, &rng);

    ShardedIndexOptions options;
    options.index = Options(seed);
    options.num_shards = 3;
    ShardedIndex built;
    ASSERT_TRUE(built.Build(&data, &dist, options).ok());
    std::string saved = Track(Tmp(".skidx"));
    std::string frozen = Track(Tmp(".skf"));
    ASSERT_TRUE(built.Save(saved).ok());
    ASSERT_TRUE(built.Freeze(frozen).ok());

    ShardedIndex heap;
    ASSERT_TRUE(heap.Load(saved, &data, &dist).ok());
    ShardedIndex mapped;
    ASSERT_TRUE(mapped.MapFrozen(frozen, &data, &dist).ok());
    ASSERT_EQ(mapped.num_shards(), 3);
    ASSERT_NE(mapped.frozen_file(), nullptr);

    ExpectIdenticalQueries(data, heap, mapped);
    ExpectIdenticalQueries(data, built, mapped);

    // The full-validation map (payload checksums + shard placement) must
    // accept a well-formed file and serve the same results.
    FrozenMapOptions verify;
    verify.verify_payload = true;
    ShardedIndex verified;
    ASSERT_TRUE(verified.MapFrozen(frozen, &data, &dist, verify).ok());
    ExpectIdenticalQueries(data, heap, verified);
  }
}

TEST_F(FrozenShardTest, HeapFallbackServesIdenticalResults) {
  auto dist = TwoBlockProbabilities(100, 0.25, 4000, 0.008).value();
  Rng rng(5);
  Dataset data = GenerateDataset(dist, 180, &rng);
  SkewedPathIndex built;
  ASSERT_TRUE(built.Build(&data, &dist, Options(5)).ok());
  std::string frozen = Track(Tmp(".skf"));
  ASSERT_TRUE(built.Freeze(frozen).ok());

  FrozenMapOptions heap_options;
  heap_options.force_heap = true;
  SkewedPathIndex mapped;
  ASSERT_TRUE(mapped.MapFrozen(frozen, &data, &dist, heap_options).ok());
  ASSERT_NE(mapped.frozen_file(), nullptr);
  EXPECT_FALSE(mapped.frozen_file()->mapped());
  ExpectIdenticalQueries(data, built, mapped);
}

TEST_F(FrozenShardTest, BatchQueriesMatchAcrossThreadCounts) {
  auto dist = TwoBlockProbabilities(100, 0.25, 4000, 0.008).value();
  Rng rng(9);
  Dataset data = GenerateDataset(dist, 180, &rng);
  SkewedPathIndex built;
  ASSERT_TRUE(built.Build(&data, &dist, Options(9)).ok());
  std::string frozen = Track(Tmp(".skf"));
  ASSERT_TRUE(built.Freeze(frozen).ok());
  SkewedPathIndex mapped;
  ASSERT_TRUE(mapped.MapFrozen(frozen, &data, &dist).ok());

  auto serial = built.BatchQuery(data, 0);
  // Views are immutable shared state; concurrent probes must agree with
  // the serial heap answers exactly.
  auto parallel = mapped.BatchQuery(data, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].has_value(), parallel[i].has_value()) << i;
    if (serial[i]) {
      EXPECT_EQ(serial[i]->id, parallel[i]->id) << i;
      EXPECT_EQ(serial[i]->similarity, parallel[i]->similarity) << i;
    }
  }
}

TEST_F(FrozenShardTest, ApiErrors) {
  auto dist = TwoBlockProbabilities(80, 0.25, 3000, 0.01).value();
  Rng rng(2);
  Dataset data = GenerateDataset(dist, 120, &rng);

  SkewedPathIndex unbuilt;
  EXPECT_TRUE(unbuilt.Freeze(Tmp(".skf")).IsInvalidArgument());

  SkewedPathIndex built;
  ASSERT_TRUE(built.Build(&data, &dist, Options(2)).ok());
  std::string frozen = Track(Tmp(".skf"));
  ASSERT_TRUE(built.Freeze(frozen).ok());

  // Wrong dataset: rejected by the fingerprint before any view exists.
  Rng other_rng(3);
  Dataset other = GenerateDataset(dist, 120, &other_rng);
  SkewedPathIndex mapped;
  EXPECT_TRUE(mapped.MapFrozen(frozen, &other, &dist).IsInvalidArgument());

  // A heap-format file is not a frozen file.
  std::string saved = Track(Tmp(".skidx"));
  ASSERT_TRUE(built.Save(saved).ok());
  EXPECT_TRUE(mapped.MapFrozen(saved, &data, &dist).IsInvalidArgument());

  // A sharded frozen file cannot back an unsharded index (and vice
  // versa the shard count always comes from the file).
  ShardedIndexOptions sharded_options;
  sharded_options.index = Options(2);
  sharded_options.num_shards = 2;
  ShardedIndex sharded;
  ASSERT_TRUE(sharded.Build(&data, &dist, sharded_options).ok());
  std::string sharded_frozen = Track(Tmp("_sharded.skf"));
  ASSERT_TRUE(sharded.Freeze(sharded_frozen).ok());
  EXPECT_TRUE(
      mapped.MapFrozen(sharded_frozen, &data, &dist).IsInvalidArgument());

  EXPECT_TRUE(
      mapped.MapFrozen(Tmp("_missing.skf"), &data, &dist).IsIOError());
}

// ---------------------------------------------------------------------
// Round-trip goldens: the exact bytes of a freeze of a fixed build are
// pinned under tests/golden/. A mismatch means the SKF1 format changed;
// that must be deliberate (bump the format notes in FILE_FORMATS.md and
// regenerate with SKEWSEARCH_REGEN_GOLDEN=1).

std::string GoldenDir() {
  return std::string(SKEWSEARCH_TEST_DIR) + "/golden";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return in ? buffer.str() : std::string();
}

class FrozenGoldenTest : public FrozenShardTest {
 protected:
  /// The fixed build every golden derives from: deterministic dataset,
  /// deterministic options.
  void MakeFixedInstance(Dataset* data, ProductDistribution* dist) {
    *dist = TwoBlockProbabilities(90, 0.2, 2500, 0.01).value();
    Rng rng(12345);
    *data = GenerateDataset(*dist, 140, &rng);
  }

  /// Compares the freshly frozen \p path to the committed golden, or
  /// (re)writes the golden when SKEWSEARCH_REGEN_GOLDEN is set.
  void CheckGolden(const std::string& path, const std::string& name) {
    const std::string golden_path = GoldenDir() + "/" + name;
    const std::string fresh = ReadFile(path);
    ASSERT_FALSE(fresh.empty());
    if (std::getenv("SKEWSEARCH_REGEN_GOLDEN") != nullptr) {
      std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
      out << fresh;
      ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
      GTEST_SKIP() << "regenerated " << golden_path;
    }
    const std::string golden = ReadFile(golden_path);
    ASSERT_FALSE(golden.empty())
        << golden_path
        << " missing; run with SKEWSEARCH_REGEN_GOLDEN=1 to create it";
    EXPECT_EQ(fresh.size(), golden.size()) << name;
    EXPECT_TRUE(fresh == golden)
        << name << ": frozen bytes diverge from the committed golden";
  }
};

TEST_F(FrozenGoldenTest, SingleShardRoundTrip) {
  Dataset data;
  ProductDistribution dist;
  MakeFixedInstance(&data, &dist);
  SkewedPathIndex built;
  ASSERT_TRUE(built.Build(&data, &dist, Options(777)).ok());
  std::string frozen = Track(Tmp(".skf"));
  ASSERT_TRUE(built.Freeze(frozen).ok());
  CheckGolden(frozen, "frozen_single_v1.skf");

  // The committed golden itself must map and serve the same answers as
  // the fresh build (save -> freeze -> map round trip).
  SkewedPathIndex mapped;
  ASSERT_TRUE(
      mapped.MapFrozen(GoldenDir() + "/frozen_single_v1.skf", &data, &dist)
          .ok());
  ExpectIdenticalQueries(data, built, mapped);
}

TEST_F(FrozenGoldenTest, ShardedRoundTrip) {
  Dataset data;
  ProductDistribution dist;
  MakeFixedInstance(&data, &dist);
  ShardedIndexOptions options;
  options.index = Options(777);
  options.num_shards = 3;
  ShardedIndex built;
  ASSERT_TRUE(built.Build(&data, &dist, options).ok());
  std::string frozen = Track(Tmp(".skf"));
  ASSERT_TRUE(built.Freeze(frozen).ok());
  CheckGolden(frozen, "frozen_sharded_v1.skf");

  ShardedIndex mapped;
  FrozenMapOptions verify;
  verify.verify_payload = true;
  ASSERT_TRUE(mapped
                  .MapFrozen(GoldenDir() + "/frozen_sharded_v1.skf", &data,
                             &dist, verify)
                  .ok());
  ExpectIdenticalQueries(data, built, mapped);
}

}  // namespace
}  // namespace skewsearch
