#include "distributed/distributed_join.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/similarity_join.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

JoinOptions AdversarialJoinOptions(double b1, uint64_t seed) {
  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = b1;
  options.index.repetition_boost = 3.0;
  options.index.seed = seed;
  options.threshold = b1;
  return options;
}

DistributedJoinOptions DistributedFrom(const JoinOptions& options,
                                       int workers) {
  DistributedJoinOptions distributed;
  distributed.index = options.index;
  distributed.threshold = options.threshold;
  distributed.workers = workers;
  return distributed;
}

Dataset ZipfDataWithDuplicates(uint64_t seed, size_t n,
                               ProductDistribution* dist_out) {
  auto dist = ZipfProbabilities(2000, 1.0, 0.4).value();
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) data.Add(dist.Sample(&rng));
  for (size_t i = 0; i < n / 10; ++i) {
    data.Add(data.GetVector(static_cast<VectorId>(i * 3)));
  }
  EXPECT_TRUE(data.SetDimension(2000).ok());
  *dist_out = std::move(dist);
  return data;
}

Dataset TwoBlockDataWithDuplicates(uint64_t seed, size_t n,
                                   ProductDistribution* dist_out) {
  auto dist = TwoBlockProbabilities(60, 0.25, 1500, 0.01).value();
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) data.Add(dist.Sample(&rng));
  for (size_t i = 0; i < n / 10; ++i) {
    data.Add(data.GetVector(static_cast<VectorId>(i * 5)));
  }
  EXPECT_TRUE(data.SetDimension(1560).ok());
  *dist_out = std::move(dist);
  return data;
}

void ExpectIdentical(const std::vector<JoinPair>& expected,
                     const std::vector<JoinPair>& got) {
  ASSERT_EQ(expected.size(), got.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].left, got[i].left) << "pair " << i;
    EXPECT_EQ(expected[i].right, got[i].right) << "pair " << i;
    EXPECT_DOUBLE_EQ(expected[i].similarity, got[i].similarity)
        << "pair " << i;
  }
}

/// The acceptance-criterion sweep: DistributedSelfJoin must equal the
/// single-process SelfSimilarityJoin pair-for-pair for W in {1, 2, 7}.
void RunIdentitySweep(const Dataset& data, const ProductDistribution& dist,
                      const JoinOptions& options) {
  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->size(), 0u) << "sweep needs a non-trivial output";
  for (int workers : {1, 2, 7}) {
    SCOPED_TRACE("workers = " + std::to_string(workers));
    DistributedJoin join;
    ASSERT_TRUE(
        join.Build(&data, &dist, DistributedFrom(options, workers)).ok());
    DistributedJoinStats stats;
    auto got = join.SelfJoin(&stats);
    ASSERT_TRUE(got.ok());
    ExpectIdentical(*expected, *got);
    EXPECT_EQ(stats.pairs, got->size());
    EXPECT_GE(stats.duplication_factor, workers > 1 ? 1.0 : 0.0);
    EXPECT_EQ(stats.workers.size(), static_cast<size_t>(workers));
  }
}

TEST(DistributedJoinTest, SelfJoinIdenticalToSingleProcessOnZipf) {
  for (uint64_t seed : {11u, 12u}) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    ProductDistribution dist;
    Dataset data = ZipfDataWithDuplicates(seed, 120, &dist);
    RunIdentitySweep(data, dist, AdversarialJoinOptions(0.8, seed));
  }
}

TEST(DistributedJoinTest, SelfJoinIdenticalToSingleProcessOnTwoBlock) {
  for (uint64_t seed : {21u, 22u}) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    ProductDistribution dist;
    Dataset data = TwoBlockDataWithDuplicates(seed, 120, &dist);
    RunIdentitySweep(data, dist, AdversarialJoinOptions(0.8, seed));
  }
}

TEST(DistributedJoinTest, ForcedHeavySplittingPreservesOutput) {
  // heavy_threshold 1 makes *every* key heavy (maximal slicing and
  // probe fan-out); the output must not change.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(31, 100, &dist);
  JoinOptions options = AdversarialJoinOptions(0.8, 31);
  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());

  DistributedJoinOptions distributed = DistributedFrom(options, 5);
  distributed.heavy_threshold = 1;
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());
  DistributedJoinStats stats;
  auto got = join.SelfJoin(&stats);
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
  EXPECT_GT(stats.heavy_keys, 0u);
  EXPECT_GT(stats.replicated_slices, stats.heavy_keys);
}

TEST(DistributedJoinTest, AllLightRoutingPreservesOutput) {
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(32, 100, &dist);
  JoinOptions options = AdversarialJoinOptions(0.8, 32);
  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());

  DistributedJoinOptions distributed = DistributedFrom(options, 5);
  distributed.heavy_threshold = data.size() * 1000;  // nothing is heavy
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());
  DistributedJoinStats stats;
  auto got = join.SelfJoin(&stats);
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
  EXPECT_EQ(stats.heavy_keys, 0u);
  EXPECT_GE(stats.probe_fanout, 1.0);
  EXPECT_LE(stats.probe_fanout, 5.0);
}

TEST(DistributedJoinTest, SampledPlanPreservesOutput) {
  // Routing decisions may differ under a sampled estimate pass, but the
  // slices still cover the table, so the output is unchanged.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(33, 100, &dist);
  JoinOptions options = AdversarialJoinOptions(0.8, 33);
  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());

  DistributedJoinOptions distributed = DistributedFrom(options, 4);
  distributed.sample_fraction = 0.4;
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());
  auto got = join.SelfJoin();
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
}

TEST(DistributedJoinTest, RSJoinIdenticalToSingleProcess) {
  ProductDistribution dist;
  Dataset right = ZipfDataWithDuplicates(41, 100, &dist);
  Rng rng(42);
  Dataset left;
  for (VectorId id = 0; id < 10; ++id) left.Add(right.GetVector(id * 2));
  for (int i = 0; i < 30; ++i) left.Add(dist.Sample(&rng));
  ASSERT_TRUE(left.SetDimension(2000).ok());

  JoinOptions options = AdversarialJoinOptions(0.8, 41);
  auto expected = SimilarityJoin(left, right, dist, options);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->size(), 0u);
  for (int workers : {1, 2, 7}) {
    SCOPED_TRACE("workers = " + std::to_string(workers));
    DistributedJoin join;
    ASSERT_TRUE(
        join.Build(&right, &dist, DistributedFrom(options, workers)).ok());
    auto got = join.Join(left);
    ASSERT_TRUE(got.ok());
    ExpectIdentical(*expected, *got);
  }
}

TEST(DistributedJoinParallelIdentityTest, ThreadsDoNotChangeOutput) {
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(51, 120, &dist);
  JoinOptions options = AdversarialJoinOptions(0.8, 51);
  DistributedJoinOptions serial_options = DistributedFrom(options, 4);
  DistributedJoin serial;
  ASSERT_TRUE(serial.Build(&data, &dist, serial_options).ok());
  auto expected = serial.SelfJoin();
  ASSERT_TRUE(expected.ok());

  DistributedJoinOptions parallel_options = DistributedFrom(options, 4);
  parallel_options.threads = 4;
  DistributedJoin parallel;
  ASSERT_TRUE(parallel.Build(&data, &dist, parallel_options).ok());
  auto got = parallel.SelfJoin();
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
}

TEST(DistributedJoinTest, JoinOptionsWorkersRouteThroughBackend) {
  // The pluggable-backend seam: SelfSimilarityJoin with workers > 1
  // must produce the same pairs and report distributed stats.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(61, 100, &dist);
  JoinOptions options = AdversarialJoinOptions(0.8, 61);
  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());

  JoinOptions via_backend = options;
  via_backend.workers = 3;
  JoinStats stats;
  auto got = SelfSimilarityJoin(data, dist, via_backend, &stats);
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
  EXPECT_EQ(stats.pairs, got->size());
  EXPECT_GE(stats.duplication_factor, 1.0);
  EXPECT_GE(stats.probe_fanout, 1.0);
}

TEST(DistributedJoinTest, WorkersIncompatibleWithOnline) {
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(62, 50, &dist);
  JoinOptions options = AdversarialJoinOptions(0.8, 62);
  options.workers = 2;
  options.online = true;
  auto result = SelfSimilarityJoin(data, dist, options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(DistributedJoinTest, PropagatesBuildErrors) {
  auto dist = UniformProbabilities(10, 0.2).value();
  Dataset tiny;
  tiny.Add(SparseVector::Of({1}));
  DistributedJoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = 0.5;
  DistributedJoin join;
  EXPECT_TRUE(join.Build(&tiny, &dist, options).IsInvalidArgument());
  EXPECT_FALSE(join.built());
  EXPECT_FALSE(join.SelfJoin().ok());
}

TEST(DistributedJoinTest, FailedBuildLeavesCoordinatorUnbuilt) {
  // A failure *after* the family derivation (here: an invalid worker
  // count, rejected by the planner) must not leave built() true with
  // zero workers — SelfJoin would then return an empty result instead
  // of an error.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(81, 60, &dist);
  DistributedJoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = 0.8;
  options.workers = 0;
  DistributedJoin join;
  EXPECT_TRUE(join.Build(&data, &dist, options).IsInvalidArgument());
  EXPECT_FALSE(join.built());
  auto result = join.SelfJoin();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());

  // And a failed re-Build keeps the previous good state serving.
  options.workers = 3;
  ASSERT_TRUE(join.Build(&data, &dist, options).ok());
  auto expected = join.SelfJoin();
  ASSERT_TRUE(expected.ok());
  DistributedJoinOptions bad = options;
  bad.workers = 100000;  // beyond the planner's cap
  EXPECT_TRUE(join.Build(&data, &dist, bad).IsInvalidArgument());
  EXPECT_TRUE(join.built());
  auto still = join.SelfJoin();
  ASSERT_TRUE(still.ok());
  ExpectIdentical(*expected, *still);
}

TEST(DistributedJoinTest, WorkerLoadsAccountForEveryEntry) {
  // The slices are a disjoint cover: per-worker entries must sum to the
  // monolithic table's pair count, whatever the split.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(71, 120, &dist);
  JoinOptions options = AdversarialJoinOptions(0.8, 71);

  SkewedPathIndex index;
  ASSERT_TRUE(index.Build(&data, &dist, options.index).ok());
  const size_t expected_entries = index.filter_table().num_pairs();

  for (size_t heavy_threshold : {size_t{1}, size_t{0}, size_t{1000000}}) {
    SCOPED_TRACE("heavy_threshold = " + std::to_string(heavy_threshold));
    DistributedJoinOptions distributed = DistributedFrom(options, 6);
    distributed.heavy_threshold = heavy_threshold;
    DistributedJoin join;
    ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());
    size_t total = 0;
    for (int w = 0; w < join.num_workers(); ++w) {
      total += join.worker(w).num_entries();
    }
    EXPECT_EQ(total, expected_entries);
  }
}

}  // namespace
}  // namespace skewsearch
