// Integration: full user pipelines — generate -> persist -> reload ->
// estimate frequencies from the data (§9) -> build -> query/join.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/rho.h"
#include "core/similarity_join.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/estimate.h"
#include "data/generators.h"
#include "data/io.h"
#include "data/mann_profiles.h"
#include "test_paths.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(PipelineTest, PersistReloadEstimateBuildQuery) {
  std::string path;
  path = test::TempPath("pipeline_data", &path, ".txt");
  const double alpha = 0.75;
  auto truth = TwoBlockProbabilities(200, 0.25, 8000, 0.01).value();
  Rng rng(1);
  Dataset original = GenerateDataset(truth, 400, &rng);
  ASSERT_TRUE(WriteTransactions(original, path).ok());

  auto loaded = ReadTransactions(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_TRUE(loaded->SetDimension(truth.dimension()).ok());

  // Section 9: estimate p_i from the data instead of using the truth.
  auto estimated = EstimateFrequencies(*loaded);
  ASSERT_TRUE(estimated.ok());

  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = alpha;
  options.repetition_boost = 2.5;
  ASSERT_TRUE(index.Build(&*loaded, &*estimated, options).ok());

  CorrelatedQuerySampler sampler(&truth, alpha);
  int found = 0;
  const int kQueries = 40;
  for (int t = 0; t < kQueries; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(loaded->size()));
    SparseVector q = sampler.SampleCorrelated(loaded->Get(target), &rng);
    auto hit = index.Query(q.span());
    if (hit && hit->id == target) ++found;
  }
  // Estimated probabilities should barely cost recall (paper §9).
  EXPECT_GE(found, kQueries * 3 / 4);
  std::remove(path.c_str());
}

TEST(PipelineTest, MannProfileEndToEnd) {
  // Build a Mann stand-in, estimate its frequencies, index it, and dedup.
  auto spec = FindMannProfile("BMS-POS").value();
  spec.n = 400;
  Rng rng(2);
  auto inst = BuildMannInstance(spec, &rng);
  ASSERT_TRUE(inst.ok());

  auto est = EstimateFrequencies(inst->data);
  ASSERT_TRUE(est.ok());

  // Plant duplicates, then self-join.
  Dataset data = inst->data;
  for (VectorId id = 0; id < 10; ++id) data.Add(data.GetVector(id * 7));
  ASSERT_TRUE(data.SetDimension(est->dimension()).ok());

  JoinOptions join_options;
  join_options.index.mode = IndexMode::kAdversarial;
  join_options.index.b1 = 0.85;
  join_options.index.repetition_boost = 3.0;
  join_options.threshold = 0.85;
  JoinStats stats;
  auto pairs = SelfSimilarityJoin(data, *est, join_options, &stats);
  ASSERT_TRUE(pairs.ok());
  // At least most of the planted duplicate pairs surface.
  size_t planted_found = 0;
  for (const auto& p : *pairs) {
    if (p.right >= 400 && p.left == (p.right - 400) * 7) ++planted_found;
  }
  EXPECT_GE(planted_found, 7u);
}

TEST(PipelineTest, JoinAgainstSeparateQuerySet) {
  auto dist = UniformProbabilities(1200, 0.05).value();
  Rng rng(3);
  Dataset s = GenerateDataset(dist, 250, &rng);
  // R = noisy copies of a subset of S.
  CorrelatedQuerySampler sampler(&dist, 0.9);
  Dataset r;
  for (VectorId id = 0; id < 40; ++id) {
    r.Add(sampler.SampleCorrelated(s.Get(id * 3), &rng));
  }
  ASSERT_TRUE(r.SetDimension(1200).ok());

  JoinOptions join_options;
  join_options.index.mode = IndexMode::kCorrelated;
  join_options.index.alpha = 0.9;
  join_options.index.repetition_boost = 2.5;
  join_options.threshold = 0.55;
  auto pairs = SimilarityJoin(r, s, dist, join_options);
  ASSERT_TRUE(pairs.ok());
  size_t expected_pairs = 0;
  for (const auto& p : *pairs) {
    if (p.right == p.left * 3) ++expected_pairs;
  }
  EXPECT_GE(expected_pairs, 30u);
}

TEST(PipelineTest, EstimatedAndTrueDistributionsAgreeOnRho) {
  // The rho computed from estimated frequencies should be close to the
  // truth — the quantity that governs performance end to end.
  auto truth = TwoBlockProbabilities(100, 0.3, 5000, 0.01).value();
  Rng rng(4);
  Dataset data = GenerateDataset(truth, 2000, &rng);
  auto est = EstimateFrequencies(data);
  ASSERT_TRUE(est.ok());
  double rho_true = CorrelatedRho(truth, 0.7).value();
  double rho_est = CorrelatedRho(*est, 0.7).value();
  EXPECT_NEAR(rho_est, rho_true, 0.05);
}

}  // namespace
}  // namespace skewsearch
