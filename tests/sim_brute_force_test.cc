#include "sim/brute_force.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

Dataset SmallData() {
  Dataset data;
  data.Add(SparseVector::Of({1, 2, 3, 4}));      // 0
  data.Add(SparseVector::Of({1, 2, 3, 4, 5}));   // 1
  data.Add(SparseVector::Of({10, 11, 12}));      // 2
  data.Add(SparseVector::Of({1, 2}));            // 3
  return data;
}

TEST(BruteForceTest, BestFindsExactDuplicate) {
  Dataset data = SmallData();
  BruteForceSearcher searcher(&data);
  SparseVector q = SparseVector::Of({1, 2, 3, 4});
  Match best = searcher.Best(q.span());
  EXPECT_EQ(best.id, 0u);
  EXPECT_DOUBLE_EQ(best.similarity, 1.0);
}

TEST(BruteForceTest, AboveThresholdSortedDescending) {
  Dataset data = SmallData();
  BruteForceSearcher searcher(&data);
  SparseVector q = SparseVector::Of({1, 2, 3, 4});
  auto hits = searcher.AboveThreshold(q.span(), 0.4);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[1].id, 1u);  // 4/5
  EXPECT_EQ(hits[2].id, 3u);  // 2/4
  EXPECT_GE(hits[0].similarity, hits[1].similarity);
  EXPECT_GE(hits[1].similarity, hits[2].similarity);
}

TEST(BruteForceTest, ThresholdIsInclusive) {
  Dataset data = SmallData();
  BruteForceSearcher searcher(&data);
  SparseVector q = SparseVector::Of({1, 2, 3, 4});
  auto hits = searcher.AboveThreshold(q.span(), 0.5);  // id 3 has exactly 0.5
  bool found3 = false;
  for (const auto& m : hits) found3 |= (m.id == 3u);
  EXPECT_TRUE(found3);
}

TEST(BruteForceTest, TopKTruncates) {
  Dataset data = SmallData();
  BruteForceSearcher searcher(&data);
  SparseVector q = SparseVector::Of({1, 2, 3, 4});
  auto top2 = searcher.TopK(q.span(), 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].id, 0u);
  EXPECT_EQ(top2[1].id, 1u);
  auto top10 = searcher.TopK(q.span(), 10);
  EXPECT_EQ(top10.size(), 4u);
}

TEST(BruteForceTest, EmptyDataset) {
  Dataset data;
  BruteForceSearcher searcher(&data);
  SparseVector q = SparseVector::Of({1});
  EXPECT_EQ(searcher.Best(q.span()).similarity, -1.0);
  EXPECT_TRUE(searcher.AboveThreshold(q.span(), 0.1).empty());
}

TEST(BruteForceTest, AlternativeMeasure) {
  Dataset data = SmallData();
  BruteForceSearcher searcher(&data, Measure::kJaccard);
  SparseVector q = SparseVector::Of({1, 2, 3, 4});
  auto hits = searcher.AboveThreshold(q.span(), 0.75);
  ASSERT_EQ(hits.size(), 2u);  // id0 J=1, id1 J=4/5
  EXPECT_EQ(hits[0].id, 0u);
}

TEST(BruteForceTest, SelfJoinMatchesPairwiseScan) {
  auto dist = UniformProbabilities(60, 0.2).value();
  Rng rng(5);
  Dataset data = GenerateDataset(dist, 40, &rng);
  BruteForceSearcher searcher(&data);
  auto pairs = searcher.SelfJoinAbove(0.5);
  // Verify every reported pair and count independently.
  size_t expect = 0;
  for (VectorId i = 0; i < data.size(); ++i) {
    for (VectorId j = i + 1; j < data.size(); ++j) {
      if (BraunBlanquet(data.Get(i), data.Get(j)) >= 0.5) ++expect;
    }
  }
  EXPECT_EQ(pairs.size(), expect);
  for (const auto& pr : pairs) {
    EXPECT_LT(pr.left, pr.right);
    EXPECT_GE(pr.similarity, 0.5);
    EXPECT_DOUBLE_EQ(pr.similarity,
                     BraunBlanquet(data.Get(pr.left), data.Get(pr.right)));
  }
}

}  // namespace
}  // namespace skewsearch
