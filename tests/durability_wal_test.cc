// Copyright 2026 The skewsearch Authors.
// SKW1 WAL: round-trip, sync-policy semantics, and the torn-write
// fuzz corpus. The durability contract under test is the truncation
// rule of docs/FILE_FORMATS.md: decoding any damaged image must stop
// cleanly at the last intact record — never crash, never over-replay
// past the first torn or corrupt byte — and truncating the file to
// valid_bytes must make every future decode of it byte-identical.
// FaultFile crash images additionally pin the policy side: under
// kAlways/kGroup every acknowledged record is inside the synced
// prefix, so no acked mutation can be lost to a crash.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "durability/fault_file.h"
#include "durability/wal.h"
#include "test_paths.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using wal_internal::kFileHeaderSize;
using wal_internal::kRecordHeaderSize;

// One mutation of the generated log, with its byte extent in the
// pristine image (so the fuzzers can aim at boundaries and fields).
struct LoggedRecord {
  WalRecord::Type type;
  VectorId id;
  std::vector<ItemId> items;
  uint64_t begin = 0;  // first byte of the record header
  uint64_t end = 0;    // one past the last payload byte
};

void ExpectRecordEq(const WalRecord& got, const LoggedRecord& want,
                    uint64_t want_seq, const std::string& ctx) {
  EXPECT_EQ(got.type, want.type) << ctx;
  EXPECT_EQ(got.seq, want_seq) << ctx;
  EXPECT_EQ(got.id, want.id) << ctx;
  ASSERT_EQ(got.items.size(), want.items.size()) << ctx;
  for (size_t i = 0; i < got.items.size(); ++i) {
    EXPECT_EQ(got.items[i], want.items[i]) << ctx << " item " << i;
  }
}

// ---------------------------------------------------------------------------
// Round-trip + writer semantics.

class WalRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = test::TempPath("wal_roundtrip", this, ".skw");
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(WalRoundTripTest, EncodeDecodeMixedRecords) {
  WalWriterOptions options;
  options.sync_policy = SyncPolicy::kNone;
  auto writer = WalWriter::Open(path_, options, 0, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().message();

  std::vector<LoggedRecord> logged;
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    LoggedRecord r;
    if (i % 5 == 3 && !logged.empty()) {
      r.type = WalRecord::Type::kRemove;
      r.id = logged[rng.NextBounded(logged.size())].id;
    } else {
      r.type = WalRecord::Type::kInsert;
      r.id = 1000 + static_cast<VectorId>(i);
      const size_t len = 1 + rng.NextBounded(9);
      ItemId item = static_cast<ItemId>(rng.NextBounded(50));
      for (size_t k = 0; k < len; ++k) {
        r.items.push_back(item);
        item += 1 + static_cast<ItemId>(rng.NextBounded(40));
      }
    }
    Result<uint64_t> seq = (*writer)->Append(r.type, r.id, r.items);
    ASSERT_TRUE(seq.ok()) << seq.status().message();
    EXPECT_EQ(*seq, static_cast<uint64_t>(i + 1));
    logged.push_back(std::move(r));
  }
  ASSERT_TRUE((*writer)->Sync().ok());

  Result<WalReadResult> read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_FALSE(read->truncated);
  EXPECT_EQ(read->next_seq, logged.size() + 1);
  EXPECT_EQ(read->valid_bytes, (*writer)->bytes());
  ASSERT_EQ(read->records.size(), logged.size());
  for (size_t i = 0; i < logged.size(); ++i) {
    ExpectRecordEq(read->records[i], logged[i], i + 1,
                   "record " + std::to_string(i));
  }
}

TEST_F(WalRoundTripTest, ReopenContinuesSequence) {
  WalWriterOptions options;
  options.sync_policy = SyncPolicy::kAlways;
  {
    auto writer = WalWriter::Open(path_, options, 0, 1);
    ASSERT_TRUE(writer.ok());
    const std::vector<ItemId> items = {3, 9, 27};
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*writer)->Append(WalRecord::Type::kInsert, 500 + i, items).ok());
    }
  }
  Result<WalReadResult> first = ReadWal(path_);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->truncated);
  ASSERT_EQ(first->records.size(), 3u);

  // Reopen exactly the way recovery does: existing size + next seq.
  auto writer =
      WalWriter::Open(path_, options, first->valid_bytes, first->next_seq);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalRecord::Type::kRemove, 501, {}).ok());
  ASSERT_TRUE(
      (*writer)->Append(WalRecord::Type::kInsert, 600, {{1, 2}}).ok());

  Result<WalReadResult> read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->truncated);
  ASSERT_EQ(read->records.size(), 5u);
  for (size_t i = 0; i < read->records.size(); ++i) {
    EXPECT_EQ(read->records[i].seq, i + 1);
  }
  EXPECT_EQ(read->records[3].type, WalRecord::Type::kRemove);
  EXPECT_EQ(read->records[3].id, 501u);
}

TEST_F(WalRoundTripTest, RemoveRecordsRejectItems) {
  auto writer = WalWriter::Open(path_, WalWriterOptions{}, 0, 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<ItemId> items = {1};
  Result<uint64_t> seq =
      (*writer)->Append(WalRecord::Type::kRemove, 7, items);
  EXPECT_FALSE(seq.ok());
  EXPECT_EQ(seq.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(WalRoundTripTest, MissingFileIsNotFound) {
  Result<WalReadResult> read = ReadWal(path_ + ".nonexistent");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kNotFound);
}

TEST_F(WalRoundTripTest, HeaderOnlyFileIsEmptyLog) {
  {
    auto writer = WalWriter::Open(path_, WalWriterOptions{}, 0, 1);
    ASSERT_TRUE(writer.ok());
  }
  Result<WalReadResult> read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_FALSE(read->truncated);
  EXPECT_EQ(read->next_seq, 1u);
  EXPECT_EQ(read->valid_bytes, kFileHeaderSize);
}

TEST_F(WalRoundTripTest, EmptyImageDecodesEmpty) {
  Result<WalReadResult> read = DecodeWal({});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_FALSE(read->truncated);
  EXPECT_EQ(read->valid_bytes, 0u);
}

TEST_F(WalRoundTripTest, BadMagicIsLoudNotTorn) {
  std::string bytes(kFileHeaderSize, '\0');
  std::memcpy(bytes.data(), "NOPE", 4);
  Result<WalReadResult> read = DecodeWal(bytes);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kIOError);
}

TEST_F(WalRoundTripTest, ParseSyncPolicyRoundTrips) {
  for (SyncPolicy policy : {SyncPolicy::kNone, SyncPolicy::kInterval,
                            SyncPolicy::kGroup, SyncPolicy::kAlways}) {
    Result<SyncPolicy> parsed = ParseSyncPolicy(SyncPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseSyncPolicy("fsync-maybe").ok());
}

TEST_F(WalRoundTripTest, TruncateKeepsSuffixAndSequenceContinues) {
  WalWriterOptions options;
  options.sync_policy = SyncPolicy::kNone;
  auto writer = WalWriter::Open(path_, options, 0, 1);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 10; ++i) {
    const std::vector<ItemId> items = {static_cast<ItemId>(i),
                                       static_cast<ItemId>(i + 100)};
    ASSERT_TRUE(
        (*writer)->Append(WalRecord::Type::kInsert, 900 + i, items).ok());
  }
  ASSERT_TRUE((*writer)->Truncate(5).ok());
  EXPECT_EQ((*writer)->num_truncations(), 1u);

  Result<WalReadResult> read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->truncated);
  ASSERT_EQ(read->records.size(), 5u);
  EXPECT_EQ(read->records.front().seq, 6u);
  EXPECT_EQ(read->records.back().seq, 10u);
  EXPECT_EQ(read->next_seq, 11u);

  // The reopened-in-place writer keeps appending where it left off.
  ASSERT_TRUE((*writer)->Append(WalRecord::Type::kRemove, 903, {}).ok());
  read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 6u);
  EXPECT_EQ(read->records.back().seq, 11u);
}

TEST_F(WalRoundTripTest, TruncateAllYieldsEmptyLog) {
  auto writer = WalWriter::Open(path_, WalWriterOptions{}, 0, 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<ItemId> items = {4, 8};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        (*writer)->Append(WalRecord::Type::kInsert, 50 + i, items).ok());
  }
  ASSERT_TRUE((*writer)->Truncate((*writer)->last_appended_seq()).ok());
  Result<WalReadResult> read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->valid_bytes, kFileHeaderSize);
  // Decoding an emptied log restarts numbering; the *live* writer keeps
  // counting (recovery never reopens a log it did not just decode, so
  // the two never disagree in practice).
  EXPECT_EQ(read->next_seq, 1u);
  EXPECT_EQ((*writer)->next_seq(), 5u);
}

TEST_F(WalRoundTripTest, TruncateUnsupportedOnSinkBackedWriter) {
  auto writer = WalWriter::OpenWithSink(std::make_unique<FaultFile>(),
                                        WalWriterOptions{}, 1, true);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalRecord::Type::kInsert, 1, {{1}}).ok());
  Status truncated = (*writer)->Truncate(0);
  EXPECT_EQ(truncated.code(), Status::Code::kNotSupported);
}

// ---------------------------------------------------------------------------
// Sync-policy semantics over the fault-injection sink.

class WalSyncPolicyTest : public ::testing::Test {
 protected:
  // Opens a sink-backed writer and returns the borrowed FaultFile.
  std::unique_ptr<WalWriter> OpenFaulty(SyncPolicy policy, FaultFile** file,
                                        int interval_ms = 5) {
    auto sink = std::make_unique<FaultFile>();
    *file = sink.get();
    WalWriterOptions options;
    options.sync_policy = policy;
    options.interval_ms = interval_ms;
    auto writer =
        WalWriter::OpenWithSink(std::move(sink), options, 1, true);
    EXPECT_TRUE(writer.ok());
    return std::move(writer).value();
  }

  const std::vector<ItemId> items_ = {2, 3, 5, 8, 13};
};

TEST_F(WalSyncPolicyTest, AlwaysSyncsEveryAppend) {
  FaultFile* file = nullptr;
  auto writer = OpenFaulty(SyncPolicy::kAlways, &file);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        writer->Append(WalRecord::Type::kInsert, 10 + i, items_).ok());
    // The whole log so far is inside the synced prefix: a crash image
    // at synced_size loses nothing acknowledged.
    EXPECT_EQ(file->synced_size(), writer->bytes());
    EXPECT_EQ(writer->last_synced_seq(), static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(file->num_syncs(), 8u);  // dedicated fsync per ack, no sharing
}

TEST_F(WalSyncPolicyTest, GroupSyncsBeforeAck) {
  FaultFile* file = nullptr;
  auto writer = OpenFaulty(SyncPolicy::kGroup, &file);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        writer->Append(WalRecord::Type::kInsert, 10 + i, items_).ok());
    EXPECT_GE(writer->last_synced_seq(), static_cast<uint64_t>(i + 1));
    EXPECT_EQ(file->synced_size(), writer->bytes());
  }
}

TEST_F(WalSyncPolicyTest, GroupCommitSharesFsyncsAcrossThreads) {
  FaultFile* file = nullptr;
  auto writer = OpenFaulty(SyncPolicy::kGroup, &file);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Result<uint64_t> seq = writer->Append(
            WalRecord::Type::kInsert,
            static_cast<VectorId>(1000 + t * kPerThread + i), items_);
        ASSERT_TRUE(seq.ok());
        // Group commit's contract: by the time the append returns, a
        // sync covering this seq has completed.
        EXPECT_GE(writer->last_synced_seq(), *seq);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(writer->num_appends(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(file->synced_size(), writer->bytes());
  // Sharing is the point: strictly fewer fsyncs than acks would need
  // under kAlways (equality only if no two commits ever overlapped,
  // which the assertion tolerates — but the decode must stay intact).
  EXPECT_LE(file->num_syncs(), writer->num_appends());
  Result<WalReadResult> read = DecodeWal(file->bytes());
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->truncated);
  EXPECT_EQ(read->records.size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST_F(WalSyncPolicyTest, IntervalDefersSyncs) {
  FaultFile* file = nullptr;
  // An hour-long interval: no append-piggybacked sync can trigger.
  auto writer =
      OpenFaulty(SyncPolicy::kInterval, &file, /*interval_ms=*/3600000);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        writer->Append(WalRecord::Type::kInsert, 10 + i, items_).ok());
  }
  EXPECT_EQ(file->synced_size(), 0u);
  EXPECT_EQ(writer->last_synced_seq(), 0u);
  ASSERT_TRUE(writer->Sync().ok());  // explicit barrier still works
  EXPECT_EQ(file->synced_size(), writer->bytes());
  EXPECT_EQ(writer->last_synced_seq(), 8u);
}

TEST_F(WalSyncPolicyTest, NoneNeverSyncs) {
  FaultFile* file = nullptr;
  auto writer = OpenFaulty(SyncPolicy::kNone, &file);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        writer->Append(WalRecord::Type::kInsert, 10 + i, items_).ok());
  }
  EXPECT_EQ(file->num_syncs(), 0u);
  // A crash now may lose everything — but what survives still decodes:
  // the synced image is just the (empty) log.
  Result<WalReadResult> read = DecodeWal(
      file->CrashImage(file->synced_size()));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
}

TEST_F(WalSyncPolicyTest, FailedAppendPoisonsWriter) {
  auto sink = std::make_unique<FaultFile>();
  FaultFile* file = sink.get();
  WalWriterOptions options;
  options.sync_policy = SyncPolicy::kNone;
  auto writer = WalWriter::OpenWithSink(std::move(sink), options, 1, true);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(WalRecord::Type::kInsert, 1, items_).ok());
  // Arm the budget so the next record's bytes do not fit.
  file->set_fail_after(file->bytes().size() + 4);
  Result<uint64_t> failed =
      (*writer)->Append(WalRecord::Type::kInsert, 2, items_);
  ASSERT_FALSE(failed.ok());
  // Poisoned: even with the budget lifted, appends must keep failing —
  // the file may end mid-record and anything behind the tear would be
  // silently dropped by recovery.
  file->set_fail_after(UINT64_MAX);
  Result<uint64_t> after =
      (*writer)->Append(WalRecord::Type::kInsert, 3, items_);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), Status::Code::kIOError);
}

// ---------------------------------------------------------------------------
// Torn-write fuzz: every boundary, every byte class, seeded corpus.

class WalTornWriteFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sink = std::make_unique<FaultFile>();
    FaultFile* file = sink.get();
    WalWriterOptions options;
    options.sync_policy = SyncPolicy::kNone;
    auto writer =
        WalWriter::OpenWithSink(std::move(sink), options, 1, true);
    ASSERT_TRUE(writer.ok());

    Rng rng(2026);
    uint64_t offset = kFileHeaderSize;
    for (int i = 0; i < 24; ++i) {
      LoggedRecord r;
      if (i % 6 == 4) {
        r.type = WalRecord::Type::kRemove;
        r.id = 2000 + static_cast<VectorId>(i / 6);
      } else {
        r.type = WalRecord::Type::kInsert;
        r.id = 2000 + static_cast<VectorId>(i);
        const size_t len = 1 + rng.NextBounded(12);
        ItemId item = static_cast<ItemId>(rng.NextBounded(30));
        for (size_t k = 0; k < len; ++k) {
          r.items.push_back(item);
          item += 1 + static_cast<ItemId>(rng.NextBounded(25));
        }
      }
      ASSERT_TRUE((*writer)->Append(r.type, r.id, r.items).ok());
      r.begin = offset;
      offset = (*writer)->bytes();
      r.end = offset;
      records_.push_back(std::move(r));
    }
    pristine_ = file->bytes();
    ASSERT_EQ(pristine_.size(), offset);
  }

  // The oracle: decoding `image` must (a) never fail at record level,
  // (b) yield a strict prefix of the pristine records — same type,
  // seq, id, items — and (c) be deterministic: re-truncating the image
  // to valid_bytes and decoding again must give the same clean prefix.
  // `expect_records` < 0 means "any prefix length is acceptable".
  void ExpectCleanPrefix(const std::string& image, int expect_records,
                         const std::string& ctx) {
    Result<WalReadResult> read = DecodeWal(image);
    ASSERT_TRUE(read.ok()) << ctx << ": " << read.status().message();
    ASSERT_LE(read->records.size(), records_.size()) << ctx;
    if (expect_records >= 0) {
      ASSERT_EQ(read->records.size(), static_cast<size_t>(expect_records))
          << ctx << " (stop reason: " << read->truncate_reason << ")";
    }
    for (size_t i = 0; i < read->records.size(); ++i) {
      ExpectRecordEq(read->records[i], records_[i], i + 1,
                     ctx + " record " + std::to_string(i));
    }
    ASSERT_LE(read->valid_bytes, image.size()) << ctx;
    if (!read->records.empty()) {
      EXPECT_EQ(read->valid_bytes, records_[read->records.size() - 1].end)
          << ctx;
    }
    // Deterministic truncation: the repaired file decodes clean.
    Result<WalReadResult> again =
        DecodeWal(std::span<const char>(image.data(), read->valid_bytes));
    ASSERT_TRUE(again.ok()) << ctx;
    EXPECT_FALSE(again->truncated) << ctx;
    ASSERT_EQ(again->records.size(), read->records.size()) << ctx;
    EXPECT_EQ(again->next_seq, read->next_seq) << ctx;
  }

  // Number of pristine records wholly inside the first `cut` bytes.
  int RecordsWithin(uint64_t cut) const {
    int n = 0;
    while (n < static_cast<int>(records_.size()) &&
           records_[n].end <= cut) {
      ++n;
    }
    return n;
  }

  std::string pristine_;
  std::vector<LoggedRecord> records_;
};

TEST_F(WalTornWriteFuzzTest, TruncationAtEveryRecordBoundary) {
  const int64_t deltas[] = {-65, -23, -8, -1, 0, 1, 7, 23};
  for (size_t i = 0; i < records_.size(); ++i) {
    for (int64_t delta : deltas) {
      const int64_t cut_signed =
          static_cast<int64_t>(records_[i].end) + delta;
      if (cut_signed < static_cast<int64_t>(kFileHeaderSize)) continue;
      const uint64_t cut =
          std::min<uint64_t>(static_cast<uint64_t>(cut_signed),
                             pristine_.size());
      ExpectCleanPrefix(pristine_.substr(0, cut), RecordsWithin(cut),
                        "boundary " + std::to_string(i) + " delta " +
                            std::to_string(delta));
    }
  }
}

TEST_F(WalTornWriteFuzzTest, TruncationInsideFileHeader) {
  for (uint64_t cut = 0; cut < kFileHeaderSize; ++cut) {
    Result<WalReadResult> read =
        DecodeWal(std::span<const char>(pristine_.data(), cut));
    ASSERT_TRUE(read.ok()) << "cut " << cut;
    EXPECT_TRUE(read->records.empty()) << "cut " << cut;
    EXPECT_EQ(read->valid_bytes, 0u) << "cut " << cut;
    EXPECT_EQ(read->truncated, cut != 0) << "cut " << cut;
  }
}

TEST_F(WalTornWriteFuzzTest, ByteFlipEveryFieldClass) {
  // Field classes inside a record, as offsets from its first byte.
  struct FieldProbe {
    const char* name;
    uint64_t offset;  // relative; payload probes handled separately
  };
  const FieldProbe header_probes[] = {
      {"type", 0},     {"pad1", 1},  {"pad3", 3},  {"len_lo", 4},
      {"len_hi", 7},   {"seq_lo", 8}, {"seq_hi", 15}, {"crc_lo", 16},
      {"crc_hi", 23},
  };
  const uint8_t masks[] = {0x01, 0x80, 0xff};
  // Probe a spread of records: first, a middle insert, a remove, last.
  const size_t probe_records[] = {0, records_.size() / 2, 4,
                                  records_.size() - 1};
  for (size_t ri : probe_records) {
    const LoggedRecord& r = records_[ri];
    for (const FieldProbe& probe : header_probes) {
      for (uint8_t mask : masks) {
        std::string image = pristine_;
        image[r.begin + probe.offset] =
            static_cast<char>(image[r.begin + probe.offset] ^ mask);
        // Any in-record damage must stop decoding exactly at record ri.
        ExpectCleanPrefix(image, static_cast<int>(ri),
                          std::string("flip ") + probe.name + " mask " +
                              std::to_string(mask) + " record " +
                              std::to_string(ri));
      }
    }
    // Payload probes: first and last payload byte (when present).
    if (r.end > r.begin + kRecordHeaderSize) {
      for (uint64_t off : {r.begin + kRecordHeaderSize, r.end - 1}) {
        std::string image = pristine_;
        image[off] = static_cast<char>(image[off] ^ 0x40);
        ExpectCleanPrefix(image, static_cast<int>(ri),
                          "flip payload record " + std::to_string(ri));
      }
    }
  }
}

TEST_F(WalTornWriteFuzzTest, FileHeaderFlipsFailLoudly) {
  for (uint64_t off = 0; off < kFileHeaderSize; ++off) {
    std::string image = pristine_;
    image[off] = static_cast<char>(image[off] ^ 0x08);
    Result<WalReadResult> read = DecodeWal(image);
    // A present-but-wrong header is not a WAL: loud error, no replay.
    ASSERT_FALSE(read.ok()) << "header byte " << off;
    EXPECT_EQ(read.status().code(), Status::Code::kIOError)
        << "header byte " << off;
  }
}

TEST_F(WalTornWriteFuzzTest, SeededRandomFlipCorpus) {
  Rng rng(42);
  for (int trial = 0; trial < 400; ++trial) {
    const uint64_t offset =
        kFileHeaderSize +
        rng.NextBounded(pristine_.size() - kFileHeaderSize);
    const uint8_t mask = static_cast<uint8_t>(1 + rng.NextBounded(255));
    std::string image = pristine_;
    image[offset] = static_cast<char>(image[offset] ^ mask);
    // The damaged record index bounds the surviving prefix exactly:
    // every record before it must decode, the flipped one must not.
    const int damaged = RecordsWithin(offset);  // offset >= its begin
    ExpectCleanPrefix(image, damaged,
                      "trial " + std::to_string(trial) + " offset " +
                          std::to_string(offset));
  }
}

TEST_F(WalTornWriteFuzzTest, SeededRandomTruncationCorpus) {
  Rng rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t cut =
        kFileHeaderSize +
        rng.NextBounded(pristine_.size() - kFileHeaderSize + 1);
    ExpectCleanPrefix(pristine_.substr(0, cut), RecordsWithin(cut),
                      "trial " + std::to_string(trial) + " cut " +
                          std::to_string(cut));
  }
}

TEST_F(WalTornWriteFuzzTest, ShearedCrashImagesViaFaultFile) {
  // Re-drive the same stream through a writer that syncs per append,
  // then shear crash images at every record with extra torn bytes and
  // bit rot — the FaultFile materialization path end to end.
  auto sink = std::make_unique<FaultFile>();
  FaultFile* file = sink.get();
  WalWriterOptions options;
  options.sync_policy = SyncPolicy::kAlways;
  auto writer = WalWriter::OpenWithSink(std::move(sink), options, 1, true);
  ASSERT_TRUE(writer.ok());
  for (const LoggedRecord& r : records_) {
    ASSERT_TRUE((*writer)->Append(r.type, r.id, r.items).ok());
  }
  const std::string path = test::TempPath("wal_shear", this, ".skw");
  for (size_t i = 0; i < records_.size(); i += 3) {
    // Torn write: keep through record i, shear 5 bytes off its tail.
    ASSERT_TRUE(
        file->MaterializeCrash(path, records_[i].end, /*shorten_tail=*/5)
            .ok());
    Result<WalReadResult> read = ReadWal(path);
    ASSERT_TRUE(read.ok());
    ASSERT_EQ(read->records.size(), i) << "shear at record " << i;
    // Bit rot inside the kept prefix: stop even earlier.
    if (i >= 2) {
      const FaultFile::Corruption rot[] = {
          {records_[i / 2].begin + 17, 0x20}};  // crc byte of record i/2
      ASSERT_TRUE(file->MaterializeCrash(path, records_[i].end, 0, rot).ok());
      read = ReadWal(path);
      ASSERT_TRUE(read.ok());
      EXPECT_EQ(read->records.size(), i / 2) << "rot at record " << i / 2;
      EXPECT_TRUE(read->truncated);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skewsearch
