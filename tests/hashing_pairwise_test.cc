#include "hashing/pairwise.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace skewsearch {
namespace {

TEST(ModMersenne61Test, SmallValuesUnchanged) {
  EXPECT_EQ(ModMersenne61(0), 0u);
  EXPECT_EQ(ModMersenne61(12345), 12345u);
  EXPECT_EQ(ModMersenne61(kMersenne61 - 1), kMersenne61 - 1);
}

TEST(ModMersenne61Test, ReducesLargeValues) {
  EXPECT_EQ(ModMersenne61(kMersenne61), 0u);
  EXPECT_EQ(ModMersenne61(kMersenne61 + 5), 5u);
  // 2^61 = 1 (mod p) => 2^64 = 8 (mod p).
  EXPECT_EQ(ModMersenne61(~uint64_t{0}),
            (uint64_t{0xffffffffffffffff} % kMersenne61));
}

TEST(MulModMersenne61Test, MatchesNaiveOnSmall) {
  for (uint64_t a : {3ull, 1000ull, 123456789ull}) {
    for (uint64_t b : {7ull, 99991ull, 987654321ull}) {
      EXPECT_EQ(MulModMersenne61(a, b), (a * b) % kMersenne61);
    }
  }
}

TEST(MulModMersenne61Test, LargeOperands) {
  // Verify via __int128 reference.
  uint64_t a = kMersenne61 - 2;
  uint64_t b = kMersenne61 - 3;
  unsigned __int128 expect =
      static_cast<unsigned __int128>(a) * b % kMersenne61;
  EXPECT_EQ(MulModMersenne61(a, b), static_cast<uint64_t>(expect));
}

TEST(PairwiseHashTest, Deterministic) {
  PairwiseHash h(12345, 6789);
  EXPECT_EQ(h.HashInt(42), h.HashInt(42));
  EXPECT_DOUBLE_EQ(h.HashUnit(42), h.HashUnit(42));
}

TEST(PairwiseHashTest, IdentityCoefficients) {
  // a=1, b=0: h(x) = x mod p.
  PairwiseHash h(1, 0);
  EXPECT_EQ(h.HashInt(12345), 12345u);
}

TEST(PairwiseHashTest, UnitRange) {
  Rng rng(5);
  PairwiseHash h(&rng);
  for (uint64_t x = 0; x < 10000; ++x) {
    double u = h.HashUnit(x * 2654435761ULL);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PairwiseHashTest, MarginalUniformity) {
  // For a fixed input, over random (a,b), h(x) is uniform. Spot-check via
  // mean over many functions.
  Rng rng(7);
  double sum = 0.0;
  const int kFunctions = 20000;
  for (int i = 0; i < kFunctions; ++i) {
    PairwiseHash h(&rng);
    sum += h.HashUnit(123456789);
  }
  EXPECT_NEAR(sum / kFunctions, 0.5, 0.01);
}

TEST(PairwiseHashTest, PairwiseIndependenceStatistical) {
  // For two fixed distinct inputs x != y, the events {h(x) < 1/2} and
  // {h(y) < 1/2} should be independent over the draw of (a, b):
  // Pr[both] ~ 1/4.
  Rng rng(11);
  const int kFunctions = 40000;
  int both = 0, first = 0, second = 0;
  for (int i = 0; i < kFunctions; ++i) {
    PairwiseHash h(&rng);
    bool e1 = h.HashUnit(111) < 0.5;
    bool e2 = h.HashUnit(999) < 0.5;
    first += e1;
    second += e2;
    both += (e1 && e2);
  }
  EXPECT_NEAR(static_cast<double>(first) / kFunctions, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(second) / kFunctions, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(both) / kFunctions, 0.25, 0.02);
}

TEST(PairwiseHashTest, ZeroMultiplierPromotedToOne) {
  PairwiseHash h(0, 5);  // a must not be 0; constructor fixes it up
  // h(x) = x + 5 mod p with a forced to 1.
  EXPECT_EQ(h.HashInt(10), 15u);
}

}  // namespace
}  // namespace skewsearch
