#include "cli/cli.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "data/io.h"
#include "test_paths.h"

namespace skewsearch {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = test::TempPath("cli_test", this);
    text_ = path_ + ".txt";
    bin_ = path_ + ".bin";
  }
  void TearDown() override {
    std::remove(text_.c_str());
    std::remove(bin_.c_str());
  }
  std::string path_, text_, bin_;
};

TEST_F(CliTest, HelpSucceeds) {
  EXPECT_EQ(RunCli({"help"}), 0);
}

TEST_F(CliTest, EmptyArgsFail) {
  EXPECT_EQ(RunCli({}), 1);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(RunCli({"frobnicate"}), 1);
}

TEST_F(CliTest, MalformedFlagsFail) {
  EXPECT_EQ(RunCli({"generate", "positional"}), 1);
  EXPECT_EQ(RunCli({"generate", "--n"}), 1);  // missing value
}

TEST_F(CliTest, GenerateRequiresOut) {
  EXPECT_EQ(RunCli({"generate", "--kind", "uniform", "--n", "10", "--d",
                    "20", "--p", "0.2"}),
            1);
}

TEST_F(CliTest, GenerateWritesReadableDataset) {
  ASSERT_EQ(RunCli({"generate", "--kind", "uniform", "--n", "50", "--d",
                    "100", "--p", "0.2", "--seed", "3", "--out", text_}),
            0);
  auto data = ReadTransactions(text_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 50u);
  EXPECT_NEAR(data->AverageSize(), 20.0, 4.0);
}

TEST_F(CliTest, GenerateUnknownKindFails) {
  EXPECT_EQ(RunCli({"generate", "--kind", "cauchy", "--out", text_}), 1);
}

TEST_F(CliTest, GenerateBinaryRoundTrip) {
  ASSERT_EQ(RunCli({"generate", "--kind", "zipf", "--n", "80", "--d", "500",
                    "--avg", "8", "--out", bin_, "--binary"}),
            0);
  auto data = ReadBinary(bin_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 80u);
}

TEST_F(CliTest, ProfileOnGeneratedData) {
  ASSERT_EQ(RunCli({"generate", "--kind", "zipf", "--n", "200", "--d",
                    "1000", "--avg", "10", "--out", text_}),
            0);
  EXPECT_EQ(RunCli({"profile", "--in", text_}), 0);
}

TEST_F(CliTest, ProfileMissingFileFails) {
  EXPECT_EQ(RunCli({"profile", "--in", "/nonexistent/nope.txt"}), 1);
  EXPECT_EQ(RunCli({"profile"}), 1);
}

TEST_F(CliTest, IndependenceOnGeneratedData) {
  ASSERT_EQ(RunCli({"generate", "--kind", "uniform", "--n", "300", "--d",
                    "60", "--p", "0.2", "--out", text_}),
            0);
  EXPECT_EQ(RunCli({"independence", "--in", text_}), 0);
}

TEST_F(CliTest, QueryBenchRuns) {
  ASSERT_EQ(RunCli({"generate", "--kind", "twoblock", "--n", "200", "--d",
                    "80", "--p", "0.25", "--d2", "2000", "--p2", "0.01",
                    "--out", text_}),
            0);
  EXPECT_EQ(RunCli({"query-bench", "--in", text_, "--alpha", "0.8",
                    "--queries", "10"}),
            0);
}

TEST_F(CliTest, SelfJoinRuns) {
  ASSERT_EQ(RunCli({"generate", "--kind", "uniform", "--n", "120", "--d",
                    "400", "--p", "0.05", "--out", text_}),
            0);
  EXPECT_EQ(RunCli({"selfjoin", "--in", text_, "--b1", "0.8"}), 0);
}

TEST_F(CliTest, QueryBenchOnlineWithMaintenanceRuns) {
  ASSERT_EQ(RunCli({"generate", "--kind", "twoblock", "--n", "200", "--d",
                    "80", "--p", "0.25", "--d2", "2000", "--p2", "0.01",
                    "--out", text_}),
            0);
  // Manual maintenance drive: churn forces tombstones, the flushed
  // RunOnce compacts, a tight drift factor forces a live rebuild.
  EXPECT_EQ(RunCli({"query-bench", "--in", text_, "--alpha", "0.8",
                    "--queries", "10", "--shards", "2", "--online",
                    "--maintenance", "0", "--dead-ratio", "0.1",
                    "--drift-factor", "1.05", "--churn", "60"}),
            0);
  // Background thread on (the default when any maintenance flag is set).
  EXPECT_EQ(RunCli({"query-bench", "--in", text_, "--alpha", "0.8",
                    "--queries", "10", "--churn", "40"}),
            0);
}

TEST_F(CliTest, SelfJoinOnlineRuns) {
  ASSERT_EQ(RunCli({"generate", "--kind", "uniform", "--n", "120", "--d",
                    "400", "--p", "0.05", "--out", text_}),
            0);
  EXPECT_EQ(RunCli({"selfjoin", "--in", text_, "--b1", "0.8", "--online",
                    "--maintenance", "1", "--shards", "2"}),
            0);
  // Manual maintenance drive: the net no-op churn tombstones enough
  // entries that the aggressive dead-ratio compacts during the join.
  EXPECT_EQ(RunCli({"selfjoin", "--in", text_, "--b1", "0.8",
                    "--maintenance", "0", "--dead-ratio", "0.1",
                    "--churn", "60"}),
            0);
}

TEST_F(CliTest, MannStandInWorks) {
  EXPECT_EQ(RunCli({"mann", "--name", "DBLP", "--n", "300", "--out", text_}),
            0);
  auto data = ReadTransactions(text_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 300u);
}

TEST_F(CliTest, MannUnknownNameFails) {
  EXPECT_EQ(RunCli({"mann", "--name", "NOPE", "--out", text_}), 1);
}

TEST_F(CliTest, GarbageNumericFlagsFallBackInsteadOfThrowing) {
  // Malformed numbers must not escape as exceptions; defaults kick in.
  EXPECT_EQ(RunCli({"generate", "--kind", "uniform", "--n", "banana",
                    "--d", "50", "--p", "0.2", "--out", text_}),
            0);
  auto data = ReadTransactions(text_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 10000u);  // the documented default n
}

}  // namespace
}  // namespace skewsearch
