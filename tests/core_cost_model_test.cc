#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dynamic_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(CostModelTest, Validates) {
  auto dist = UniformProbabilities(100, 0.1).value();
  CostModelOptions options;
  options.n = 1;
  EXPECT_FALSE(PredictFilterGeneration(dist, options).ok());
  options.n = 1000;
  options.budget_bins = 2;
  EXPECT_FALSE(PredictFilterGeneration(dist, options).ok());
  options.budget_bins = 512;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.0;
  EXPECT_FALSE(PredictFilterGeneration(dist, options).ok());
  options.mode = IndexMode::kAdversarial;
  options.b1 = 1.0;
  EXPECT_FALSE(PredictFilterGeneration(dist, options).ok());
}

TEST(CostModelTest, DepthProfileConsistent) {
  auto dist = TwoBlockProbabilities(200, 0.25, 10000, 0.005).value();
  CostModelOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.delta = 0.1;
  options.n = 2048;
  auto prediction = PredictFilterGeneration(dist, options).value();
  double total = 0.0;
  for (double v : prediction.filters_by_depth) total += v;
  EXPECT_NEAR(total, prediction.expected_filters,
              1e-9 * (1.0 + prediction.expected_filters));
  EXPECT_GT(prediction.expected_filters, 0.0);
  EXPECT_GT(prediction.expected_nodes, 0.0);
  EXPECT_GE(prediction.expected_draws, prediction.expected_nodes);
  EXPECT_GT(prediction.mean_filter_depth, 1.0);
}

TEST(CostModelTest, RareItemsShortenPredictedPaths) {
  // Under extreme skew most filters end through a rare item quickly;
  // uniform at the same m must predict deeper filters.
  auto skewed = TwoBlockProbabilities(120, 0.25, 60000, 0.0005).value();
  auto uniform = UniformProbabilities(240, 0.25).value();  // same m = 60
  CostModelOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.delta = 0.1;
  options.n = 4096;
  auto s = PredictFilterGeneration(skewed, options).value();
  auto u = PredictFilterGeneration(uniform, options).value();
  EXPECT_LT(s.mean_filter_depth, u.mean_filter_depth);
}

TEST(CostModelTest, MonotoneInDelta) {
  auto dist = TwoBlockProbabilities(150, 0.25, 10000, 0.005).value();
  CostModelOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.n = 2048;
  double prev = 0.0;
  for (double delta : {0.0, 0.1, 0.2, 0.4}) {
    options.delta = delta;
    double filters =
        PredictFilterGeneration(dist, options)->expected_filters;
    EXPECT_GT(filters, prev) << "delta " << delta;
    prev = filters;
  }
}

TEST(CostModelTest, MatchesMeasuredBuildWithinBand) {
  // The annealed prediction should land within a small factor of the
  // measured filters/element of an actual build (without-replacement and
  // finite-size effects cause mild deviations).
  auto dist = TwoBlockProbabilities(200, 0.25, 10000, 0.005).value();
  const size_t n = 1024;
  Rng rng(5);
  Dataset data = GenerateDataset(dist, n, &rng);
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.delta = 0.1;
  options.repetitions = 6;
  SkewedPathIndex index;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  double measured = index.build_stats().avg_filters_per_element;
  double predicted = PredictFiltersPerElement(dist, options, n).value();
  EXPECT_GT(predicted, measured / 2.5);
  EXPECT_LT(predicted, measured * 2.5);
}

TEST(CostModelTest, AdversarialModeMatchesMeasuredBand) {
  auto dist = TwoBlockProbabilities(300, 0.2, 20000, 0.004).value();
  const size_t n = 1024;
  Rng rng(6);
  Dataset data = GenerateDataset(dist, n, &rng);
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.5;
  options.repetitions = 6;
  SkewedPathIndex index;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  double measured = index.build_stats().avg_filters_per_element;
  double predicted = PredictFiltersPerElement(dist, options, n).value();
  EXPECT_GT(predicted, measured / 3.0);
  EXPECT_LT(predicted, measured * 3.0);
}

TEST(OnlineCostModelTest, CandidateFactorBasics) {
  OnlineIndexProfile profile;
  EXPECT_DOUBLE_EQ(PredictOnlineCandidateFactor(profile), 1.0);
  profile.base_entries = 900;
  profile.delta_entries = 100;
  EXPECT_DOUBLE_EQ(PredictOnlineCandidateFactor(profile), 1.0);  // no dead
  profile.dead_entries = 500;
  EXPECT_DOUBLE_EQ(PredictOnlineCandidateFactor(profile), 2.0);
  profile.dead_entries = 750;  // monotone in the dead fraction
  EXPECT_DOUBLE_EQ(PredictOnlineCandidateFactor(profile), 4.0);
  profile.dead_entries = 1000;  // fully tombstoned: degenerate guard
  EXPECT_DOUBLE_EQ(PredictOnlineCandidateFactor(profile), 1.0);
}

TEST(OnlineCostModelTest, PredictOnlineQueryCostScalesAndValidates) {
  auto dist = TwoBlockProbabilities(150, 0.25, 10000, 0.005).value();
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.delta = 0.1;
  OnlineIndexProfile profile;
  profile.base_entries = 800;
  profile.delta_entries = 200;
  profile.dead_entries = 250;
  auto prediction =
      PredictOnlineQueryCost(dist, options, 2048, profile).value();
  EXPECT_DOUBLE_EQ(prediction.dead_fraction, 0.25);
  EXPECT_DOUBLE_EQ(prediction.delta_fraction, 0.2);
  EXPECT_DOUBLE_EQ(prediction.candidate_factor, 1000.0 / 750.0);
  EXPECT_GT(prediction.expected_filters, 0.0);

  profile.dead_entries = 2000;  // more dead than entries: corrupt input
  EXPECT_TRUE(PredictOnlineQueryCost(dist, options, 2048, profile)
                  .status()
                  .IsInvalidArgument());
}

TEST(OnlineCostModelTest, FactorMatchesMeasuredScanOverhead) {
  // Two online indexes over the same stream; one compacted. The
  // candidate counts a query batch measures must differ by roughly the
  // predicted layout factor (dead postings are scanned, then skipped).
  auto dist = TwoBlockProbabilities(150, 0.25, 8000, 0.005).value();
  Rng rng(91);
  Dataset data = GenerateDataset(dist, 400, &rng);
  DynamicIndexOptions options;
  options.index.mode = IndexMode::kCorrelated;
  options.index.alpha = 0.7;
  options.index.repetitions = 8;
  options.index.seed = 919;
  options.num_shards = 3;
  options.compact_dead_fraction = 100.0;  // keep tombstones in place
  DynamicIndex uncompacted, compacted;
  ASSERT_TRUE(uncompacted.Build(&data, &dist, options).ok());
  ASSERT_TRUE(compacted.Build(&data, &dist, options).ok());
  for (VectorId id = 0; id < data.size(); id += 2) {
    ASSERT_TRUE(uncompacted.Remove(id).ok());
    ASSERT_TRUE(compacted.Remove(id).ok());
  }
  for (int s = 0; s < compacted.num_shards(); ++s) {
    ASSERT_TRUE(compacted.CompactShard(s).ok());
  }

  const OnlineIndexProfile profile = uncompacted.Profile();
  EXPECT_GT(profile.dead_entries, 0u);
  const double predicted = PredictOnlineCandidateFactor(profile);
  EXPECT_GT(predicted, 1.0);

  CorrelatedQuerySampler sampler(&dist, 0.7);
  Rng qrng(92);
  size_t candidates_uncompacted = 0, candidates_compacted = 0;
  for (int t = 0; t < 60; ++t) {
    VectorId target = static_cast<VectorId>(qrng.NextBounded(data.size()));
    SparseVector q = sampler.SampleCorrelated(data.Get(target), &qrng);
    QueryStats a, b;
    uncompacted.QueryAll(q.span(), 0.0, &a);
    compacted.QueryAll(q.span(), 0.0, &b);
    candidates_uncompacted += a.candidates;
    candidates_compacted += b.candidates;
  }
  ASSERT_GT(candidates_compacted, 0u);
  const double measured = static_cast<double>(candidates_uncompacted) /
                          static_cast<double>(candidates_compacted);
  EXPECT_NEAR(measured, predicted, 0.3 * predicted)
      << "measured " << measured << " vs predicted " << predicted;
}

TEST(CostModelTest, FiltersGrowWithN) {
  // E|F(x)| ~ n^rho: predictions must increase with n.
  auto dist = TwoBlockProbabilities(150, 0.25, 10000, 0.005).value();
  CostModelOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.6;
  options.delta = 0.1;
  double prev = 0.0;
  for (size_t n : {256, 1024, 4096, 16384}) {
    options.n = n;
    double filters =
        PredictFilterGeneration(dist, options)->expected_filters;
    EXPECT_GT(filters, prev * 0.99) << "n " << n;
    prev = filters;
  }
}

}  // namespace
}  // namespace skewsearch
