#include "data/mann_profiles.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace skewsearch {
namespace {

TEST(MannProfilesTest, AllTenDatasetsPresent) {
  auto profiles = AllMannProfiles();
  ASSERT_EQ(profiles.size(), 10u);
  std::set<std::string> names;
  for (const auto& p : profiles) names.insert(p.name);
  for (const char* expected :
       {"AOL", "BMS-POS", "DBLP", "ENRON", "FLICKR", "KOSARAK",
        "LIVEJOURNAL", "NETFLIX", "ORKUT", "SPOTIFY"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(MannProfilesTest, FindByName) {
  auto spec = FindMannProfile("KOSARAK");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "KOSARAK");
  EXPECT_GT(spec->topic_strength, 0.0);
}

TEST(MannProfilesTest, FindRejectsUnknown) {
  EXPECT_TRUE(FindMannProfile("NOPE").status().IsNotFound());
}

TEST(MannProfilesTest, DependentDatasetsMarked) {
  // The four datasets with large Table 1 ratios must carry topic strength.
  for (const char* name : {"KOSARAK", "NETFLIX", "ORKUT", "SPOTIFY"}) {
    EXPECT_GT(FindMannProfile(name)->topic_strength, 0.0) << name;
  }
  // The near-independent ones must not.
  for (const char* name : {"AOL", "BMS-POS", "DBLP"}) {
    EXPECT_EQ(FindMannProfile(name)->topic_strength, 0.0) << name;
  }
}

TEST(MannProfilesTest, BuildInstanceMatchesSpecShape) {
  auto spec = FindMannProfile("BMS-POS").value();
  // Shrink for test speed.
  spec.n = 2000;
  Rng rng(1);
  auto inst = BuildMannInstance(spec, &rng);
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->data.size(), 2000u);
  EXPECT_EQ(inst->distribution.dimension(), spec.d);
  // Average size within 15% of target (sampling + cap effects).
  EXPECT_NEAR(inst->data.AverageSize(), spec.avg_size,
              0.15 * spec.avg_size);
}

TEST(MannProfilesTest, TopicInstanceIsDenserThanBackground) {
  auto spec = FindMannProfile("SPOTIFY").value();
  spec.n = 1500;
  Rng rng(2);
  auto inst = BuildMannInstance(spec, &rng);
  ASSERT_TRUE(inst.ok());
  // Topic items add on top of the background marginals.
  EXPECT_GE(inst->data.AverageSize(), spec.avg_size * 0.9);
}

TEST(MannProfilesTest, FrequencyCurveIsDecreasingInExpectation) {
  auto spec = FindMannProfile("AOL").value();
  Rng rng(3);
  auto inst = BuildMannInstance(spec, &rng);
  ASSERT_TRUE(inst.ok());
  const auto& p = inst->distribution.probabilities();
  // Within each Zipf segment the curve decreases; check the first segment.
  size_t head = 1;
  while (head + 1 < p.size() && p[head + 1] <= p[head]) ++head;
  EXPECT_GT(head, p.size() / 100);
}

}  // namespace
}  // namespace skewsearch
