// Copyright 2026 The skewsearch Authors.
// BatchQuery must be a pure parallelization: identical results to the
// serial query path for every thread count, on the paper's index and on
// both baselines, with faithfully aggregated statistics.
#include <optional>
#include <vector>

#include "baselines/chosen_path.h"
#include "baselines/minhash_lsh.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace skewsearch {
namespace {

struct BatchFixture {
  ProductDistribution dist;
  Dataset data;
  Dataset queries;
};

BatchFixture MakeFixture(size_t n = 300, size_t num_queries = 120) {
  BatchFixture f{ZipfProbabilities(400, 1.0, 0.3).value(), {}, {}};
  Rng rng(1234);
  f.data = GenerateDataset(f.dist, n, &rng);
  CorrelatedQuerySampler sampler(&f.dist, 0.8);
  for (size_t i = 0; i < num_queries; ++i) {
    SparseVector q = sampler.SampleCorrelated(
        f.data.Get(static_cast<VectorId>(i % f.data.size())), &rng);
    f.queries.Add(q.span());
  }
  return f;
}

void ExpectSameResults(const std::vector<std::optional<Match>>& a,
                       const std::vector<std::optional<Match>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].has_value(), b[i].has_value()) << "query " << i;
    if (a[i].has_value()) {
      EXPECT_EQ(a[i]->id, b[i]->id) << "query " << i;
      EXPECT_EQ(a[i]->similarity, b[i]->similarity) << "query " << i;
    }
  }
}

TEST(BatchQueryDeterminismTest, SkewedIndexMatchesSerialAcrossThreadCounts) {
  BatchFixture f = MakeFixture();
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.8;
  ASSERT_TRUE(index.Build(&f.data, &f.dist, options).ok());

  const auto serial = index.BatchQuery(f.queries, 1);
  for (int threads : {2, 8}) {
    ExpectSameResults(serial, index.BatchQuery(f.queries, threads));
  }
}

TEST(BatchQueryDeterminismTest, ChosenPathMatchesSerialAcrossThreadCounts) {
  BatchFixture f = MakeFixture();
  ChosenPathIndex index;
  ChosenPathOptions options;
  ASSERT_TRUE(index.Build(&f.data, &f.dist, options).ok());

  const auto serial = index.BatchQuery(f.queries, 1);
  for (int threads : {2, 8}) {
    ExpectSameResults(serial, index.BatchQuery(f.queries, threads));
  }
}

TEST(BatchQueryDeterminismTest, MinHashMatchesSerialAcrossThreadCounts) {
  BatchFixture f = MakeFixture();
  MinHashLsh index;
  MinHashOptions options;
  ASSERT_TRUE(index.Build(&f.data, options).ok());

  const auto serial = index.BatchQuery(f.queries, 1);
  for (int threads : {2, 8}) {
    ExpectSameResults(serial, index.BatchQuery(f.queries, threads));
  }
}

TEST(BatchQueryDeterminismTest, BatchAgreesWithIndividualQueries) {
  BatchFixture f = MakeFixture();
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.8;
  ASSERT_TRUE(index.Build(&f.data, &f.dist, options).ok());

  std::vector<QueryStats> per_query;
  const auto batch = index.BatchQuery(f.queries, 8, &per_query);
  ASSERT_EQ(batch.size(), f.queries.size());
  ASSERT_EQ(per_query.size(), f.queries.size());
  for (size_t i = 0; i < f.queries.size(); ++i) {
    QueryStats qs;
    auto lone = index.Query(f.queries.Get(static_cast<VectorId>(i)), &qs);
    ASSERT_EQ(batch[i].has_value(), lone.has_value()) << "query " << i;
    if (lone.has_value()) {
      EXPECT_EQ(batch[i]->id, lone->id);
      EXPECT_EQ(batch[i]->similarity, lone->similarity);
    }
    // Deterministic counters agree too (seconds is wall time, excluded).
    EXPECT_EQ(per_query[i].filters, qs.filters);
    EXPECT_EQ(per_query[i].candidates, qs.candidates);
    EXPECT_EQ(per_query[i].distinct_candidates, qs.distinct_candidates);
    EXPECT_EQ(per_query[i].verifications, qs.verifications);
  }
}

TEST(BatchQueryEdgeTest, EmptyBatchOnEveryEngine) {
  BatchFixture f = MakeFixture(100, 0);
  ASSERT_TRUE(f.queries.empty());

  SkewedPathIndex skewed;
  SkewedIndexOptions skewed_options;
  ASSERT_TRUE(skewed.Build(&f.data, &f.dist, skewed_options).ok());
  std::vector<QueryStats> stats{QueryStats{}};  // stale entry must be cleared
  BatchQueryStats batch_stats;
  EXPECT_TRUE(skewed.BatchQuery(f.queries, 4, &stats, &batch_stats).empty());
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(batch_stats.queries, 0u);
  EXPECT_EQ(batch_stats.totals.candidates, 0u);

  ChosenPathIndex chosen;
  ASSERT_TRUE(chosen.Build(&f.data, &f.dist, ChosenPathOptions{}).ok());
  EXPECT_TRUE(chosen.BatchQuery(f.queries, 4).empty());

  MinHashLsh minhash;
  ASSERT_TRUE(minhash.Build(&f.data, MinHashOptions{}).ok());
  EXPECT_TRUE(minhash.BatchQuery(f.queries, 4).empty());
}

TEST(BatchQueryEdgeTest, BatchLargerThanPoolAndQueriesWithEmptyVectors) {
  BatchFixture f = MakeFixture(200, 64);
  // Sprinkle empty queries between real ones; they must yield nullopt
  // without disturbing their neighbours' slots.
  Dataset queries;
  for (size_t i = 0; i < f.queries.size(); ++i) {
    queries.Add(f.queries.Get(static_cast<VectorId>(i)));
    if (i % 7 == 0) queries.Add(std::span<const ItemId>{});
  }
  SkewedPathIndex index;
  SkewedIndexOptions options;
  ASSERT_TRUE(index.Build(&f.data, &f.dist, options).ok());

  ThreadPool pool(3);  // batch of ~73 on 3 workers
  const auto serial = index.BatchQuery(queries, 1);
  const auto parallel = index.BatchQuery(queries, &pool);
  ExpectSameResults(serial, parallel);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries.Get(static_cast<VectorId>(i)).empty()) {
      EXPECT_FALSE(parallel[i].has_value()) << "empty query " << i;
    }
  }
}

TEST(BatchQueryStatsTest, AggregatesEqualPerQuerySums) {
  BatchFixture f = MakeFixture();
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.8;
  ASSERT_TRUE(index.Build(&f.data, &f.dist, options).ok());

  for (int threads : {1, 2, 8}) {
    std::vector<QueryStats> per_query;
    BatchQueryStats agg;
    index.BatchQuery(f.queries, threads, &per_query, &agg);
    EXPECT_EQ(agg.queries, f.queries.size());
    EXPECT_EQ(agg.threads, threads);

    QueryStats sum;
    for (const QueryStats& qs : per_query) AddQueryStats(&sum, qs);
    EXPECT_EQ(agg.totals.filters, sum.filters) << threads << " threads";
    EXPECT_EQ(agg.totals.candidates, sum.candidates);
    EXPECT_EQ(agg.totals.distinct_candidates, sum.distinct_candidates);
    EXPECT_EQ(agg.totals.verifications, sum.verifications);
    EXPECT_GE(agg.wall_seconds, 0.0);

    // Every filter the queries probed was emitted by the path engine,
    // so the aggregated PathGenStats must account for all of them —
    // independent of the thread count.
    EXPECT_EQ(agg.path_gen.filters_emitted, sum.filters);
    EXPECT_GT(agg.path_gen.nodes_expanded, 0u);
  }
}

TEST(BatchQueryStatsTest, ReusedPoolServesManyBatchesConsistently) {
  BatchFixture f = MakeFixture();
  SkewedPathIndex index;
  SkewedIndexOptions options;
  ASSERT_TRUE(index.Build(&f.data, &f.dist, options).ok());

  ThreadPool pool(4);
  const auto serial = index.BatchQuery(f.queries, 1);
  for (int round = 0; round < 3; ++round) {
    ExpectSameResults(serial, index.BatchQuery(f.queries, &pool));
  }
  // A null pool means serial execution through the same code path.
  ExpectSameResults(serial, index.BatchQuery(f.queries, nullptr));
}

}  // namespace
}  // namespace skewsearch
