// Parameterized property sweep for the exponent solvers: across skew
// ratios, correlations and thresholds, every solution must satisfy its
// defining equation, stay in [0, 1], and respect the paper's orderings
// (more skew or more correlation never hurts; ours <= Chosen Path).

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/rho.h"
#include "data/generators.h"

namespace skewsearch {
namespace {

struct RhoSweepCase {
  double skew_ratio;  // rare block probability = p / skew_ratio
  double alpha;
  double b1;
};

std::string SweepName(const ::testing::TestParamInfo<RhoSweepCase>& info) {
  auto fmt = [](double v) {
    std::string s = std::to_string(v);
    for (char& c : s) {
      if (c == '.' || c == '-') c = '_';
    }
    return s.substr(0, 5);
  };
  return "skew" + fmt(info.param.skew_ratio) + "_a" +
         fmt(info.param.alpha) + "_b" + fmt(info.param.b1);
}

class RhoSweepTest : public ::testing::TestWithParam<RhoSweepCase> {
 protected:
  ProductDistribution MakeDist() const {
    const double p = 0.25;
    return TwoBlockProbabilities(400, p, 400, p / GetParam().skew_ratio)
        .value();
  }
};

TEST_P(RhoSweepTest, CorrelatedSolutionSatisfiesEquation) {
  ProductDistribution dist = MakeDist();
  const double alpha = GetParam().alpha;
  double rho = CorrelatedRho(dist, alpha).value();
  ASSERT_GE(rho, 0.0);
  ASSERT_LE(rho, 1.0);
  if (rho > 0.0 && rho < 1.0) {  // interior root: residual must vanish
    double lhs = 0.0;
    for (double p : dist.probabilities()) {
      lhs += std::pow(p, 1.0 + rho) / ConditionalProbability(p, alpha);
    }
    EXPECT_NEAR(lhs, dist.SumP(), 1e-6 * dist.SumP());
  }
}

TEST_P(RhoSweepTest, OursNeverAboveChosenPath) {
  ProductDistribution dist = MakeDist();
  double ours = CorrelatedRho(dist, GetParam().alpha).value();
  double cp = ChosenPathRhoForDistribution(dist, GetParam().alpha);
  EXPECT_LE(ours, cp + 1e-9);
  if (GetParam().skew_ratio > 1.0) {
    EXPECT_LT(ours, cp);  // strict once there is any skew
  } else {
    EXPECT_NEAR(ours, cp, 1e-6);  // no skew: exactly Chosen Path
  }
}

TEST_P(RhoSweepTest, PreprocessSolutionSatisfiesEquation) {
  ProductDistribution dist = MakeDist();
  const double b1 = GetParam().b1;
  double rho = PreprocessRho(dist, b1).value();
  ASSERT_GE(rho, 0.0);
  ASSERT_LE(rho, 1.0);
  if (rho > 0.0 && rho < 1.0) {
    double lhs = 0.0;
    for (double p : dist.probabilities()) lhs += std::pow(p, 1.0 + rho);
    EXPECT_NEAR(lhs, b1 * dist.SumP(), 1e-6 * dist.SumP());
  }
}

TEST_P(RhoSweepTest, GroupedSolversAgreeWithPerItem) {
  ProductDistribution dist = MakeDist();
  const double p = 0.25;
  std::vector<ProbabilityGroup> groups{
      {p, 400.0}, {p / GetParam().skew_ratio, 400.0}};
  EXPECT_NEAR(CorrelatedRhoGrouped(groups, GetParam().alpha).value(),
              CorrelatedRho(dist, GetParam().alpha).value(), 1e-9);
  EXPECT_NEAR(PreprocessRhoGrouped(groups, GetParam().b1).value(),
              PreprocessRho(dist, GetParam().b1).value(), 1e-9);
}

TEST_P(RhoSweepTest, RhoDecreasesWithCorrelation) {
  // p_hat_i = p_i(1-a) + a grows with alpha, so the equation's LHS falls
  // pointwise and the balancing rho must fall: stronger correlation is
  // never harder. (Note: "more skew" at fixed block *counts* is NOT
  // monotone — thinning the rare block also deletes its mass, converging
  // back to the uniform instance — so that is deliberately not asserted.)
  ProductDistribution dist = MakeDist();
  double rho_here = CorrelatedRho(dist, GetParam().alpha).value();
  double rho_stronger =
      CorrelatedRho(dist, std::min(1.0, GetParam().alpha + 0.1)).value();
  EXPECT_LE(rho_stronger, rho_here + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RhoSweepTest,
    ::testing::Values(RhoSweepCase{1.0, 0.50, 0.40},
                      RhoSweepCase{2.0, 0.50, 0.40},
                      RhoSweepCase{8.0, 0.50, 0.40},
                      RhoSweepCase{64.0, 0.50, 0.40},
                      RhoSweepCase{8.0, 0.25, 0.30},
                      RhoSweepCase{8.0, 0.75, 0.60},
                      RhoSweepCase{8.0, 0.95, 0.80},
                      RhoSweepCase{256.0, 0.66, 0.50}),
    SweepName);

}  // namespace
}  // namespace skewsearch
