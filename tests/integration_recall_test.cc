// Integration: end-to-end recall of the paper's index across distribution
// shapes and correlation levels — the empirical counterpart of Theorems 1
// and 2. Parameterized sweeps (TEST_P) act as property tests.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

enum class Shape { kUniform, kTwoBlock, kExtremeSkew };

struct RecallCase {
  Shape shape;
  double alpha;
  const char* name;
};

std::string CaseName(const ::testing::TestParamInfo<RecallCase>& info) {
  return info.param.name;
}

ProductDistribution MakeDistribution(Shape shape) {
  switch (shape) {
    case Shape::kUniform:
      // m = 90.
      return UniformProbabilities(1800, 0.05).value();
    case Shape::kTwoBlock:
      // m = 60 + 60 = 120.
      return TwoBlockProbabilities(240, 0.25, 12000, 0.005).value();
    case Shape::kExtremeSkew:
      // m = 40 + 64: a few frequent dims, a long rare tail.
      return TwoBlockProbabilities(100, 0.4, 64000, 0.001).value();
  }
  return UniformProbabilities(10, 0.1).value();
}

class CorrelatedRecallTest : public ::testing::TestWithParam<RecallCase> {};

TEST_P(CorrelatedRecallTest, RecallAboveEightyPercent) {
  const RecallCase& param = GetParam();
  ProductDistribution dist = MakeDistribution(param.shape);
  Rng rng(0xfeed + static_cast<uint64_t>(param.shape) * 131 +
          static_cast<uint64_t>(param.alpha * 100));
  Dataset data = GenerateDataset(dist, 400, &rng);

  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = param.alpha;
  options.repetition_boost = 2.5;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());

  CorrelatedQuerySampler sampler(&dist, param.alpha);
  const int kQueries = 50;
  int found = 0;
  for (int t = 0; t < kQueries; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data.size()));
    SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
    auto hit = index.Query(q.span());
    if (hit && hit->id == target) ++found;
  }
  EXPECT_GE(found, kQueries * 8 / 10)
      << "recall " << found << "/" << kQueries;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CorrelatedRecallTest,
    ::testing::Values(
        RecallCase{Shape::kUniform, 0.85, "UniformHighAlpha"},
        RecallCase{Shape::kUniform, 0.65, "UniformMidAlpha"},
        RecallCase{Shape::kTwoBlock, 0.85, "TwoBlockHighAlpha"},
        RecallCase{Shape::kTwoBlock, 0.65, "TwoBlockMidAlpha"},
        RecallCase{Shape::kExtremeSkew, 0.85, "ExtremeSkewHighAlpha"},
        RecallCase{Shape::kExtremeSkew, 0.65, "ExtremeSkewMidAlpha"}),
    CaseName);

class AdversarialRecallTest
    : public ::testing::TestWithParam<RecallCase> {};

TEST_P(AdversarialRecallTest, NearDuplicatesFound) {
  const RecallCase& param = GetParam();
  ProductDistribution dist = MakeDistribution(param.shape);
  Rng rng(0xabcd + static_cast<uint64_t>(param.shape) * 17);
  Dataset data = GenerateDataset(dist, 400, &rng);

  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.7;
  options.repetition_boost = 2.5;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());

  // Queries: stored vectors with ~20% of their items replaced — similarity
  // ~0.8 > b1, adversarially constructed rather than distribution-drawn.
  const int kQueries = 50;
  int found = 0;
  for (int t = 0; t < kQueries; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data.size()));
    auto items = data.Get(target);
    if (items.size() < 10) {
      ++found;  // too small to perturb meaningfully; skip as success
      continue;
    }
    std::vector<ItemId> q_ids(items.begin(), items.end());
    size_t replace = q_ids.size() / 5;
    for (size_t k = 0; k < replace; ++k) {
      q_ids[k] = static_cast<ItemId>(dist.dimension() - 1 - k);
    }
    SparseVector q = SparseVector::FromIds(std::move(q_ids));
    auto hit = index.Query(q.span());
    if (hit.has_value()) ++found;  // any >= b1 match is a valid answer
  }
  EXPECT_GE(found, kQueries * 8 / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AdversarialRecallTest,
    ::testing::Values(RecallCase{Shape::kUniform, 0, "Uniform"},
                      RecallCase{Shape::kTwoBlock, 0, "TwoBlock"},
                      RecallCase{Shape::kExtremeSkew, 0, "ExtremeSkew"}),
    CaseName);

TEST(RecallBoostTest, MoreRepetitionsMonotonicallyHelp) {
  auto dist = TwoBlockProbabilities(240, 0.25, 12000, 0.005).value();
  Rng rng(0x5151);
  Dataset data = GenerateDataset(dist, 300, &rng);
  CorrelatedQuerySampler sampler(&dist, 0.6);

  auto recall_with_reps = [&](int reps) {
    SkewedPathIndex index;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = 0.6;
    options.repetitions = reps;
    EXPECT_TRUE(index.Build(&data, &dist, options).ok());
    Rng qrng(0x7777);
    int found = 0;
    const int kQueries = 60;
    for (int t = 0; t < kQueries; ++t) {
      VectorId target = static_cast<VectorId>(qrng.NextBounded(data.size()));
      SparseVector q = sampler.SampleCorrelated(data.Get(target), &qrng);
      auto hit = index.Query(q.span());
      if (hit && hit->id == target) ++found;
    }
    return found;
  };

  int r1 = recall_with_reps(1);
  int r8 = recall_with_reps(8);
  int r24 = recall_with_reps(24);
  EXPECT_GE(r8, r1);
  EXPECT_GE(r24, r8);
  EXPECT_GE(r24, 48);  // 80% with generous repetitions
}

}  // namespace
}  // namespace skewsearch
