#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace skewsearch {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Unbiased sample variance of this classic sample is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StableSumTest, CompensatesCancellation) {
  // 1 + 1e100 - 1e100 naively loses the 1 if summed in the wrong order;
  // Kahan keeps small terms when magnitudes are graded.
  std::vector<double> values(1000, 0.1);
  EXPECT_NEAR(StableSum(values), 100.0, 1e-10);
}

TEST(LogAddTest, MatchesDirectComputation) {
  double a = std::log(3.0), b = std::log(5.0);
  EXPECT_NEAR(LogAdd(a, b), std::log(8.0), 1e-12);
  EXPECT_NEAR(LogAdd(b, a), std::log(8.0), 1e-12);
}

TEST(LogAddTest, HandlesExtremeDifference) {
  EXPECT_NEAR(LogAdd(0.0, -1000.0), 0.0, 1e-12);
}

TEST(LogBinomialTest, SmallCases) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-10);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-10);
  EXPECT_LT(LogBinomial(3, 5), -1e100);  // k > n
}

TEST(LinearFitTest, ExactLine) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{3, 5, 7, 9};  // y = 2x + 1
  double slope = 0, intercept = 0;
  ASSERT_TRUE(LinearFit(x, y, &slope, &intercept));
  EXPECT_NEAR(slope, 2.0, 1e-12);
  EXPECT_NEAR(intercept, 1.0, 1e-12);
}

TEST(LinearFitTest, RejectsDegenerate) {
  double slope, intercept;
  EXPECT_FALSE(LinearFit({1.0}, {2.0}, &slope, &intercept));
  EXPECT_FALSE(LinearFit({2.0, 2.0}, {1.0, 5.0}, &slope, &intercept));
  EXPECT_FALSE(LinearFit({1.0, 2.0}, {1.0}, &slope, &intercept));
}

TEST(PearsonCorrelationTest, PerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(PearsonCorrelationTest, PerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, DegenerateIsZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
}

TEST(ChernoffHalfWidthTest, ShrinksWithMu) {
  double wide = ChernoffHalfWidth(10.0, 0.01);
  double narrow = ChernoffHalfWidth(1000.0, 0.01);
  EXPECT_GT(wide, narrow);
  EXPECT_NEAR(narrow, std::sqrt(3.0 * std::log(200.0) / 1000.0), 1e-12);
}

TEST(ChernoffHalfWidthTest, DegenerateReturnsOne) {
  EXPECT_EQ(ChernoffHalfWidth(0.0, 0.01), 1.0);
  EXPECT_EQ(ChernoffHalfWidth(10.0, 0.0), 1.0);
  EXPECT_EQ(ChernoffHalfWidth(10.0, 1.5), 1.0);
}

TEST(ClampTest, Basics) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

}  // namespace
}  // namespace skewsearch
