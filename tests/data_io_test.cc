#include "data/io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "test_paths.h"

namespace skewsearch {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = test::TempPath("skewsearch_io_test", this, ".txt");
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(IoTest, RoundTrip) {
  Dataset data;
  data.Add(SparseVector::Of({1, 5, 9}));
  data.Add(SparseVector::Of({}));
  data.Add(SparseVector::Of({0, 2}));
  ASSERT_TRUE(WriteTransactions(data, path_).ok());
  auto back = ReadTransactions(path_);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ(back->GetVector(0), SparseVector::Of({1, 5, 9}));
  EXPECT_EQ(back->SizeOf(1), 0u);
  EXPECT_EQ(back->GetVector(2), SparseVector::Of({0, 2}));
}

TEST_F(IoTest, ReadSortsAndDedupes) {
  std::ofstream out(path_);
  out << "5 1 5 3\n";
  out.close();
  auto data = ReadTransactions(path_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->GetVector(0), SparseVector::Of({1, 3, 5}));
}

TEST_F(IoTest, ReadRejectsBadToken) {
  std::ofstream out(path_);
  out << "1 2 banana\n";
  out.close();
  auto data = ReadTransactions(path_);
  EXPECT_TRUE(data.status().IsInvalidArgument());
  EXPECT_NE(data.status().message().find("banana"), std::string::npos);
}

TEST_F(IoTest, ReadRejectsNegative) {
  std::ofstream out(path_);
  out << "1 -2\n";
  out.close();
  EXPECT_TRUE(ReadTransactions(path_).status().IsInvalidArgument());
}

TEST_F(IoTest, ReadRejectsOverflow) {
  std::ofstream out(path_);
  out << "99999999999999999999\n";
  out.close();
  EXPECT_TRUE(ReadTransactions(path_).status().IsInvalidArgument());
}

TEST_F(IoTest, ReadMissingFileIsIOError) {
  EXPECT_TRUE(
      ReadTransactions("/nonexistent/dir/file.txt").status().IsIOError());
}

TEST_F(IoTest, WriteToBadPathIsIOError) {
  Dataset data;
  data.Add(SparseVector::Of({1}));
  EXPECT_TRUE(WriteTransactions(data, "/nonexistent/dir/file.txt").IsIOError());
}

TEST_F(IoTest, EmptyDatasetRoundTrips) {
  Dataset data;
  ASSERT_TRUE(WriteTransactions(data, path_).ok());
  auto back = ReadTransactions(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

TEST_F(IoTest, LargeIdsSurvive) {
  Dataset data;
  data.Add(SparseVector::Of({4294967294u}));
  ASSERT_TRUE(WriteTransactions(data, path_).ok());
  auto back = ReadTransactions(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetVector(0), SparseVector::Of({4294967294u}));
}

TEST_F(IoTest, BinaryRoundTrip) {
  Dataset data;
  data.Add(SparseVector::Of({1, 5, 9}));
  data.Add(SparseVector::Of({}));
  data.Add(SparseVector::Of({0, 2, 4294967294u}));
  ASSERT_TRUE(data.SetDimension(4294967295u).ok());
  ASSERT_TRUE(WriteBinary(data, path_).ok());
  auto back = ReadBinary(path_);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ(back->GetVector(0), SparseVector::Of({1, 5, 9}));
  EXPECT_EQ(back->SizeOf(1), 0u);
  EXPECT_EQ(back->GetVector(2), SparseVector::Of({0, 2, 4294967294u}));
  EXPECT_EQ(back->dimension(), 4294967295u);
}

TEST_F(IoTest, BinaryEmptyDataset) {
  Dataset data;
  ASSERT_TRUE(WriteBinary(data, path_).ok());
  auto back = ReadBinary(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

TEST_F(IoTest, BinaryRejectsWrongMagic) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTAMAGICFILE and some junk";
  out.close();
  EXPECT_TRUE(ReadBinary(path_).status().IsInvalidArgument());
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  Dataset data;
  for (int i = 0; i < 20; ++i) {
    data.Add(SparseVector::Of({static_cast<ItemId>(i),
                               static_cast<ItemId>(i + 100)}));
  }
  ASSERT_TRUE(WriteBinary(data, path_).ok());
  // Truncate the file to cut into the item payload.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() - 8));
  out.close();
  EXPECT_TRUE(ReadBinary(path_).status().IsInvalidArgument());
}

TEST_F(IoTest, BinaryMissingFileIsIOError) {
  EXPECT_TRUE(ReadBinary("/nonexistent/dir/file.bin").status().IsIOError());
}

TEST_F(IoTest, BinaryMatchesTextContent) {
  Dataset data;
  for (ItemId i = 0; i < 50; ++i) {
    data.Add(SparseVector::Of({i, i + 50, i + 100}));
  }
  std::string text_path = path_ + ".txt";
  ASSERT_TRUE(WriteTransactions(data, text_path).ok());
  ASSERT_TRUE(WriteBinary(data, path_).ok());
  auto from_text = ReadTransactions(text_path);
  auto from_bin = ReadBinary(path_);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_bin.ok());
  ASSERT_EQ(from_text->size(), from_bin->size());
  for (VectorId id = 0; id < from_text->size(); ++id) {
    EXPECT_EQ(from_text->GetVector(id), from_bin->GetVector(id));
  }
  std::remove(text_path.c_str());
}

}  // namespace
}  // namespace skewsearch
