#include "distributed/partition_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

/// A frozen table with `light` singleton keys plus `heavy` keys holding
/// `heavy_size` postings each.
FilterTable MakeTable(size_t light, size_t heavy, size_t heavy_size) {
  FilterTable table;
  uint64_t next_key = 1;
  for (size_t k = 0; k < light; ++k) table.Add(next_key++, 0);
  for (size_t k = 0; k < heavy; ++k) {
    uint64_t key = next_key++;
    for (size_t i = 0; i < heavy_size; ++i) {
      table.Add(key, static_cast<VectorId>(i));
    }
  }
  table.Freeze();
  return table;
}

std::vector<int> Owners(const PartitionPlan& plan, uint64_t key) {
  std::vector<int> owners;
  plan.RouteKey(key, &owners);
  return owners;
}

TEST(DistributedPartitionPlanTest, SingleWorkerOwnsEverything) {
  FilterTable table = MakeTable(50, 3, 100);
  PartitionPlannerOptions options;
  options.workers = 1;
  options.heavy_threshold = 10;
  auto plan = PartitionPlanner::PlanFromTable(table, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->workers, 1);
  for (size_t k = 0; k < table.num_keys(); ++k) {
    std::vector<int> owners = Owners(*plan, table.key_at(k));
    ASSERT_FALSE(owners.empty());
    for (int owner : owners) EXPECT_EQ(owner, 0);
  }
  // Heavy keys are still classified (split count 1), and all estimated
  // load lands on the only worker.
  EXPECT_EQ(plan->num_heavy_keys(), 3u);
  ASSERT_EQ(plan->estimated_load.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->estimated_load[0],
                   static_cast<double>(table.num_pairs()));
}

TEST(DistributedPartitionPlanTest, MoreWorkersThanDistinctKeys) {
  FilterTable table = MakeTable(4, 0, 0);
  PartitionPlannerOptions options;
  options.workers = 16;
  options.heavy_threshold = 1000;
  auto plan = PartitionPlanner::PlanFromTable(table, options);
  ASSERT_TRUE(plan.ok());
  // Every key routes to exactly one in-range worker; empty workers are
  // legal (there are more of them than keys).
  std::set<int> used;
  for (size_t k = 0; k < table.num_keys(); ++k) {
    std::vector<int> owners = Owners(*plan, table.key_at(k));
    ASSERT_EQ(owners.size(), 1u);
    EXPECT_GE(owners[0], 0);
    EXPECT_LT(owners[0], 16);
    used.insert(owners[0]);
  }
  EXPECT_LE(used.size(), 4u);
  EXPECT_EQ(plan->num_heavy_keys(), 0u);
}

TEST(DistributedPartitionPlanTest, SingleMegaKeySplitsAcrossAllWorkers) {
  // All-heavy profile: one key holds every posting entry. Without
  // splitting, worker scaling would be impossible — the planner must
  // spread the key across all W workers.
  FilterTable table = MakeTable(0, 1, 10000);
  PartitionPlannerOptions options;
  options.workers = 8;
  options.heavy_threshold = 100;
  auto plan = PartitionPlanner::PlanFromTable(table, options);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->num_heavy_keys(), 1u);
  std::vector<int> owners = Owners(*plan, table.key_at(0));
  EXPECT_EQ(owners.size(), 8u);
  std::set<int> distinct(owners.begin(), owners.end());
  EXPECT_EQ(distinct.size(), 8u) << "slice owners must be distinct";
  // Load spreads evenly.
  for (double load : plan->estimated_load) {
    EXPECT_DOUBLE_EQ(load, 10000.0 / 8.0);
  }
}

TEST(DistributedPartitionPlanTest, AllLightKeysHashOnceAndCoverEveryKey) {
  FilterTable table = MakeTable(2000, 0, 0);
  PartitionPlannerOptions options;
  options.workers = 7;
  options.heavy_threshold = 50;  // nothing reaches it
  auto plan = PartitionPlanner::PlanFromTable(table, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_heavy_keys(), 0u);
  EXPECT_EQ(plan->replicated_slices(), 0u);
  double total = 0.0;
  std::set<int> used;
  for (size_t k = 0; k < table.num_keys(); ++k) {
    std::vector<int> owners = Owners(*plan, table.key_at(k));
    ASSERT_EQ(owners.size(), 1u) << "light keys are hashed exactly once";
    used.insert(owners[0]);
  }
  for (double load : plan->estimated_load) total += load;
  EXPECT_DOUBLE_EQ(total, 2000.0);
  // 2000 hashed keys over 7 workers: every worker should see some.
  EXPECT_EQ(used.size(), 7u);
}

TEST(DistributedPartitionPlanTest, HeavySplitCountTracksEstimate) {
  FilterTable table = MakeTable(0, 1, 250);
  PartitionPlannerOptions options;
  options.workers = 8;
  options.heavy_threshold = 100;  // ceil(250/100) = 3 slices
  auto plan = PartitionPlanner::PlanFromTable(table, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(Owners(*plan, table.key_at(0)).size(), 3u);
}

TEST(DistributedPartitionPlanTest, AutoThresholdSplitsDominantKey) {
  // heavy_threshold 0 derives total/(4W); a key holding half of all
  // entries must end up split.
  FilterTable table = MakeTable(1000, 1, 1000);
  PartitionPlannerOptions options;
  options.workers = 4;
  options.heavy_threshold = 0;
  auto plan = PartitionPlanner::PlanFromTable(table, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->heavy_threshold, 0u);
  EXPECT_GE(plan->num_heavy_keys(), 1u);
  EXPECT_GT(Owners(*plan, table.key_at(1000)).size(), 1u);
}

TEST(DistributedPartitionPlanTest, PlanIsDeterministic) {
  FilterTable table = MakeTable(500, 5, 300);
  PartitionPlannerOptions options;
  options.workers = 6;
  options.heavy_threshold = 50;
  auto a = PartitionPlanner::PlanFromTable(table, options);
  auto b = PartitionPlanner::PlanFromTable(table, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->heavy.size(), b->heavy.size());
  for (const auto& [key, owners] : a->heavy) {
    auto it = b->heavy.find(key);
    ASSERT_NE(it, b->heavy.end());
    EXPECT_EQ(owners, it->second);
  }
  EXPECT_EQ(a->estimated_load, b->estimated_load);
}

TEST(DistributedPartitionPlanTest, RejectsBadOptions) {
  FilterTable table = MakeTable(10, 0, 0);
  PartitionPlannerOptions options;
  options.workers = 0;
  EXPECT_FALSE(PartitionPlanner::PlanFromTable(table, options).ok());
  options.workers = 4;
  options.sample_fraction = 0.0;
  EXPECT_FALSE(PartitionPlanner::PlanFromTable(table, options).ok());
  options.sample_fraction = 1.5;
  EXPECT_FALSE(PartitionPlanner::PlanFromTable(table, options).ok());
}

TEST(DistributedPartitionPlanTest, RejectsUnfrozenTable) {
  FilterTable staging;
  staging.Add(1, 0);
  PartitionPlannerOptions options;
  EXPECT_FALSE(PartitionPlanner::PlanFromTable(staging, options).ok());
}

TEST(DistributedPartitionPlanTest, PlanFromDataMatchesTableWhenExact) {
  // With sample_fraction = 1 the estimate pass sees every vector, so
  // heavy classification must agree with the exact table plan.
  auto dist = ZipfProbabilities(500, 1.0, 0.5).value();
  Rng rng(7);
  Dataset data = GenerateDataset(dist, 300, &rng);
  SkewedIndexOptions index_options;
  index_options.mode = IndexMode::kAdversarial;
  index_options.b1 = 0.8;
  auto family = FilterFamily::Create(&dist, index_options, data.size());
  ASSERT_TRUE(family.ok());

  FilterTable table;
  std::vector<uint64_t> keys;
  for (VectorId id = 0; id < data.size(); ++id) {
    for (int rep = 0; rep < family->repetitions(); ++rep) {
      keys.clear();
      family->ComputeFilters(data.Get(id), static_cast<uint32_t>(rep),
                             &keys, nullptr);
      for (uint64_t key : keys) table.Add(key, id);
    }
  }
  table.Freeze();

  PartitionPlannerOptions options;
  options.workers = 5;
  options.heavy_threshold = 8;
  options.estimate.smoothing = 0.0;  // exact pass needs no smoothing
  auto from_table = PartitionPlanner::PlanFromTable(table, options);
  auto from_data = PartitionPlanner::PlanFromData(data, *family, options);
  ASSERT_TRUE(from_table.ok());
  ASSERT_TRUE(from_data.ok());
  ASSERT_EQ(from_table->heavy.size(), from_data->heavy.size());
  for (const auto& [key, owners] : from_table->heavy) {
    EXPECT_TRUE(from_data->heavy.count(key)) << "heavy key " << key;
  }
}

TEST(DistributedPartitionPlanTest, SampledPlanStillFindsMegaKey) {
  // A dataset of identical vectors: every vector emits the same filter
  // keys, so each key's posting list spans the whole dataset — heavy
  // beyond doubt, and a half sample must still see that.
  auto dist = UniformProbabilities(50, 0.2).value();
  Rng rng(9);
  SparseVector proto = dist.Sample(&rng);
  while (proto.span().size() < 3) proto = dist.Sample(&rng);
  Dataset data;
  for (int i = 0; i < 400; ++i) data.Add(proto);
  ASSERT_TRUE(data.SetDimension(50).ok());
  SkewedIndexOptions index_options;
  index_options.mode = IndexMode::kAdversarial;
  index_options.b1 = 0.8;
  auto family = FilterFamily::Create(&dist, index_options, data.size());
  ASSERT_TRUE(family.ok());

  PartitionPlannerOptions options;
  options.workers = 4;
  options.heavy_threshold = 40;
  options.sample_fraction = 0.5;
  auto plan = PartitionPlanner::PlanFromData(data, *family, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->num_heavy_keys(), 0u);
  for (const auto& [key, owners] : plan->heavy) {
    EXPECT_EQ(owners.size(), 4u) << "mega-keys split across all workers";
  }
}

}  // namespace
}  // namespace skewsearch
