// The acceptance-criterion test: a coordinator joined to two separate
// worker OS processes over TCP produces output byte-identical to the
// single-process SimilarityJoin. Workers are real fork()ed children
// serving on inherited listening sockets — distinct address spaces, so
// nothing can leak through shared memory the way an in-process
// simulation could hide. (The suite deliberately does NOT start with
// "Distributed": fork and TSan do not mix, and CI's TSan matrix
// selects suites by that prefix. The CI smoke job covers the same
// topology with the real `join-worker` binary.)

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/similarity_join.h"
#include "data/generators.h"
#include "distributed/distributed_join.h"
#include "distributed/transport/session.h"
#include "distributed/transport/tcp_transport.h"
#include "util/random.h"

namespace skewsearch {
namespace {

Dataset ZipfDataWithDuplicates(uint64_t seed, size_t n,
                               ProductDistribution* dist_out) {
  auto dist = ZipfProbabilities(2000, 1.0, 0.4).value();
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) data.Add(dist.Sample(&rng));
  for (size_t i = 0; i < n / 10; ++i) {
    data.Add(data.GetVector(static_cast<VectorId>(i * 3)));
  }
  EXPECT_TRUE(data.SetDimension(2000).ok());
  *dist_out = std::move(dist);
  return data;
}

/// Forks a child that accepts one coordinator session on \p listener
/// and serves it to completion; the child's exit status reports the
/// outcome (0 = orderly shutdown). The parent's copy of the listener
/// is closed before returning.
pid_t ForkWorkerProcess(TcpListener* listener) {
  pid_t pid = fork();
  if (pid == 0) {
    // Child: no gtest machinery, no return — only _exit, so a failure
    // can never run the parent's teardown twice.
    auto connection = listener->Accept();
    if (!connection.ok()) _exit(2);
    listener->Close();
    Status served = ServeConnection(connection->get(), nullptr);
    _exit(served.ok() ? 0 : 3);
  }
  listener->Close();  // parent's copy; the child keeps its own fd
  return pid;
}

int WaitForExit(pid_t pid) {
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  if (!WIFEXITED(status)) return -2;
  return WEXITSTATUS(status);
}

TEST(MultiProcessJoinTest, TwoWorkerProcessesMatchSingleProcessJoin) {
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(101, 150, &dist);
  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = 0.8;
  options.index.repetition_boost = 3.0;
  options.index.seed = 101;
  options.threshold = 0.8;
  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->size(), 0u) << "identity needs a non-trivial output";

  constexpr int kWorkers = 2;
  std::vector<pid_t> children;
  std::vector<uint16_t> ports;
  for (int w = 0; w < kWorkers; ++w) {
    auto listener = TcpListener::Listen(0);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    ports.push_back(listener->port());
    pid_t pid = ForkWorkerProcess(&listener.value());
    ASSERT_NE(pid, -1);
    children.push_back(pid);
  }

  DistributedJoinOptions distributed;
  distributed.index = options.index;
  distributed.threshold = options.threshold;
  distributed.workers = kWorkers;
  distributed.probe_batch = 64;
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());
  std::vector<std::unique_ptr<FrameConnection>> connections;
  for (uint16_t port : ports) {
    auto connection = TcpConnect("127.0.0.1", port);
    ASSERT_TRUE(connection.ok()) << connection.status().ToString();
    connections.push_back(std::move(connection).value());
  }
  ASSERT_TRUE(join.AttachRemote(std::move(connections)).ok());

  DistributedJoinStats stats;
  auto got = join.SelfJoin(&stats);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(expected->size(), got->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*expected)[i].left, (*got)[i].left) << "pair " << i;
    EXPECT_EQ((*expected)[i].right, (*got)[i].right) << "pair " << i;
    EXPECT_DOUBLE_EQ((*expected)[i].similarity, (*got)[i].similarity)
        << "pair " << i;
  }
  EXPECT_GT(stats.wire_bytes_sent, 0u);
  EXPECT_GT(stats.wire_bytes_received, 0u);

  join.DetachRemote();  // orderly Shutdown; the children exit 0
  for (pid_t pid : children) {
    EXPECT_EQ(WaitForExit(pid), 0);
  }
}

TEST(MultiProcessJoinTest, WorkerProcessSurvivesCoordinatorRestart) {
  // Two sequential coordinator sessions against freshly forked workers:
  // the second join (after a full detach) must still be identical, and
  // every worker process must exit cleanly both times.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(103, 100, &dist);
  DistributedJoinOptions distributed;
  distributed.index.mode = IndexMode::kAdversarial;
  distributed.index.b1 = 0.8;
  distributed.index.repetition_boost = 3.0;
  distributed.index.seed = 103;
  distributed.workers = 2;
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());
  auto expected = join.SelfJoin();
  ASSERT_TRUE(expected.ok());

  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::vector<pid_t> children;
    std::vector<std::unique_ptr<FrameConnection>> connections;
    for (int w = 0; w < 2; ++w) {
      auto listener = TcpListener::Listen(0);
      ASSERT_TRUE(listener.ok());
      const uint16_t port = listener->port();
      pid_t pid = ForkWorkerProcess(&listener.value());
      ASSERT_NE(pid, -1);
      children.push_back(pid);
      auto connection = TcpConnect("127.0.0.1", port);
      ASSERT_TRUE(connection.ok());
      connections.push_back(std::move(connection).value());
    }
    ASSERT_TRUE(join.AttachRemote(std::move(connections)).ok());
    auto got = join.SelfJoin();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(expected->size(), got->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*expected)[i].right, (*got)[i].right);
    }
    join.DetachRemote();
    for (pid_t pid : children) EXPECT_EQ(WaitForExit(pid), 0);
  }
}

TEST(MultiProcessJoinTest, WorkerKilledMidJoinRecoversByteIdentical) {
  // The PR's acceptance criterion: SIGKILL one worker process with the
  // probe stream pending, and the coordinator must re-derive the lost
  // posting slices from the deterministic plan, re-ship them to a
  // surviving process, replay the unacknowledged batches, and complete
  // with byte-identical output.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(107, 150, &dist);
  DistributedJoinOptions distributed;
  distributed.index.mode = IndexMode::kAdversarial;
  distributed.index.b1 = 0.8;
  distributed.index.repetition_boost = 3.0;
  distributed.index.seed = 107;
  distributed.workers = 3;
  distributed.probe_batch = 16;
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());
  auto expected = join.SelfJoin();
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->size(), 0u) << "identity needs a non-trivial output";

  std::vector<pid_t> children;
  std::vector<std::unique_ptr<FrameConnection>> connections;
  for (int w = 0; w < 3; ++w) {
    auto listener = TcpListener::Listen(0);
    ASSERT_TRUE(listener.ok());
    const uint16_t port = listener->port();
    pid_t pid = ForkWorkerProcess(&listener.value());
    ASSERT_NE(pid, -1);
    children.push_back(pid);
    auto connection = TcpConnect("127.0.0.1", port);
    ASSERT_TRUE(connection.ok());
    connections.push_back(std::move(connection).value());
  }
  ASSERT_TRUE(join.AttachRemote(std::move(connections)).ok());

  // The victim dies *after* the attach (its slices are shipped and its
  // session live) and is reaped before the probe phase, so every one of
  // its batches fails and must be replayed elsewhere.
  ASSERT_EQ(kill(children[1], SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(children[1], &status, 0), children[1]);
  ASSERT_TRUE(WIFSIGNALED(status));

  DistributedJoinStats stats;
  auto got = join.SelfJoin(&stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(expected->size(), got->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*expected)[i].left, (*got)[i].left) << "pair " << i;
    EXPECT_EQ((*expected)[i].right, (*got)[i].right) << "pair " << i;
    EXPECT_DOUBLE_EQ((*expected)[i].similarity, (*got)[i].similarity)
        << "pair " << i;
  }
  EXPECT_EQ(stats.worker_recoveries, 1u);
  EXPECT_GE(stats.replayed_batches, 1u);

  join.DetachRemote();  // the survivors still exit 0
  EXPECT_EQ(WaitForExit(children[0]), 0);
  EXPECT_EQ(WaitForExit(children[2]), 0);
}

}  // namespace
}  // namespace skewsearch
