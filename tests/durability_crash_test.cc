// Copyright 2026 The skewsearch Authors.
// Crash injection for the durable index. Two layers:
//
// CrashRecoveryMatrixTest forks a child per trial — the child opens a
// DurableIndex, applies a deterministic mutation stream, records every
// acknowledgement, and dies hard (`_exit`, no destructors, no flushes)
// mid-stream. The parent then recovers the directory and requires the
// result to be *equivalent* to an index rebuilt from exactly the acked
// prefix: same live set, same QueryAll answers on a fixed probe set.
// `_exit` on one machine loses no page-cache writes, so the matrix
// holds under every sync policy — it is the acknowledgement protocol
// (apply, log, ack — in that order) across real process death that is
// under test here; the lost-unsynced-suffix cases are covered
// deterministically by the FaultFile images in durability_wal_test.cc.
//
// DurabilityRecoveryTest / DurabilityCheckpointRaceTest run in-process
// (they match the TSan suite selection): snapshot+tail recovery
// composition, replay idempotence across checkpoints, and checkpoints
// racing live writers under the maintenance thread.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic_index.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "maintenance/service.h"
#include "test_paths.h"
#include "util/random.h"

namespace skewsearch {
namespace {

constexpr double kProbeThreshold = 0.25;

// One scripted mutation. Remove targets are indices into the *acked
// insert history* so parent and child derive identical streams without
// sharing state.
struct ScriptedOp {
  bool is_insert = true;
  std::vector<ItemId> items;   // insert payload
  size_t remove_ordinal = 0;   // removes: which prior insert to kill
};

class DurableHarness : public ::testing::Test {
 protected:
  void SetUp() override {
    dist_ = TwoBlockProbabilities(150, 0.25, 8000, 0.005).value();
    Rng rng(91);
    data_ = GenerateDataset(dist_, 120, &rng);
    probes_ = MakeProbes(40, 915);
  }

  DynamicIndexOptions Options() const {
    DynamicIndexOptions options;
    options.index.mode = IndexMode::kCorrelated;
    options.index.alpha = 0.7;
    options.index.repetitions = 10;
    options.index.seed = 515;
    options.num_shards = 4;
    return options;
  }

  // A fixed probe set, independent of any index state.
  std::vector<SparseVector> MakeProbes(size_t count, uint64_t seed) {
    std::vector<SparseVector> out;
    Rng rng(seed);
    while (out.size() < count) {
      SparseVector v = dist_.Sample(&rng);
      if (!v.span().empty()) out.push_back(std::move(v));
    }
    return out;
  }

  // The deterministic mutation script both sides derive from `seed`.
  // Remove ordinals index the *currently unremoved* inserts, so the
  // generator simulates the same bookkeeping ApplyOp keeps.
  std::vector<ScriptedOp> MakeScript(size_t length, uint64_t seed) {
    std::vector<ScriptedOp> script;
    Rng rng(seed);
    size_t unremoved = 0;
    while (script.size() < length) {
      ScriptedOp op;
      if (unremoved > 0 && rng.NextBounded(10) < 3) {
        op.is_insert = false;
        op.remove_ordinal = rng.NextBounded(unremoved);
        --unremoved;
      } else {
        op.is_insert = true;
        SparseVector v = dist_.Sample(&rng);
        if (v.span().empty()) continue;
        op.items.assign(v.span().begin(), v.span().end());
        ++unremoved;
      }
      script.push_back(std::move(op));
    }
    return script;
  }

  // Applies script[0..upto) to `index`. Remove ordinals address the
  // insert-id history; an ordinal whose id was already removed maps to
  // a NotFound Remove, which the script never produces: each ordinal
  // is used at most once because RemoveTarget pops it.
  struct ScriptState {
    std::vector<VectorId> insert_ids;    // ids in insert order
    std::vector<bool> removed;           // parallel to insert_ids
  };

  static Status ApplyOp(DynamicIndex* index, const ScriptedOp& op,
                        ScriptState* state) {
    if (op.is_insert) {
      Result<VectorId> id = index->Insert(op.items);
      if (!id.ok()) return id.status();
      state->insert_ids.push_back(*id);
      state->removed.push_back(false);
      return Status::OK();
    }
    // Find the remove_ordinal-th not-yet-removed insert.
    size_t seen = 0;
    for (size_t i = 0; i < state->insert_ids.size(); ++i) {
      if (state->removed[i]) continue;
      if (seen++ == op.remove_ordinal) {
        state->removed[i] = true;
        return index->Remove(state->insert_ids[i]);
      }
    }
    return Status::InvalidArgument("remove ordinal out of range");
  }

  // The reference: a fresh, non-durable index with exactly the acked
  // prefix applied.
  void BuildReference(const std::vector<ScriptedOp>& script, size_t acked,
                      DynamicIndex* reference) {
    ASSERT_TRUE(reference->Build(&data_, &dist_, Options()).ok());
    ScriptState state;
    for (size_t i = 0; i < acked; ++i) {
      ASSERT_TRUE(ApplyOp(reference, script[i], &state).ok())
          << "reference op " << i;
    }
  }

  // Equivalence = identical live count + identical QueryAll answers on
  // every probe (QueryAll is layout- and compaction-independent:
  // matches are a set, ordered by similarity then id).
  void ExpectEquivalent(const DynamicIndex& got, const DynamicIndex& want,
                        const std::string& ctx) {
    EXPECT_EQ(got.size(), want.size()) << ctx;
    for (size_t p = 0; p < probes_.size(); ++p) {
      std::vector<Match> a = got.QueryAll(probes_[p].span(), kProbeThreshold);
      std::vector<Match> b = want.QueryAll(probes_[p].span(), kProbeThreshold);
      ASSERT_EQ(a.size(), b.size()) << ctx << " probe " << p;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << ctx << " probe " << p << " entry " << i;
        EXPECT_EQ(a[i].similarity, b[i].similarity)
            << ctx << " probe " << p << " entry " << i;
      }
    }
  }

  ProductDistribution dist_;
  Dataset data_;
  std::vector<SparseVector> probes_;
};

// ---------------------------------------------------------------------------
// Fork matrix. (Fixture name deliberately avoids the Durability/Wal
// TSan patterns: fork(2) is not supported under ThreadSanitizer.)

class CrashRecoveryMatrixTest : public DurableHarness {
 protected:
  // Child body: open, apply ops writing an ack record after each, die
  // at `kill_after` acked ops. Never returns.
  [[noreturn]] void ChildMain(const std::string& dir,
                              const std::string& ack_path,
                              const std::vector<ScriptedOp>& script,
                              SyncPolicy policy, size_t kill_after,
                              uint64_t checkpoint_every) {
    DurableOptions durable;
    durable.dir = dir;
    durable.sync_policy = policy;
    durable.checkpoint_bytes = 0;  // checkpoints are scripted, not sized
    DurableIndex index;
    if (!index.Open(&data_, &dist_, Options(), durable).ok()) _exit(2);
    std::ofstream ack(ack_path, std::ios::trunc);
    ScriptState state;
    for (size_t i = 0; i < script.size(); ++i) {
      if (!ApplyOp(&index.index(), script[i], &state).ok()) _exit(3);
      // The mutation is acknowledged: record it where the parent will
      // look. (Same machine, so page cache survives our death.)
      ack.seekp(0);
      ack << (i + 1) << "\n";
      ack.flush();
      if (checkpoint_every != 0 && (i + 1) % checkpoint_every == 0) {
        if (!index.Checkpoint().ok()) _exit(4);
      }
      if (i + 1 == kill_after) _exit(0);  // die hard: no Close, no dtors
    }
    _exit(0);
  }

  void RunTrial(SyncPolicy policy, size_t kill_after, uint64_t seed,
                uint64_t checkpoint_every) {
    test::ScopedTempDir dir("crash_matrix");
    const std::string ack_path = dir.File("acked");
    const std::vector<ScriptedOp> script = MakeScript(60, seed);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ChildMain(dir.path(), ack_path, script, policy, kill_after,
                checkpoint_every);
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), 0);

    size_t acked = 0;
    {
      std::ifstream in(ack_path);
      ASSERT_TRUE(in >> acked);
    }
    ASSERT_EQ(acked, kill_after);

    const std::string ctx = std::string(SyncPolicyName(policy)) + " kill " +
                            std::to_string(kill_after) + " ckpt " +
                            std::to_string(checkpoint_every);

    // Recover. No acked mutation may be missing, none may be invented.
    DurableIndex recovered;
    RecoveryStats stats;
    DurableOptions durable;
    durable.dir = dir.path();
    durable.sync_policy = policy;
    ASSERT_TRUE(
        recovered.Open(&data_, &dist_, Options(), durable, &stats).ok())
        << ctx;
    EXPECT_FALSE(stats.truncated) << ctx;  // _exit tears no record
    if (checkpoint_every == 0) {
      // Without checkpoints, replay alone must account for every ack.
      EXPECT_EQ(stats.replayed, acked) << ctx;
    } else {
      EXPECT_TRUE(stats.snapshot_loaded) << ctx;
    }

    DynamicIndex reference;
    BuildReference(script, acked, &reference);
    ExpectEquivalent(recovered.index(), reference, ctx);

    // Determinism: recovering the same files again gives the same
    // answers (the reopened trial above may have appended nothing).
    ASSERT_TRUE(recovered.Close().ok()) << ctx;
    DurableIndex again;
    ASSERT_TRUE(again.Open(&data_, &dist_, Options(), durable).ok()) << ctx;
    ExpectEquivalent(again.index(), reference, ctx + " (second recovery)");
  }
};

TEST_F(CrashRecoveryMatrixTest, EveryPolicySurvivesHardKill) {
  for (SyncPolicy policy : {SyncPolicy::kNone, SyncPolicy::kInterval,
                            SyncPolicy::kGroup, SyncPolicy::kAlways}) {
    for (size_t kill_after : {size_t{7}, size_t{41}}) {
      RunTrial(policy, kill_after, /*seed=*/1000 + kill_after,
               /*checkpoint_every=*/0);
    }
  }
}

TEST_F(CrashRecoveryMatrixTest, AlwaysPolicyDeepKillPoints) {
  // The strictest contract gets the densest matrix.
  for (size_t kill_after : {size_t{1}, size_t{23}, size_t{59}}) {
    RunTrial(SyncPolicy::kAlways, kill_after, /*seed=*/77 + kill_after,
             /*checkpoint_every=*/0);
  }
}

TEST_F(CrashRecoveryMatrixTest, CheckpointsDoNotChangeRecovery) {
  // Same stream, killed right after / between checkpoints: snapshot +
  // tail replay must land on the same state as pure replay.
  for (size_t kill_after : {size_t{10}, size_t{15}, size_t{47}}) {
    RunTrial(SyncPolicy::kGroup, kill_after, /*seed=*/300,
             /*checkpoint_every=*/10);
  }
}

// ---------------------------------------------------------------------------
// In-process recovery composition (runs under TSan/ASan).

class DurabilityRecoveryTest : public DurableHarness {};

TEST_F(DurabilityRecoveryTest, CloseReopenRoundTrip) {
  test::ScopedTempDir dir("durable_roundtrip");
  DurableOptions durable;
  durable.dir = dir.path();
  const std::vector<ScriptedOp> script = MakeScript(30, 7);

  DynamicIndex reference;
  BuildReference(script, script.size(), &reference);

  {
    DurableIndex index;
    ASSERT_TRUE(index.Open(&data_, &dist_, Options(), durable).ok());
    ScriptState state;
    for (const ScriptedOp& op : script) {
      ASSERT_TRUE(ApplyOp(&index.index(), op, &state).ok());
    }
    ASSERT_TRUE(index.Close().ok());
  }
  DurableIndex reopened;
  RecoveryStats stats;
  ASSERT_TRUE(reopened.Open(&data_, &dist_, Options(), durable, &stats).ok());
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.replayed, script.size());
  EXPECT_EQ(stats.next_seq, script.size() + 1);
  ExpectEquivalent(reopened.index(), reference, "close/reopen");
}

TEST_F(DurabilityRecoveryTest, CheckpointFoldsLogIntoSnapshot) {
  test::ScopedTempDir dir("durable_ckpt");
  DurableOptions durable;
  durable.dir = dir.path();
  const std::vector<ScriptedOp> script = MakeScript(30, 8);

  DynamicIndex reference;
  BuildReference(script, script.size(), &reference);

  {
    DurableIndex index;
    ASSERT_TRUE(index.Open(&data_, &dist_, Options(), durable).ok());
    ScriptState state;
    for (size_t i = 0; i < script.size(); ++i) {
      ASSERT_TRUE(ApplyOp(&index.index(), script[i], &state).ok());
      if (i == 14) {
        ASSERT_TRUE(index.Checkpoint().ok());
      }
    }
    EXPECT_EQ(index.num_checkpoints(), 1u);
    ASSERT_TRUE(index.Close().ok());
  }
  DurableIndex reopened;
  RecoveryStats stats;
  ASSERT_TRUE(reopened.Open(&data_, &dist_, Options(), durable, &stats).ok());
  EXPECT_TRUE(stats.snapshot_loaded);
  // Only the post-checkpoint tail replays.
  EXPECT_EQ(stats.replayed, script.size() - 15);
  EXPECT_EQ(stats.next_seq, script.size() + 1);  // seqs survive truncation
  ExpectEquivalent(reopened.index(), reference, "checkpoint fold");
}

TEST_F(DurabilityRecoveryTest, TornTailIsTruncatedDeterministically) {
  test::ScopedTempDir dir("durable_torn");
  DurableOptions durable;
  durable.dir = dir.path();
  const std::vector<ScriptedOp> script = MakeScript(20, 9);
  {
    DurableIndex index;
    ASSERT_TRUE(index.Open(&data_, &dist_, Options(), durable).ok());
    ScriptState state;
    for (const ScriptedOp& op : script) {
      ASSERT_TRUE(ApplyOp(&index.index(), op, &state).ok());
    }
    ASSERT_TRUE(index.Close().ok());
  }
  // Shear bytes off the log: the last record is torn.
  const std::string wal_path = DurableIndex::WalPath(dir.path());
  Result<WalReadResult> intact = ReadWal(wal_path);
  ASSERT_TRUE(intact.ok());
  ASSERT_EQ(intact->records.size(), script.size());
  const uint64_t keep = intact->valid_bytes - 3;
  ASSERT_EQ(::truncate(wal_path.c_str(), static_cast<off_t>(keep)), 0);

  DynamicIndex reference;
  BuildReference(script, script.size() - 1, &reference);

  DurableIndex reopened;
  RecoveryStats stats;
  ASSERT_TRUE(reopened.Open(&data_, &dist_, Options(), durable, &stats).ok());
  EXPECT_TRUE(stats.truncated);
  EXPECT_GT(stats.truncated_bytes, 0u);
  EXPECT_EQ(stats.replayed, script.size() - 1);
  ExpectEquivalent(reopened.index(), reference, "torn tail");
  // The tail was physically dropped: a second recovery sees a clean
  // log and lands on the same state.
  ASSERT_TRUE(reopened.Close().ok());
  DurableIndex again;
  RecoveryStats stats2;
  ASSERT_TRUE(again.Open(&data_, &dist_, Options(), durable, &stats2).ok());
  EXPECT_FALSE(stats2.truncated);
  ExpectEquivalent(again.index(), reference, "torn tail (second recovery)");
}

TEST_F(DurabilityRecoveryTest, JournalErrorFailsTheMutation) {
  // An index whose journal refuses must surface the error to the
  // caller — an acked-but-unlogged mutation would be a silent
  // durability hole.
  class RefusingJournal : public MutationJournal {
   public:
    Status LogInsert(VectorId, std::span<const ItemId>) override {
      return Status::IOError("journal refused");
    }
    Status LogRemove(VectorId) override {
      return Status::IOError("journal refused");
    }
  };
  DynamicIndex index;
  ASSERT_TRUE(index.Build(&data_, &dist_, Options()).ok());
  RefusingJournal journal;
  index.SetMutationJournal(&journal);
  const std::vector<ItemId> items = {1, 5, 9};
  EXPECT_FALSE(index.Insert(items).ok());
  EXPECT_FALSE(index.Remove(0).ok());
  index.SetMutationJournal(nullptr);
  EXPECT_TRUE(index.Insert(items).ok());
}

// ---------------------------------------------------------------------------
// Checkpoints racing live writers (the suite TSan runs).

class DurabilityCheckpointRaceTest : public DurableHarness {};

TEST_F(DurabilityCheckpointRaceTest, MaintenanceCheckpointsUnderChurn) {
  test::ScopedTempDir dir("durable_race");
  DurableOptions durable;
  durable.dir = dir.path();
  durable.checkpoint_bytes = 1;   // any non-empty log is due
  DurableIndex index;
  ASSERT_TRUE(index.Open(&data_, &dist_, Options(), durable).ok());

  MaintenanceService service;
  MaintenanceOptions moptions;
  moptions.poll_interval_ms = 1;
  ASSERT_TRUE(service.Attach(&index.index(), moptions).ok());
  service.SetCheckpointDriver(&index);
  ASSERT_TRUE(service.Start().ok());

  // Each writer thread inserts fresh vectors and removes only its own
  // earlier inserts, so the set of acked-live ids is exact per thread.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  std::vector<std::vector<VectorId>> live_ids(kThreads);
  std::vector<std::thread> writers;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(4000 + t);
      std::vector<VectorId> inserted;
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (!inserted.empty() && rng.NextBounded(10) < 3) {
          const size_t pick = rng.NextBounded(inserted.size());
          if (!index.index().Remove(inserted[pick]).ok()) {
            failed.store(true);
            return;
          }
          inserted.erase(inserted.begin() + pick);
        } else {
          SparseVector v = dist_.Sample(&rng);
          if (v.span().empty()) continue;
          Result<VectorId> id = index.index().Insert(v.span());
          if (!id.ok()) {
            failed.store(true);
            return;
          }
          inserted.push_back(*id);
        }
      }
      live_ids[t] = std::move(inserted);
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_FALSE(failed.load());
  service.Detach();
  EXPECT_TRUE(service.last_error().ok())
      << service.last_error().message();
  EXPECT_GT(service.stats().checkpoints, 0u);

  const size_t live_before = index.index().size();
  std::vector<std::vector<Match>> answers_before;
  for (const SparseVector& probe : probes_) {
    answers_before.push_back(
        index.index().QueryAll(probe.span(), kProbeThreshold));
  }
  ASSERT_TRUE(index.Close().ok());

  // Recovery after an arbitrary interleaving of checkpoints and acks
  // must reproduce the acked state exactly.
  DurableIndex reopened;
  ASSERT_TRUE(reopened.Open(&data_, &dist_, Options(), durable).ok());
  EXPECT_EQ(reopened.index().size(), live_before);
  for (int t = 0; t < kThreads; ++t) {
    for (VectorId id : live_ids[t]) {
      EXPECT_TRUE(reopened.index().IsLive(id)) << "thread " << t;
    }
  }
  for (size_t p = 0; p < probes_.size(); ++p) {
    std::vector<Match> after =
        reopened.index().QueryAll(probes_[p].span(), kProbeThreshold);
    ASSERT_EQ(after.size(), answers_before[p].size()) << "probe " << p;
    for (size_t i = 0; i < after.size(); ++i) {
      EXPECT_EQ(after[i].id, answers_before[p][i].id) << "probe " << p;
      EXPECT_EQ(after[i].similarity, answers_before[p][i].similarity)
          << "probe " << p;
    }
  }
}

TEST_F(DurabilityCheckpointRaceTest, ExplicitCheckpointRacesWriters) {
  test::ScopedTempDir dir("durable_race2");
  DurableOptions durable;
  durable.dir = dir.path();
  DurableIndex index;
  ASSERT_TRUE(index.Open(&data_, &dist_, Options(), durable).ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (!index.Checkpoint().ok()) {
        failed.store(true);
        return;
      }
    }
  });
  Rng rng(515);
  std::vector<VectorId> inserted;
  for (int i = 0; i < 150; ++i) {
    SparseVector v = dist_.Sample(&rng);
    if (v.span().empty()) continue;
    Result<VectorId> id = index.index().Insert(v.span());
    ASSERT_TRUE(id.ok()) << id.status().message();
    inserted.push_back(*id);
    if (i % 3 == 0 && !inserted.empty()) {
      const size_t pick = rng.NextBounded(inserted.size());
      ASSERT_TRUE(index.index().Remove(inserted[pick]).ok());
      inserted.erase(inserted.begin() + pick);
    }
  }
  stop.store(true, std::memory_order_release);
  checkpointer.join();
  ASSERT_FALSE(failed.load());

  const size_t live_before = index.index().size();
  ASSERT_TRUE(index.Close().ok());
  DurableIndex reopened;
  ASSERT_TRUE(reopened.Open(&data_, &dist_, Options(), durable).ok());
  EXPECT_EQ(reopened.index().size(), live_before);
  for (VectorId id : inserted) {
    EXPECT_TRUE(reopened.index().IsLive(id));
  }
}

}  // namespace
}  // namespace skewsearch
