// Randomized recall property test: a seeded sweep over skew profiles
// (two-block, Zipf, Mann stand-ins) x both IndexModes, asserting that
// empirical recall against BruteForceSearch ground truth stays above the
// Lemma 5-derived bound.
//
// Lemma 5 gives each repetition success probability >= 1/ln n for a
// qualifying (query, target) pair; with L independent repetitions the
// index succeeds with probability >= 1 - (1 - 1/ln n)^L. The assertion
// allows kSlack below that for finite-sample noise (~50 eligible queries
// per run) and model approximation; every failure message prints the
// reproducing seed.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/rho.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "data/mann_profiles.h"
#include "sim/brute_force.h"
#include "util/random.h"

namespace skewsearch {
namespace {

enum class Profile { kTwoBlock, kZipf, kMann };

struct PropertyCase {
  Profile profile;
  IndexMode mode;
  const char* name;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  return info.param.name;
}

constexpr size_t kDatasetSize = 350;
constexpr int kQueries = 60;
constexpr double kAlpha = 0.8;
constexpr double kB1 = 0.7;
constexpr double kRepetitionBoost = 2.5;
constexpr double kSlack = 0.15;

struct Instance {
  ProductDistribution dist;
  Dataset data;
};

Instance MakeInstance(Profile profile, uint64_t seed) {
  Instance inst;
  Rng rng(seed);
  switch (profile) {
    case Profile::kTwoBlock:
      inst.dist = TwoBlockProbabilities(240, 0.25, 12000, 0.005).value();
      break;
    case Profile::kZipf:
      // Scaled so E|x| ~ 55 (C ~ 9): the paper's model has C ln n items
      // per set, and far below that regime Lemma 5's premise (enough
      // mass for paths to form) simply doesn't hold.
      inst.dist = ScaleToAverageSize(
                      ZipfProbabilities(3000, 0.9, 0.4).value(), 55.0)
                      .value();
      break;
    case Profile::kMann: {
      // A Mann stand-in frequency profile with the topic model switched
      // off: the recall bound assumes the product-distribution model, so
      // the sweep uses its piecewise-Zipf marginals with independent
      // sampling (dependence robustness is Table 1's business, not
      // Lemma 5's).
      MannProfileSpec spec = FindMannProfile("KOSARAK").value();
      spec.n = kDatasetSize;
      spec.topic_strength = 0.0;
      MannInstance mann = BuildMannInstance(spec, &rng).value();
      inst.dist = std::move(mann.distribution);
      inst.data = std::move(mann.data);
      return inst;
    }
  }
  inst.data = GenerateDataset(inst.dist, kDatasetSize, &rng);
  return inst;
}

/// The Lemma 5 success bound for this index's actual repetition count.
double Lemma5Bound(size_t n, int repetitions) {
  const double per_rep = 1.0 / std::log(static_cast<double>(n));
  return 1.0 - std::pow(1.0 - per_rep, repetitions);
}

class RecallPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(RecallPropertyTest, RecallStaysAboveLemma5Bound) {
  const PropertyCase& param = GetParam();
  const uint64_t base_seed =
      0x9000 + static_cast<uint64_t>(param.profile) * 1009 +
      (param.mode == IndexMode::kAdversarial ? 31 : 0);

  for (uint64_t round = 0; round < 3; ++round) {
    const uint64_t seed = base_seed + round * 7919;
    Instance inst = MakeInstance(param.profile, seed);

    SkewedIndexOptions options;
    options.mode = param.mode;
    options.alpha = kAlpha;
    options.b1 = kB1;
    options.repetition_boost = kRepetitionBoost;
    options.seed = seed ^ 0x5eed;
    SkewedPathIndex index;
    ASSERT_TRUE(index.Build(&inst.data, &inst.dist, options).ok());

    const double bound =
        Lemma5Bound(inst.data.size(), index.repetitions()) - kSlack;
    // Lemma 5 bounds recall for pairs of genuinely alpha-correlated (or
    // b1-similar) strength; queries whose best brute-force partner only
    // scrapes the verify threshold are outside its promise, so
    // eligibility demands a partner at the similarity an alpha-correlated
    // pair is expected to have (Lemma 10's b1(D, alpha)).
    const double eligibility_threshold =
        param.mode == IndexMode::kCorrelated
            ? std::max(index.verify_threshold(),
                       0.9 * ExpectedCorrelatedSimilarity(inst.dist, kAlpha))
            : index.verify_threshold();
    BruteForceSearcher brute(&inst.data);
    CorrelatedQuerySampler sampler(&inst.dist, kAlpha);
    Rng qrng(seed * 31 + 17);

    int eligible = 0;
    int found = 0;
    for (int t = 0; t < kQueries; ++t) {
      SparseVector query;
      if (param.mode == IndexMode::kCorrelated) {
        VectorId target =
            static_cast<VectorId>(qrng.NextBounded(inst.data.size()));
        query = sampler.SampleCorrelated(inst.data.Get(target), &qrng);
      } else {
        // Adversarial: a stored vector with ~15% of its items replaced,
        // keeping similarity comfortably above b1.
        VectorId target =
            static_cast<VectorId>(qrng.NextBounded(inst.data.size()));
        auto items = inst.data.Get(target);
        std::vector<ItemId> ids(items.begin(), items.end());
        size_t replace = ids.size() / 7;
        for (size_t k = 0; k < replace; ++k) {
          ids[k] = static_cast<ItemId>(inst.dist.dimension() - 1 - k);
        }
        query = SparseVector::FromIds(std::move(ids));
      }
      // Ground truth: only queries brute force can answer at the
      // eligibility threshold count toward recall (Lemma 5 promises
      // nothing for the rest).
      auto truth = brute.AboveThreshold(query.span(), eligibility_threshold);
      if (truth.empty()) continue;
      ++eligible;
      found += index.Query(query.span()).has_value();
    }
    ASSERT_GT(eligible, kQueries / 3)
        << param.name << ": too few eligible queries; seed " << seed;
    const double recall =
        static_cast<double>(found) / static_cast<double>(eligible);
    EXPECT_GE(recall, bound)
        << param.name << ": recall " << found << "/" << eligible << " = "
        << recall << " fell below the Lemma 5 bound " << bound
        << "; reproduce with seed " << seed << " (round " << round << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SkewProfiles, RecallPropertyTest,
    ::testing::Values(
        PropertyCase{Profile::kTwoBlock, IndexMode::kCorrelated,
                     "TwoBlockCorrelated"},
        PropertyCase{Profile::kTwoBlock, IndexMode::kAdversarial,
                     "TwoBlockAdversarial"},
        PropertyCase{Profile::kZipf, IndexMode::kCorrelated,
                     "ZipfCorrelated"},
        PropertyCase{Profile::kZipf, IndexMode::kAdversarial,
                     "ZipfAdversarial"},
        PropertyCase{Profile::kMann, IndexMode::kCorrelated,
                     "MannCorrelated"},
        PropertyCase{Profile::kMann, IndexMode::kAdversarial,
                     "MannAdversarial"}),
    CaseName);

}  // namespace
}  // namespace skewsearch
