#include "data/dataset.h"

#include <gtest/gtest.h>

namespace skewsearch {
namespace {

TEST(DatasetTest, EmptyDataset) {
  Dataset data;
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.size(), 0u);
  EXPECT_EQ(data.dimension(), 0u);
  EXPECT_EQ(data.TotalItems(), 0u);
  EXPECT_EQ(data.AverageSize(), 0.0);
}

TEST(DatasetTest, AddReturnsSequentialIds) {
  Dataset data;
  EXPECT_EQ(data.Add(SparseVector::Of({1})), 0u);
  EXPECT_EQ(data.Add(SparseVector::Of({2})), 1u);
  EXPECT_EQ(data.Add(SparseVector::Of({})), 2u);
  EXPECT_EQ(data.size(), 3u);
}

TEST(DatasetTest, GetRoundTrips) {
  Dataset data;
  SparseVector v = SparseVector::Of({3, 1, 4, 1, 5});
  data.Add(v);
  auto got = data.Get(0);
  EXPECT_EQ(std::vector<ItemId>(got.begin(), got.end()),
            (std::vector<ItemId>{1, 3, 4, 5}));
  EXPECT_EQ(data.GetVector(0), v);
}

TEST(DatasetTest, DimensionTracksMaxItem) {
  Dataset data;
  data.Add(SparseVector::Of({5}));
  EXPECT_EQ(data.dimension(), 6u);
  data.Add(SparseVector::Of({100}));
  EXPECT_EQ(data.dimension(), 101u);
  data.Add(SparseVector::Of({7}));
  EXPECT_EQ(data.dimension(), 101u);
}

TEST(DatasetTest, SetDimensionExplicit) {
  Dataset data;
  data.Add(SparseVector::Of({5}));
  EXPECT_TRUE(data.SetDimension(1000).ok());
  EXPECT_EQ(data.dimension(), 1000u);
}

TEST(DatasetTest, SetDimensionRejectsTooSmall) {
  Dataset data;
  data.Add(SparseVector::Of({5}));
  Status s = data.SetDimension(3);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(DatasetTest, SizesAndAverages) {
  Dataset data;
  data.Add(SparseVector::Of({1, 2, 3}));
  data.Add(SparseVector::Of({4}));
  EXPECT_EQ(data.SizeOf(0), 3u);
  EXPECT_EQ(data.SizeOf(1), 1u);
  EXPECT_EQ(data.TotalItems(), 4u);
  EXPECT_DOUBLE_EQ(data.AverageSize(), 2.0);
}

TEST(DatasetTest, EmptyVectorsAllowed) {
  Dataset data;
  data.Add(SparseVector::Of({}));
  data.Add(SparseVector::Of({1}));
  EXPECT_EQ(data.SizeOf(0), 0u);
  EXPECT_TRUE(data.Get(0).empty());
}

TEST(DatasetTest, MemoryBytesGrows) {
  Dataset data;
  size_t before = data.MemoryBytes();
  for (int i = 0; i < 100; ++i) {
    data.Add(SparseVector::Of({static_cast<ItemId>(i)}));
  }
  EXPECT_GT(data.MemoryBytes(), before);
}

TEST(DatasetTest, AddFromSpan) {
  Dataset data;
  std::vector<ItemId> ids{2, 4, 6};
  data.Add(std::span<const ItemId>(ids));
  EXPECT_EQ(data.SizeOf(0), 3u);
  EXPECT_EQ(data.Get(0)[1], 4u);
}

}  // namespace
}  // namespace skewsearch
