// EpochManager: pin/unpin bookkeeping, guard move semantics, the core
// reclamation guarantee (a pinned reader blocks reclamation of anything
// retired at or after its epoch; unpinning releases it), and a
// multi-threaded COW pointer-swap stress run where readers validate a
// canary on every dereference — designed to run under TSan/ASan, where
// a premature reclaim becomes a hard error.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "maintenance/epoch.h"

namespace skewsearch {
namespace {

TEST(EpochManagerTest, PinUnpinBookkeeping) {
  EpochManager epochs;
  EXPECT_EQ(epochs.pinned_readers(), 0u);
  {
    EpochManager::Guard guard = epochs.Pin();
    EXPECT_TRUE(guard.pinned());
    EXPECT_EQ(epochs.pinned_readers(), 1u);
    EpochManager::Guard nested = epochs.Pin();  // separate slot
    EXPECT_EQ(epochs.pinned_readers(), 2u);
  }
  EXPECT_EQ(epochs.pinned_readers(), 0u);
}

TEST(EpochManagerTest, GuardMoveTransfersThePin) {
  EpochManager epochs;
  EpochManager::Guard guard = epochs.Pin();
  EXPECT_EQ(epochs.pinned_readers(), 1u);
  EpochManager::Guard moved = std::move(guard);
  EXPECT_FALSE(guard.pinned());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.pinned());
  EXPECT_EQ(epochs.pinned_readers(), 1u);
  EpochManager::Guard assigned;
  assigned = std::move(moved);
  EXPECT_EQ(epochs.pinned_readers(), 1u);
  assigned = EpochManager::Guard();  // move-assign empty unpins
  EXPECT_EQ(epochs.pinned_readers(), 0u);
}

TEST(EpochManagerTest, RetireAdvancesEpochAndCollectReclaims) {
  EpochManager epochs;
  const uint64_t before = epochs.current_epoch();
  auto object = std::make_shared<int>(42);
  std::weak_ptr<int> weak = object;
  epochs.Retire(std::move(object));
  EXPECT_EQ(epochs.current_epoch(), before + 1);
  EXPECT_EQ(epochs.limbo_size(), 1u);
  EXPECT_FALSE(weak.expired());
  EXPECT_EQ(epochs.Collect(), 1u);  // no readers pinned
  EXPECT_TRUE(weak.expired());
  EXPECT_EQ(epochs.limbo_size(), 0u);
  EXPECT_EQ(epochs.total_retired(), 1u);
  EXPECT_EQ(epochs.total_reclaimed(), 1u);
}

TEST(EpochManagerTest, PinnedReaderBlocksReclamationUntilUnpin) {
  EpochManager epochs;
  EpochManager::Guard guard = epochs.Pin();
  auto object = std::make_shared<int>(7);
  std::weak_ptr<int> weak = object;
  epochs.Retire(std::move(object));  // retired at the pinned epoch
  EXPECT_EQ(epochs.Collect(), 0u);
  EXPECT_FALSE(weak.expired());
  guard = EpochManager::Guard();  // unpin
  EXPECT_EQ(epochs.Collect(), 1u);
  EXPECT_TRUE(weak.expired());
}

TEST(EpochManagerTest, ReaderPinnedAfterRetireDoesNotBlock) {
  EpochManager epochs;
  auto object = std::make_shared<int>(1);
  std::weak_ptr<int> weak = object;
  epochs.Retire(std::move(object));
  // This reader observed the advanced epoch, so it cannot hold the
  // retired pointer and must not delay its reclamation.
  EpochManager::Guard guard = epochs.Pin();
  EXPECT_EQ(epochs.Collect(), 1u);
  EXPECT_TRUE(weak.expired());
}

TEST(EpochManagerTest, OldestPinGovernsABacklog) {
  EpochManager epochs;
  EpochManager::Guard old_reader = epochs.Pin();
  std::vector<std::weak_ptr<int>> weak;
  for (int i = 0; i < 5; ++i) {
    auto object = std::make_shared<int>(i);
    weak.emplace_back(object);
    epochs.Retire(std::move(object));
  }
  EXPECT_EQ(epochs.Collect(), 0u);  // all retired at/after the pin
  EXPECT_EQ(epochs.limbo_size(), 5u);
  old_reader = EpochManager::Guard();
  EXPECT_EQ(epochs.Collect(), 5u);
  for (const auto& w : weak) EXPECT_TRUE(w.expired());
}

// A COW pointer-swap domain: one writer publishes generations while
// readers pin, load and dereference. The canary must always read alive;
// under TSan the reclamation edge itself is also verified.
TEST(EpochManagerStressTest, ReadersNeverSeeReclaimedState) {
  constexpr uint64_t kAlive = 0xA11CE;
  constexpr uint64_t kDead = 0xDEAD;
  struct Node {
    explicit Node(uint64_t v) : value(v) {}
    ~Node() { canary.store(kDead, std::memory_order_release); }
    std::atomic<uint64_t> canary{kAlive};
    uint64_t value = 0;
  };

  EpochManager epochs;
  auto initial = std::make_shared<Node>(0);
  std::atomic<const Node*> published{initial.get()};
  std::shared_ptr<Node> owner = std::move(initial);

  constexpr int kReaders = 4;
  constexpr uint64_t kGenerations = 3000;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        EpochManager::Guard guard = epochs.Pin();
        const Node* node = published.load(std::memory_order_seq_cst);
        if (node->canary.load(std::memory_order_acquire) != kAlive) {
          violations.fetch_add(1);
        }
        if (node->value < last_seen) violations.fetch_add(1);
        last_seen = node->value;
      }
    });
  }

  for (uint64_t generation = 1; generation <= kGenerations; ++generation) {
    auto next = std::make_shared<Node>(generation);
    const Node* raw = next.get();
    std::shared_ptr<Node> old = std::move(owner);
    owner = std::move(next);
    published.store(raw, std::memory_order_seq_cst);
    epochs.Retire(std::move(old));
    if (generation % 64 == 0) epochs.Collect();
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(violations.load(), 0);
  epochs.Collect();  // quiesced: everything retired is now reclaimable
  EXPECT_EQ(epochs.total_reclaimed(), epochs.total_retired());
  EXPECT_EQ(epochs.total_retired(), kGenerations);
  EXPECT_EQ(epochs.limbo_size(), 0u);
}

// Regression for the Collect() slot-scan race: a dedicated collector
// thread runs Collect() in a tight loop, so its slot scans constantly
// race readers pinning just after the scan against the writer retiring
// the snapshot those readers are about to load. Collect() must bound
// reclamation by the epoch it observed *before* the scan; without that
// bound this frees a node mid-dereference, which the canary (and
// TSan/ASan) turns into a hard failure.
TEST(EpochManagerStressTest, ConcurrentCollectorNeverFreesAPinnedLoad) {
  constexpr uint64_t kAlive = 0xA11CE;
  struct Node {
    explicit Node(uint64_t v) : value(v) {}
    ~Node() { canary.store(0xDEAD, std::memory_order_release); }
    std::atomic<uint64_t> canary{kAlive};
    uint64_t value = 0;
  };

  EpochManager epochs;
  auto initial = std::make_shared<Node>(0);
  std::atomic<const Node*> published{initial.get()};
  std::shared_ptr<Node> owner = std::move(initial);

  // Two readers (not more): the hazard needs slot scans that observe
  // *no* pinned reader, then a pin landing inside the scan→partition
  // window, so mostly-unpinned readers hit it far more often.
  constexpr int kReaders = 2;
  constexpr uint64_t kGenerations = 20000;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        EpochManager::Guard guard = epochs.Pin();
        const Node* node = published.load(std::memory_order_seq_cst);
        for (int probe = 0; probe < 4; ++probe) {
          if (node->canary.load(std::memory_order_acquire) != kAlive) {
            violations.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  std::thread collector([&] {
    while (!done.load(std::memory_order_acquire)) epochs.Collect();
  });

  for (uint64_t generation = 1; generation <= kGenerations; ++generation) {
    auto next = std::make_shared<Node>(generation);
    const Node* raw = next.get();
    std::shared_ptr<Node> old = std::move(owner);
    owner = std::move(next);
    published.store(raw, std::memory_order_seq_cst);
    epochs.Retire(std::move(old));
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  collector.join();

  EXPECT_EQ(violations.load(), 0);
  epochs.Collect();  // quiesced: everything retired is now reclaimable
  EXPECT_EQ(epochs.total_reclaimed(), epochs.total_retired());
  EXPECT_EQ(epochs.limbo_size(), 0u);
}

}  // namespace
}  // namespace skewsearch
