// Frozen-shard serving tests: a DistributedJoin built from a mapped
// SKF1 file (zero posting-table rebuild, broadcast routing over the
// id-partitioned shards) must produce output byte-identical to the
// single-process join — in-process and over the wire, where workers
// pre-map the file and the coordinator ships only a tiny
// ShardAssignment per session. Also covers the failure surface: wrong
// dataset, wrong file, un-preloaded workers, and the no-recovery
// contract (a mapped shard is not re-shippable state).
// The suite name starts with "Distributed" so CI's TSan matrix picks
// it up.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/frozen_shard.h"
#include "core/sharded_index.h"
#include "core/similarity_join.h"
#include "data/generators.h"
#include "distributed/distributed_join.h"
#include "distributed/transport/session.h"
#include "distributed/transport/transport.h"
#include "test_paths.h"
#include "util/random.h"

namespace skewsearch {
namespace {

JoinOptions AdversarialJoinOptions(double b1, uint64_t seed) {
  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = b1;
  options.index.repetition_boost = 3.0;
  options.index.seed = seed;
  options.threshold = b1;
  return options;
}

Dataset ZipfDataWithDuplicates(uint64_t seed, size_t n,
                               ProductDistribution* dist_out) {
  auto dist = ZipfProbabilities(2000, 1.0, 0.4).value();
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) data.Add(dist.Sample(&rng));
  for (size_t i = 0; i < n / 10; ++i) {
    data.Add(data.GetVector(static_cast<VectorId>(i * 3)));
  }
  EXPECT_TRUE(data.SetDimension(2000).ok());
  *dist_out = std::move(dist);
  return data;
}

void ExpectIdentical(const std::vector<JoinPair>& expected,
                     const std::vector<JoinPair>& got) {
  ASSERT_EQ(expected.size(), got.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].left, got[i].left) << "pair " << i;
    EXPECT_EQ(expected[i].right, got[i].right) << "pair " << i;
    EXPECT_DOUBLE_EQ(expected[i].similarity, got[i].similarity)
        << "pair " << i;
  }
}

/// Freezes the build side of \p options over \p data into an SKF1 file
/// at \p path, partitioned into \p shards id-shards.
void FreezeBuildSide(const Dataset& data, const ProductDistribution& dist,
                     const JoinOptions& options, int shards,
                     const std::string& path) {
  ShardedIndexOptions sharded_options;
  sharded_options.index = options.index;
  sharded_options.num_shards = shards;
  ShardedIndex index;
  ASSERT_TRUE(index.Build(&data, &dist, sharded_options).ok());
  ASSERT_TRUE(index.Freeze(path).ok());
}

/// One hosted worker thread running ServeConnection, optionally with a
/// pre-mapped frozen file (the `join-worker --shard-file` setup).
struct HostedWorker {
  std::thread thread;
  Status status;
  WorkerServeStats stats;

  void Serve(std::unique_ptr<FrameConnection> connection,
             const ServeOptions& options = {}) {
    thread = std::thread(
        [this, conn = std::move(connection), options]() mutable {
          status = ServeConnection(conn.get(), &stats, options);
        });
  }
  void Join() {
    if (thread.joinable()) thread.join();
  }
};

/// RAII deleter for the frozen files tests write.
struct FileGuard {
  std::string path;
  ~FileGuard() { std::remove(path.c_str()); }
};

TEST(DistributedFrozenTest, InProcessFrozenSelfJoinMatchesSingleProcess) {
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(41, 240, &dist);
  const JoinOptions options = AdversarialJoinOptions(0.6, 5);
  const std::string path = test::TempPath("frozen_selfjoin", this, ".skf");
  FileGuard guard{path};
  FreezeBuildSide(data, dist, options, /*shards=*/3, path);

  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(expected->empty());

  DistributedJoinOptions distributed;
  distributed.threshold = options.threshold;
  DistributedJoin join;
  ASSERT_TRUE(join.BuildFromFrozen(&data, &dist, path, distributed).ok());
  EXPECT_TRUE(join.frozen());
  EXPECT_EQ(join.num_workers(), 3);
  EXPECT_TRUE(join.plan().broadcast);
  EXPECT_EQ(join.plan().num_heavy_keys(), 0u);

  DistributedJoinStats stats;
  auto got = join.SelfJoin(&stats);
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
  // Broadcast routing: a probe with any filter key visits every shard
  // (probes whose key set is empty route nowhere, so the average over
  // all routed probes can sit below the worker count).
  EXPECT_GT(stats.probe_fanout, 1.0);
  EXPECT_LE(stats.probe_fanout, 3.0);
  // Id shards are disjoint, so the merge dedup never fires.
  EXPECT_EQ(stats.cross_worker_duplicates, 0u);
}

TEST(DistributedFrozenTest, FrozenSingleShardMatchesToo) {
  // A one-shard file degenerates to the monolithic table served
  // zero-copy; broadcast over one worker is plain routing.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(42, 180, &dist);
  const JoinOptions options = AdversarialJoinOptions(0.65, 7);
  const std::string path = test::TempPath("frozen_single", this, ".skf");
  FileGuard guard{path};
  FreezeBuildSide(data, dist, options, /*shards=*/1, path);

  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());
  DistributedJoinOptions distributed;
  distributed.threshold = options.threshold;
  DistributedJoin join;
  ASSERT_TRUE(join.BuildFromFrozen(&data, &dist, path, distributed).ok());
  EXPECT_EQ(join.num_workers(), 1);
  auto got = join.SelfJoin();
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
}

TEST(DistributedFrozenTest, JoinOptionsFrozenShardsServesIdenticalPairs) {
  // The similarity_join plumbing: frozen_shards routes through the
  // distributed backend and must not change a single pair.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(43, 200, &dist);
  JoinOptions options = AdversarialJoinOptions(0.6, 11);
  const std::string path = test::TempPath("frozen_options", this, ".skf");
  FileGuard guard{path};
  FreezeBuildSide(data, dist, options, /*shards=*/2, path);

  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());
  options.frozen_shards = path;
  JoinStats stats;
  auto got = SelfSimilarityJoin(data, dist, options, &stats);
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
  EXPECT_EQ(stats.pairs, expected->size());
}

TEST(DistributedFrozenTest, FrozenJoinOverLoopbackMatchesInProcess) {
  // The remote frozen mode end to end: workers pre-map the same file
  // (ServeOptions.frozen_file/frozen_data — the --shard-file setup),
  // the coordinator ships one ShardAssignment per session, and the
  // output stays byte-identical to the single-process join.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(44, 220, &dist);
  const JoinOptions options = AdversarialJoinOptions(0.6, 13);
  const std::string path = test::TempPath("frozen_loopback", this, ".skf");
  FileGuard guard{path};
  const int shards = 3;
  FreezeBuildSide(data, dist, options, shards, path);

  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(expected->empty());

  auto worker_file = FrozenShardFile::Map(path);
  ASSERT_TRUE(worker_file.ok());
  ServeOptions serve;
  serve.frozen_file = worker_file->get();
  serve.frozen_data = &data;

  DistributedJoinOptions distributed;
  distributed.threshold = options.threshold;
  distributed.probe_batch = 16;
  DistributedJoin join;
  ASSERT_TRUE(join.BuildFromFrozen(&data, &dist, path, distributed).ok());

  std::vector<HostedWorker> workers(shards);
  std::vector<std::unique_ptr<FrameConnection>> connections;
  for (int w = 0; w < shards; ++w) {
    auto [coordinator_end, worker_end] = LoopbackPair();
    workers[static_cast<size_t>(w)].Serve(std::move(worker_end), serve);
    connections.push_back(std::move(coordinator_end));
  }
  ASSERT_TRUE(join.AttachRemoteFrozen(std::move(connections)).ok());
  EXPECT_TRUE(join.remote());

  DistributedJoinStats stats;
  auto got = join.SelfJoin(&stats);
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
  EXPECT_EQ(stats.worker_recoveries, 0u);
  join.DetachRemote();
  uint64_t served_entries = 0;
  for (auto& worker : workers) {
    worker.Join();
    EXPECT_TRUE(worker.status.ok()) << worker.status.ToString();
    served_entries += worker.stats.posting_entries;
  }
  // The shards the sessions served cover the whole frozen table.
  uint64_t file_entries = 0;
  for (int s = 0; s < (*worker_file)->num_shards(); ++s) {
    file_entries += (*worker_file)->shard_info(s).ids_count;
  }
  EXPECT_EQ(served_entries, file_entries);
}

TEST(DistributedFrozenTest, BuildFromFrozenRejectsWrongDataset) {
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(45, 150, &dist);
  const JoinOptions options = AdversarialJoinOptions(0.6, 17);
  const std::string path = test::TempPath("frozen_wrong_data", this, ".skf");
  FileGuard guard{path};
  FreezeBuildSide(data, dist, options, /*shards=*/2, path);

  ProductDistribution other_dist;
  Dataset other = ZipfDataWithDuplicates(46, 150, &other_dist);
  DistributedJoin join;
  Status built = join.BuildFromFrozen(&other, &dist, path, {});
  EXPECT_FALSE(built.ok());
  EXPECT_TRUE(built.IsInvalidArgument()) << built.ToString();
  EXPECT_FALSE(join.built());
}

TEST(DistributedFrozenTest, AttachRemoteFrozenRequiresFrozenBuild) {
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(47, 150, &dist);
  const JoinOptions options = AdversarialJoinOptions(0.6, 19);
  DistributedJoinOptions distributed;
  distributed.index = options.index;
  distributed.threshold = options.threshold;
  distributed.workers = 2;
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());

  std::vector<std::unique_ptr<FrameConnection>> connections;
  auto [a, b] = LoopbackPair();
  connections.push_back(std::move(a));
  connections.push_back(std::move(b));
  Status attached = join.AttachRemoteFrozen(std::move(connections));
  EXPECT_FALSE(attached.ok());
  EXPECT_TRUE(attached.IsInvalidArgument()) << attached.ToString();
  EXPECT_FALSE(join.remote());
}

TEST(DistributedFrozenTest, FrozenAttachFailsAgainstUnpreloadedWorker) {
  // A worker started without --shard-file answers the ShardAssignment
  // with an Error frame; the coordinator surfaces it and no session is
  // left attached.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(48, 160, &dist);
  const JoinOptions options = AdversarialJoinOptions(0.6, 23);
  const std::string path = test::TempPath("frozen_unpreloaded", this, ".skf");
  FileGuard guard{path};
  FreezeBuildSide(data, dist, options, /*shards=*/2, path);

  DistributedJoinOptions distributed;
  distributed.threshold = options.threshold;
  DistributedJoin join;
  ASSERT_TRUE(join.BuildFromFrozen(&data, &dist, path, distributed).ok());

  std::vector<HostedWorker> workers(2);
  std::vector<std::unique_ptr<FrameConnection>> connections;
  for (int w = 0; w < 2; ++w) {
    auto [coordinator_end, worker_end] = LoopbackPair();
    workers[static_cast<size_t>(w)].Serve(std::move(worker_end));  // no file
    connections.push_back(std::move(coordinator_end));
  }
  Status attached = join.AttachRemoteFrozen(std::move(connections));
  EXPECT_FALSE(attached.ok());
  EXPECT_FALSE(join.remote());
  for (auto& worker : workers) worker.Join();
}

TEST(DistributedFrozenTest, FrozenAttachRejectsMismatchedFile) {
  // Worker pre-mapped a file frozen from a different dataset: the
  // fingerprint in the ShardAssignment does not match its mapping.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(49, 150, &dist);
  const JoinOptions options = AdversarialJoinOptions(0.6, 29);
  const std::string path = test::TempPath("frozen_mismatch_a", this, ".skf");
  const std::string other_path =
      test::TempPath("frozen_mismatch_b", this, ".skf");
  FileGuard guard{path};
  FileGuard other_guard{other_path};
  FreezeBuildSide(data, dist, options, /*shards=*/1, path);
  ProductDistribution other_dist;
  Dataset other = ZipfDataWithDuplicates(50, 150, &other_dist);
  FreezeBuildSide(other, other_dist, options, /*shards=*/1, other_path);

  auto worker_file = FrozenShardFile::Map(other_path);
  ASSERT_TRUE(worker_file.ok());
  ServeOptions serve;
  serve.frozen_file = worker_file->get();
  serve.frozen_data = &other;

  DistributedJoinOptions distributed;
  distributed.threshold = options.threshold;
  DistributedJoin join;
  ASSERT_TRUE(join.BuildFromFrozen(&data, &dist, path, distributed).ok());
  HostedWorker worker;
  std::vector<std::unique_ptr<FrameConnection>> connections;
  auto [coordinator_end, worker_end] = LoopbackPair();
  worker.Serve(std::move(worker_end), serve);
  connections.push_back(std::move(coordinator_end));
  Status attached = join.AttachRemoteFrozen(std::move(connections));
  EXPECT_FALSE(attached.ok());
  EXPECT_FALSE(join.remote());
  worker.Join();
  EXPECT_FALSE(worker.status.ok());
}

TEST(DistributedFrozenTest, FrozenWorkerLossFailsCleanlyWithoutRecovery) {
  // A mapped shard is not re-shippable: when a frozen-shard session
  // dies mid-join the coordinator must fail the join cleanly (no
  // Reassign attempts against the survivors, which reject them).
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(51, 220, &dist);
  const JoinOptions options = AdversarialJoinOptions(0.6, 31);
  const std::string path = test::TempPath("frozen_loss", this, ".skf");
  FileGuard guard{path};
  const int shards = 2;
  FreezeBuildSide(data, dist, options, shards, path);

  auto worker_file = FrozenShardFile::Map(path);
  ASSERT_TRUE(worker_file.ok());
  ServeOptions healthy;
  healthy.frozen_file = worker_file->get();
  healthy.frozen_data = &data;
  ServeOptions dying = healthy;
  dying.fail_after_batches = 1;  // vanish mid-stream

  DistributedJoinOptions distributed;
  distributed.threshold = options.threshold;
  distributed.probe_batch = 8;  // several batches so the failure lands
  DistributedJoin join;
  ASSERT_TRUE(join.BuildFromFrozen(&data, &dist, path, distributed).ok());

  std::vector<HostedWorker> workers(shards);
  std::vector<std::unique_ptr<FrameConnection>> connections;
  for (int w = 0; w < shards; ++w) {
    auto [coordinator_end, worker_end] = LoopbackPair();
    workers[static_cast<size_t>(w)].Serve(std::move(worker_end),
                                          w == 0 ? dying : healthy);
    connections.push_back(std::move(coordinator_end));
  }
  ASSERT_TRUE(join.AttachRemoteFrozen(std::move(connections)).ok());

  auto got = join.SelfJoin();
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsIOError()) << got.status().ToString();
  EXPECT_NE(got.status().ToString().find("cannot be re-shipped"),
            std::string::npos)
      << got.status().ToString();
  join.DetachRemote();
  for (auto& worker : workers) worker.Join();
}

}  // namespace
}  // namespace skewsearch
