// Copyright 2026 The skewsearch Authors.
// Differential fuzz tests for the flat posting containers: long random
// op sequences (insert / emplace / operator[] / erase / clear / reserve)
// executed side by side against the std::unordered oracle, asserting
// identical contents after every phase. Backward-shift deletion and the
// power-of-two probe window are exactly the kind of code that fails only
// on adversarial histories, so the histories are random and long.

#include "util/containers.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/posting_table.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using Oracle = std::unordered_map<uint64_t, uint64_t>;

void ExpectSameContents(const FlatHashMap<uint64_t, uint64_t>& map,
                        const Oracle& oracle) {
  ASSERT_EQ(map.size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    auto it = map.find(key);
    ASSERT_NE(it, map.end()) << "missing key " << key;
    EXPECT_EQ(it->second, value);
  }
  // The reverse direction: everything the map iterates exists in the
  // oracle (catches ghost slots left by a broken erase).
  size_t seen = 0;
  for (const auto& entry : map) {
    auto it = oracle.find(entry.first);
    ASSERT_NE(it, oracle.end()) << "ghost key " << entry.first;
    EXPECT_EQ(entry.second, it->second);
    ++seen;
  }
  EXPECT_EQ(seen, oracle.size());
}

TEST(FlatContainersTest, MapFuzzAgainstStdOracle) {
  Rng rng(2024);
  FlatHashMap<uint64_t, uint64_t> map;
  Oracle oracle;
  // Small key space forces constant insert/erase collisions on the same
  // probe windows — the backward-shift stress case.
  const uint64_t key_space = 512;
  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = rng.NextBounded(key_space);
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2: {  // operator[] upsert
        const uint64_t value = rng.NextUint64();
        map[key] = value;
        oracle[key] = value;
        break;
      }
      case 3: {  // emplace keeps the existing value
        auto [it, inserted] = map.emplace(key, step);
        auto [oit, oinserted] = oracle.emplace(key, step);
        EXPECT_EQ(inserted, oinserted);
        EXPECT_EQ(it->second, oit->second);
        break;
      }
      case 4:
      case 5: {  // erase
        EXPECT_EQ(map.erase(key), oracle.erase(key));
        break;
      }
      case 6: {  // point lookups
        EXPECT_EQ(map.contains(key), oracle.count(key) > 0);
        EXPECT_EQ(map.count(key), oracle.count(key));
        break;
      }
      default: {  // insert (no overwrite)
        auto [it, inserted] = map.insert({key, step + 7u});
        auto [oit, oinserted] = oracle.insert({key, step + 7u});
        EXPECT_EQ(inserted, oinserted);
        EXPECT_EQ(it->second, oit->second);
        break;
      }
    }
    if (step % 4096 == 0) ExpectSameContents(map, oracle);
  }
  ExpectSameContents(map, oracle);

  map.clear();
  oracle.clear();
  ExpectSameContents(map, oracle);
  map.reserve(1000);
  for (uint64_t k = 0; k < 1000; ++k) {
    map[k] = k * k;
    oracle[k] = k * k;
  }
  ExpectSameContents(map, oracle);
  EXPECT_GT(map.MemoryBytes(), 0u);
}

TEST(FlatContainersTest, SetFuzzAgainstStdOracle) {
  Rng rng(4096);
  FlatHashSet<uint32_t> set;
  std::unordered_set<uint32_t> oracle;
  for (int step = 0; step < 20000; ++step) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(300));
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        auto [it, inserted] = set.insert(key);
        EXPECT_EQ(inserted, oracle.insert(key).second);
        EXPECT_EQ(*it, key);
        break;
      }
      case 2:
        EXPECT_EQ(set.erase(key), oracle.erase(key));
        break;
      default:
        EXPECT_EQ(set.contains(key), oracle.count(key) > 0);
        break;
    }
  }
  ASSERT_EQ(set.size(), oracle.size());
  for (uint32_t k : oracle) EXPECT_TRUE(set.contains(k));
  size_t seen = 0;
  for (uint32_t k : set) {
    EXPECT_TRUE(oracle.count(k) > 0);
    ++seen;
  }
  EXPECT_EQ(seen, oracle.size());
}

TEST(FlatContainersTest, CopyAndMoveSemantics) {
  FlatHashMap<uint64_t, uint64_t> map;
  for (uint64_t k = 0; k < 100; ++k) map[k] = k + 1;
  FlatHashMap<uint64_t, uint64_t> copy = map;  // COW registries clone maps
  map.erase(5);
  EXPECT_TRUE(copy.contains(5));
  EXPECT_EQ(copy.size(), 100u);
  FlatHashMap<uint64_t, uint64_t> moved = std::move(copy);
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_EQ(moved.find(42)->second, 43u);
}

TEST(FlatContainersTest, PostingArenaFreezeMatchesSortedOracle) {
  Rng rng(777);
  PostingArena arena;
  std::unordered_map<uint64_t, std::vector<VectorId>> oracle;
  const size_t pairs = 30000;
  arena.Reserve(pairs);
  for (size_t i = 0; i < pairs; ++i) {
    const uint64_t key = rng.NextBounded(2000);
    const VectorId id = static_cast<VectorId>(rng.NextBounded(100000));
    arena.Add(key, id);
    oracle[key].push_back(id);
  }
  EXPECT_EQ(arena.num_pairs(), pairs);
  EXPECT_EQ(arena.num_keys(), oracle.size());
  EXPECT_GT(arena.MemoryBytes(), 0u);

  std::vector<uint64_t> keys;
  std::vector<uint32_t> offsets;
  std::vector<VectorId> ids;
  arena.Freeze(&keys, &offsets, &ids);
  ASSERT_EQ(keys.size(), oracle.size());
  ASSERT_EQ(offsets.size(), keys.size() + 1);
  ASSERT_EQ(ids.size(), pairs);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (size_t k = 0; k < keys.size(); ++k) {
    auto& expect = oracle[keys[k]];
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(offsets[k + 1] - offsets[k], expect.size()) << keys[k];
    for (size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(ids[offsets[k] + j], expect[j]);
    }
  }
  // Freeze drains the arena.
  EXPECT_EQ(arena.num_pairs(), 0u);
  EXPECT_EQ(arena.num_keys(), 0u);

  // The probe index built over the frozen keys maps each to its slot.
  PostingMap<uint64_t, uint32_t> index = BuildPostingKeyIndex(keys);
  ASSERT_EQ(index.size(), keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    auto it = index.find(keys[k]);
    ASSERT_NE(it, index.end());
    EXPECT_EQ(it->second, static_cast<uint32_t>(k));
  }
}

}  // namespace
}  // namespace skewsearch
