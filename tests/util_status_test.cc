#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace skewsearch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgument) {
  Status s = Status::InvalidArgument("bad p");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad p");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad p");
}

TEST(StatusTest, NotFound) {
  Status s = Status::NotFound("missing");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsIOError());
}

TEST(StatusTest, IOError) {
  Status s = Status::IOError("disk");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.ToString(), "IO error: disk");
}

TEST(StatusTest, Aborted) {
  EXPECT_TRUE(Status::Aborted("cap").IsAborted());
}

TEST(StatusTest, NotSupported) {
  EXPECT_TRUE(Status::NotSupported("nyi").IsNotSupported());
}

TEST(StatusTest, Internal) {
  EXPECT_TRUE(Status::Internal("bug").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::IOError("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    SKEWSEARCH_RETURN_NOT_OK(Status::InvalidArgument("inner"));
    return Status::OK();
  };
  Status s = fails();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "inner");
}

TEST(StatusTest, ReturnNotOkMacroPassesThrough) {
  auto succeeds = []() -> Status {
    SKEWSEARCH_RETURN_NOT_OK(Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_TRUE(succeeds().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("no"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> err(Status::NotFound("no"));
  EXPECT_EQ(err.ValueOr(7), 7);
  Result<int> ok(3);
  EXPECT_EQ(ok.ValueOr(7), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace skewsearch
