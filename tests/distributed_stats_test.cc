// Stats-frame tests: StatsResponse encode/decode round trips and
// malformed-payload rejection, the scrape-only session over loopback
// and real TCP, a StatsRequest interleaved with probe batches, and the
// v1-peer rejection path. The suite name starts with "Distributed" so
// CI's TSan matrix picks it up (scrapes race serving threads).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "distributed/transport/session.h"
#include "distributed/transport/tcp_transport.h"
#include "distributed/transport/transport.h"
#include "distributed/transport/wire.h"
#include "obs/metrics.h"

namespace skewsearch {
namespace {

wire::StatsFrame SampleStats() {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.counter")->Increment(42);
  registry.GetGauge("b.gauge")->Set(-7);
  obs::Histogram* histogram = registry.GetHistogram("c.hist");
  histogram->Record(0);
  histogram->Record(5);
  histogram->Record(1000);
  wire::StatsFrame stats;
  stats.metrics = registry.Snapshot();
  return stats;
}

TEST(DistributedStatsTest, StatsResponseRoundTrip) {
  wire::StatsFrame stats = SampleStats();
  wire::Frame frame = wire::EncodeStatsResponse(stats);
  EXPECT_EQ(frame.type, wire::FrameType::kStatsResponse);

  wire::StatsFrame decoded;
  ASSERT_TRUE(wire::DecodeStatsResponse(frame, &decoded).ok());
  ASSERT_EQ(decoded.metrics.size(), 3u);

  EXPECT_EQ(decoded.metrics[0].name, "a.counter");
  EXPECT_EQ(decoded.metrics[0].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(decoded.metrics[0].counter_value, 42u);

  EXPECT_EQ(decoded.metrics[1].name, "b.gauge");
  EXPECT_EQ(decoded.metrics[1].kind, obs::MetricKind::kGauge);
  EXPECT_EQ(decoded.metrics[1].gauge_value, -7);

  EXPECT_EQ(decoded.metrics[2].name, "c.hist");
  EXPECT_EQ(decoded.metrics[2].kind, obs::MetricKind::kHistogram);
  const obs::HistogramData& h = decoded.metrics[2].histogram;
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 1005u);
  EXPECT_EQ(h.max, 1000u);
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[0], (std::pair<uint8_t, uint64_t>{0, 1}));
  EXPECT_EQ(h.buckets[1], (std::pair<uint8_t, uint64_t>{3, 1}));
  EXPECT_EQ(h.buckets[2], (std::pair<uint8_t, uint64_t>{10, 1}));

  // The rendered exposition survives the wire byte-for-byte.
  EXPECT_EQ(obs::RenderText(stats.metrics),
            obs::RenderText(decoded.metrics));
  EXPECT_EQ(obs::RenderJson(stats.metrics),
            obs::RenderJson(decoded.metrics));
}

TEST(DistributedStatsTest, EmptyStatsResponseRoundTrips) {
  wire::StatsFrame empty;
  wire::StatsFrame decoded;
  decoded.metrics.resize(3);  // must be cleared by the decoder
  ASSERT_TRUE(
      wire::DecodeStatsResponse(wire::EncodeStatsResponse(empty), &decoded)
          .ok());
  EXPECT_TRUE(decoded.metrics.empty());
}

TEST(DistributedStatsTest, DecodeRejectsUnsortedNames) {
  // The decoder enforces strictly increasing names — a frame with them
  // out of order (or duplicated) is corrupt, not just untidy.
  wire::StatsFrame stats = SampleStats();
  std::swap(stats.metrics[0], stats.metrics[1]);
  wire::StatsFrame decoded;
  EXPECT_FALSE(
      wire::DecodeStatsResponse(wire::EncodeStatsResponse(stats), &decoded)
          .ok());

  wire::StatsFrame duplicated = SampleStats();
  duplicated.metrics[1] = duplicated.metrics[0];
  EXPECT_FALSE(wire::DecodeStatsResponse(
                   wire::EncodeStatsResponse(duplicated), &decoded)
                   .ok());
}

TEST(DistributedStatsTest, DecodeRejectsTamperedPayload) {
  wire::Frame frame = wire::EncodeStatsResponse(SampleStats());
  wire::StatsFrame decoded;

  // Truncation anywhere must fail, never read out of bounds.
  for (size_t cut : {size_t{1}, frame.payload.size() / 2,
                     frame.payload.size() - 1}) {
    wire::Frame truncated = frame;
    truncated.payload.resize(cut);
    EXPECT_FALSE(wire::DecodeStatsResponse(truncated, &decoded).ok())
        << "cut at " << cut;
  }

  // Trailing garbage is rejected (the decoder checks full consumption).
  wire::Frame padded = frame;
  padded.payload.push_back(0);
  EXPECT_FALSE(wire::DecodeStatsResponse(padded, &decoded).ok());

  // A kind byte outside {counter, gauge, histogram}: the first metric's
  // kind sits right after the u32 count, u16 name length and name.
  wire::Frame bad_kind = frame;
  bad_kind.payload[4 + 2 + std::string("a.counter").size()] = 9;
  EXPECT_FALSE(wire::DecodeStatsResponse(bad_kind, &decoded).ok());
}

/// One thread serving ServeConnection on its end of a transport.
struct HostedWorker {
  std::thread thread;
  Status status;
  WorkerServeStats stats;

  void Serve(std::unique_ptr<FrameConnection> connection,
             const ServeOptions& options) {
    thread = std::thread(
        [this, conn = std::move(connection), options]() mutable {
          status = ServeConnection(conn.get(), &stats, options);
        });
  }
  void Join() {
    if (thread.joinable()) thread.join();
  }
};

TEST(DistributedStatsTest, ScrapeOnlySessionOverLoopback) {
  obs::MetricsRegistry registry;
  registry.GetCounter("test.preexisting")->Increment(7);
  ServeOptions options;
  options.metrics = &registry;

  auto [scraper, worker_end] = LoopbackPair();
  HostedWorker worker;
  worker.Serve(std::move(worker_end), options);
  auto stats = ScrapeWorkerStats(scraper.get());
  scraper->Close();
  worker.Join();
  EXPECT_TRUE(worker.status.ok()) << worker.status.ToString();

  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  bool saw_preexisting = false, saw_scrapes = false;
  for (const obs::MetricSnapshot& m : stats->metrics) {
    if (m.name == "test.preexisting") {
      saw_preexisting = true;
      EXPECT_EQ(m.counter_value, 7u);
    }
    if (m.name == "worker.stats_scrapes") {
      saw_scrapes = true;
      EXPECT_EQ(m.counter_value, 1u);
    }
  }
  EXPECT_TRUE(saw_preexisting);
  EXPECT_TRUE(saw_scrapes);
}

TEST(DistributedStatsTest, ScrapeOnlySessionOverTcp) {
  obs::MetricsRegistry registry;
  ServeOptions options;
  options.metrics = &registry;

  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  HostedWorker worker;
  worker.thread = std::thread(
      [&worker, &options, l = std::move(listener).value()]() mutable {
        auto conn = l.Accept();
        if (!conn.ok()) {
          worker.status = conn.status();
          return;
        }
        worker.status = ServeConnection(conn->get(), &worker.stats, options);
      });
  auto client = TcpConnect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  auto stats = ScrapeWorkerStats(client->get());
  (*client)->Close();
  worker.Join();
  EXPECT_TRUE(worker.status.ok()) << worker.status.ToString();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(registry.GetCounter("worker.stats_scrapes")->Value(), 1u);
}

TEST(DistributedStatsTest, StatsRequestInterleavesWithProbes) {
  obs::MetricsRegistry registry;
  ServeOptions options;
  options.metrics = &registry;

  auto [coordinator, worker_end] = LoopbackPair();
  HostedWorker worker;
  worker.Serve(std::move(worker_end), options);

  wire::WorkerAssignment assignment;
  assignment.threshold = 0.5;
  assignment.postings.emplace_back(42, std::vector<VectorId>{1});
  assignment.vectors.emplace_back(1, std::vector<ItemId>{3, 5});
  auto session =
      RemoteWorkerSession::Start(std::move(coordinator), 0, 1, assignment);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_GE(session->negotiated_version(), 2);

  const std::vector<ItemId> probe_items = {3, 5};
  std::vector<ProbeRequest> batch(1);
  batch[0].left = 0;
  batch[0].items = probe_items;
  batch[0].keys = {42};
  auto responses = session->Probe(batch);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), 1u);
  EXPECT_EQ((*responses)[0].matches.size(), 1u);

  // Mid-session scrape: the already-served batch must be visible.
  auto stats = session->QueryStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  bool saw_batches = false;
  for (const obs::MetricSnapshot& m : stats->metrics) {
    if (m.name == "worker.batches") {
      saw_batches = true;
      EXPECT_EQ(m.counter_value, 1u);
    }
  }
  EXPECT_TRUE(saw_batches);

  // The session keeps serving probes after the scrape.
  responses = session->Probe(batch);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  EXPECT_TRUE(session->Shutdown().ok());
  worker.Join();
  EXPECT_TRUE(worker.status.ok()) << worker.status.ToString();
  EXPECT_EQ(worker.stats.batches, 2u);
}

TEST(DistributedStatsTest, V1SessionRejectsStatsRequest) {
  // A coordinator that negotiated version 1 must get NotSupported for a
  // StatsRequest — the frame does not exist under v1.
  auto [coordinator, worker_end] = LoopbackPair();
  HostedWorker worker;
  worker.Serve(std::move(worker_end), ServeOptions{});
  wire::HelloFrame hello;
  hello.min_version = 1;
  hello.max_version = 1;
  hello.worker_id = 0;
  hello.num_workers = 1;
  ASSERT_TRUE(coordinator->Send(wire::EncodeHello(hello)).ok());
  wire::Frame frame;
  ASSERT_TRUE(coordinator->Receive(&frame).ok());
  wire::HelloAckFrame ack;
  ASSERT_TRUE(wire::DecodeHelloAck(frame, &ack).ok());
  ASSERT_EQ(ack.version, 1);

  ASSERT_TRUE(coordinator->Send(wire::EncodeStatsRequest()).ok());
  ASSERT_TRUE(coordinator->Receive(&frame).ok());
  ASSERT_EQ(frame.type, wire::FrameType::kError);
  wire::ErrorFrame error;
  ASSERT_TRUE(wire::DecodeError(frame, &error).ok());
  EXPECT_TRUE(wire::StatusFromError(error).IsNotSupported());
  worker.Join();
  EXPECT_FALSE(worker.status.ok());
}

TEST(DistributedStatsTest, ScrapeRejectsV1OnlyWorker) {
  // ScrapeWorkerStats against a peer that acks version 1 must fail with
  // NotSupported before sending any StatsRequest.
  auto [scraper, fake_worker] = LoopbackPair();
  std::thread worker([conn = std::move(fake_worker)]() mutable {
    wire::Frame frame;
    ASSERT_TRUE(conn->Receive(&frame).ok());
    wire::HelloFrame hello;
    ASSERT_TRUE(wire::DecodeHello(frame, &hello).ok());
    wire::HelloAckFrame ack;
    ack.version = 1;  // v1-only worker
    ack.worker_id = hello.worker_id;
    ASSERT_TRUE(conn->Send(wire::EncodeHelloAck(ack)).ok());
    conn->Receive(&frame).ok();  // whatever comes next (close or frame)
  });
  auto stats = ScrapeWorkerStats(scraper.get());
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsNotSupported())
      << stats.status().ToString();
  worker.join();
}

}  // namespace
}  // namespace skewsearch
