#include "core/rho.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"

namespace skewsearch {
namespace {

TEST(RhoTest, ConditionalProbability) {
  EXPECT_DOUBLE_EQ(ConditionalProbability(0.25, 0.0), 0.25);
  EXPECT_DOUBLE_EQ(ConditionalProbability(0.25, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ConditionalProbability(0.25, 2.0 / 3.0),
                   0.25 / 3.0 + 2.0 / 3.0);
}

// --- Correlated rho (Theorem 1) --------------------------------------

TEST(RhoTest, CorrelatedUniformMatchesClosedForm) {
  // Uniform p: the equation reduces to p^rho = p_hat, i.e.
  // rho = ln(p_hat)/ln(p) — exactly Chosen Path's exponent.
  const double p = 0.25, alpha = 0.5;
  auto dist = UniformProbabilities(1000, p).value();
  double rho = CorrelatedRho(dist, alpha).value();
  double expect = std::log(ConditionalProbability(p, alpha)) / std::log(p);
  EXPECT_NEAR(rho, expect, 1e-9);
  // And equals the Chosen Path rho for this distribution.
  EXPECT_NEAR(rho, ChosenPathRhoForDistribution(dist, alpha), 1e-9);
}

TEST(RhoTest, CorrelatedSolutionSatisfiesEquation) {
  auto dist = TwoBlockProbabilities(100, 0.3, 10000, 0.003).value();
  const double alpha = 0.6;
  double rho = CorrelatedRho(dist, alpha).value();
  double lhs = 0.0;
  for (double p : dist.probabilities()) {
    lhs += std::pow(p, 1.0 + rho) / ConditionalProbability(p, alpha);
  }
  EXPECT_NEAR(lhs, dist.SumP(), 1e-6 * dist.SumP());
}

TEST(RhoTest, CorrelatedBeatsChosenPathUnderSkew) {
  // Figure 1's headline: with half the bits at p and half at p/8, our rho
  // is strictly below Chosen Path's.
  const double alpha = 2.0 / 3.0;
  for (double p : {0.1, 0.2, 0.3, 0.4}) {
    auto dist = TwoBlockProbabilities(500, p, 500, p / 8).value();
    double ours = CorrelatedRho(dist, alpha).value();
    double cp = ChosenPathRhoForDistribution(dist, alpha);
    EXPECT_LT(ours, cp - 1e-4) << "p = " << p;
  }
}

TEST(RhoTest, CorrelatedIncreasesWithLessCorrelation) {
  auto dist = TwoBlockProbabilities(200, 0.25, 2000, 0.01).value();
  double prev = 0.0;
  for (double alpha : {0.9, 0.7, 0.5, 0.3}) {
    double rho = CorrelatedRho(dist, alpha).value();
    EXPECT_GT(rho, prev) << "alpha " << alpha;
    prev = rho;
  }
}

TEST(RhoTest, CorrelatedRejectsBadAlpha) {
  auto dist = UniformProbabilities(10, 0.1).value();
  EXPECT_FALSE(CorrelatedRho(dist, 0.0).ok());
  EXPECT_FALSE(CorrelatedRho(dist, -1.0).ok());
  EXPECT_FALSE(CorrelatedRho(dist, 1.5).ok());
}

TEST(RhoTest, Section72ExtremeSkewGivesNearZero) {
  // §7.2: 4*C*ln n bits at 1/4 and n^0.9*C*ln n bits at n^-0.9 with
  // alpha = 2/3 => rho -> 0 (query time O(n^eps)). The convergence is
  // Theta(1/log n), so we evaluate the (grouped) equation at astronomical
  // n and additionally check monotone decrease.
  auto rho_at = [](double n) {
    const double c_log_n = 30.0 * std::log(n);
    const double p_rare = std::pow(n, -0.9);
    std::vector<ProbabilityGroup> groups{
        {0.25, 4.0 * c_log_n},
        {p_rare, c_log_n / p_rare},
    };
    return CorrelatedRhoGrouped(groups, 2.0 / 3.0).value();
  };
  double r16 = rho_at(std::pow(2.0, 16));
  double r64 = rho_at(std::pow(2.0, 64));
  double r256 = rho_at(std::pow(2.0, 256));
  EXPECT_GT(r16, r64);
  EXPECT_GT(r64, r256);
  EXPECT_LT(r256, 0.02);
}

// --- Adversarial rho (Lemma 8 / §7.1) ---------------------------------

TEST(RhoTest, AdversarialUniformClosedForm) {
  // Uniform p: sum p^rho = b1 |q| => p^rho = b1 => rho = ln b1 / ln p.
  std::vector<double> probs(100, 0.125);
  double rho = AdversarialQueryRho(probs, 1.0 / 3.0).value();
  EXPECT_NEAR(rho, std::log(1.0 / 3.0) / std::log(0.125), 1e-9);
}

TEST(RhoTest, Section71FirstExample) {
  // pa = 1/4, pb = n^-0.9, b1 = 1/3:
  //   Chosen Path: rho >= log(1/3)/log(1/8) ~ 0.528
  //   Ours:        rho -> log(2/3)/log(1/4) ~ 0.293.
  const double n = 1e12;  // large n so pb^rho is negligible
  const double pb = std::pow(n, -0.9);
  std::vector<ProbabilityGroup> groups{{0.25, 500.0}, {pb, 500.0}};
  double ours = AdversarialQueryRhoGrouped(groups, 1.0 / 3.0).value();
  EXPECT_NEAR(ours, std::log(2.0 / 3.0) / std::log(0.25), 0.005);

  double cp = ChosenPathRho(1.0 / 3.0, (0.25 + pb) / 2.0);
  EXPECT_NEAR(cp, 0.528, 0.005);
  EXPECT_LT(ours, cp);
}

TEST(RhoTest, Section71SecondExampleRhoGoesToZero) {
  // b1 = 2/3 forces intersection into the rare half: rho -> 0 at rate
  // Theta(1/log n) (driven entirely by the rare-item term).
  auto rho_at = [](double n) {
    const double pb = std::pow(n, -0.9);
    std::vector<ProbabilityGroup> groups{{0.25, 500.0}, {pb, 500.0}};
    return AdversarialQueryRhoGrouped(groups, 2.0 / 3.0).value();
  };
  double r12 = rho_at(1e12);
  double r40 = rho_at(1e40);
  double r120 = rho_at(1e120);
  EXPECT_GT(r12, r40);
  EXPECT_GT(r40, r120);
  EXPECT_LT(r120, 0.01);
  // Chosen Path still pays ~0.194 independent of n.
  double cp = ChosenPathRho(2.0 / 3.0, 1.0 / 8.0);
  EXPECT_NEAR(cp, 0.194, 0.005);
  EXPECT_LT(r12, cp);
}

TEST(RhoTest, AdversarialSolutionSatisfiesEquation) {
  std::vector<double> probs{0.5, 0.3, 0.1, 0.01, 0.001, 0.2, 0.4};
  const double b1 = 0.4;
  double rho = AdversarialQueryRho(probs, b1).value();
  double lhs = 0.0;
  for (double p : probs) lhs += std::pow(p, rho);
  EXPECT_NEAR(lhs, b1 * static_cast<double>(probs.size()), 1e-6);
}

TEST(RhoTest, AdversarialDistributionOverload) {
  auto dist = TwoBlockProbabilities(4, 0.25, 4, 0.01).value();
  SparseVector q = SparseVector::Of({0, 1, 4, 5});
  double via_overload = AdversarialQueryRho(dist, q, 0.5).value();
  std::vector<double> probs{0.25, 0.25, 0.01, 0.01};
  double direct = AdversarialQueryRho(probs, 0.5).value();
  EXPECT_DOUBLE_EQ(via_overload, direct);
}

TEST(RhoTest, AdversarialRejectsBadInput) {
  EXPECT_FALSE(AdversarialQueryRho(std::vector<double>{}, 0.5).ok());
  EXPECT_FALSE(AdversarialQueryRho(std::vector<double>{0.1}, 0.0).ok());
  EXPECT_FALSE(AdversarialQueryRho(std::vector<double>{0.1}, 1.0).ok());
  auto dist = UniformProbabilities(4, 0.2).value();
  SparseVector q = SparseVector::Of({9});
  EXPECT_FALSE(AdversarialQueryRho(dist, q, 0.5).ok());
}

// --- Preprocessing rho (Theorem 2) ------------------------------------

TEST(RhoTest, PreprocessUniformClosedForm) {
  auto dist = UniformProbabilities(100, 0.2).value();
  double rho = PreprocessRho(dist, 0.5).value();
  EXPECT_NEAR(rho, std::log(0.5) / std::log(0.2), 1e-9);
}

TEST(RhoTest, PreprocessSatisfiesEquation) {
  auto dist = TwoBlockProbabilities(50, 0.4, 5000, 0.002).value();
  const double b1 = 0.3;
  double rho = PreprocessRho(dist, b1).value();
  double lhs = 0.0;
  for (double p : dist.probabilities()) lhs += std::pow(p, 1.0 + rho);
  EXPECT_NEAR(lhs, b1 * dist.SumP(), 1e-6 * dist.SumP());
}

TEST(RhoTest, PreprocessRejectsBadB1) {
  auto dist = UniformProbabilities(10, 0.1).value();
  EXPECT_FALSE(PreprocessRho(dist, 0.0).ok());
  EXPECT_FALSE(PreprocessRho(dist, 1.0).ok());
}

// --- Chosen Path helpers ----------------------------------------------

TEST(RhoTest, ChosenPathFormula) {
  EXPECT_NEAR(ChosenPathRho(0.5, 0.25), 0.5, 1e-12);
  EXPECT_NEAR(ChosenPathRho(1.0 / 3.0, 1.0 / 8.0),
              std::log(3.0) / std::log(8.0), 1e-12);
  EXPECT_EQ(ChosenPathRho(1.0, 0.5), 0.0);
  EXPECT_EQ(ChosenPathRho(0.3, 0.5), 1.0);  // b2 >= b1 degenerates
  EXPECT_EQ(ChosenPathRho(0.3, 0.0), 0.0);
}

TEST(RhoTest, ExpectedSimilarities) {
  const double p = 0.2, alpha = 0.5;
  auto dist = UniformProbabilities(100, p).value();
  EXPECT_NEAR(ExpectedCorrelatedSimilarity(dist, alpha),
              ConditionalProbability(p, alpha), 1e-12);
  EXPECT_NEAR(ExpectedUncorrelatedSimilarity(dist), p, 1e-12);
}

TEST(RhoTest, RhoWithinZeroOne) {
  // Property: for a range of skews and alphas, all solvers stay in [0, 1].
  for (double ratio : {1.0, 2.0, 8.0, 64.0}) {
    for (double alpha : {0.2, 0.5, 0.8}) {
      auto dist =
          TwoBlockProbabilities(300, 0.4, 300, 0.4 / ratio).value();
      double rho = CorrelatedRho(dist, alpha).value();
      EXPECT_GE(rho, 0.0);
      EXPECT_LE(rho, 1.0);
      double pre = PreprocessRho(dist, alpha / 1.3).value();
      EXPECT_GE(pre, 0.0);
      EXPECT_LE(pre, 1.0);
    }
  }
}

}  // namespace
}  // namespace skewsearch
