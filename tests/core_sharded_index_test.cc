// ShardedIndex: serial equivalence with the unsharded SkewedPathIndex
// across shard counts and thread counts (the core contract: sharding is
// a layout decision, never a semantics decision), partition stability,
// and Save/Load.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/sharded_index.h"
#include "core/similarity_join.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "test_paths.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace skewsearch {
namespace {

class ShardedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dist_ = TwoBlockProbabilities(150, 0.25, 8000, 0.005).value();
    Rng rng(21);
    data_ = GenerateDataset(dist_, 300, &rng);
    queries_ = MakeQueries(40);
  }

  Dataset MakeQueries(int count) {
    CorrelatedQuerySampler sampler(&dist_, 0.7);
    Rng rng(22);
    Dataset queries;
    for (int t = 0; t < count; ++t) {
      VectorId target = static_cast<VectorId>(rng.NextBounded(data_.size()));
      queries.Add(sampler.SampleCorrelated(data_.Get(target), &rng).span());
    }
    return queries;
  }

  SkewedIndexOptions IndexOptions() const {
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = 0.7;
    options.repetitions = 8;
    options.seed = 4242;
    return options;
  }

  ShardedIndexOptions ShardedOptions(int num_shards) const {
    ShardedIndexOptions options;
    options.index = IndexOptions();
    options.num_shards = num_shards;
    return options;
  }

  ProductDistribution dist_;
  Dataset data_;
  Dataset queries_;
};

void ExpectSameMatch(const std::optional<Match>& a,
                     const std::optional<Match>& b, const std::string& ctx) {
  ASSERT_EQ(a.has_value(), b.has_value()) << ctx;
  if (a.has_value()) {
    EXPECT_EQ(a->id, b->id) << ctx;
    EXPECT_EQ(a->similarity, b->similarity) << ctx;  // bitwise-identical
  }
}

void ExpectSameMatches(const std::vector<Match>& a,
                       const std::vector<Match>& b, const std::string& ctx) {
  ASSERT_EQ(a.size(), b.size()) << ctx;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << ctx << " entry " << i;
    EXPECT_EQ(a[i].similarity, b[i].similarity) << ctx << " entry " << i;
  }
}

// The acceptance contract: byte-identical results for K in {1, 2, 7},
// with and without a thread pool fanning out the shard scans.
TEST_F(ShardedIndexTest, SerialEquivalenceAcrossShardAndThreadCounts) {
  SkewedPathIndex reference;
  ASSERT_TRUE(reference.Build(&data_, &dist_, IndexOptions()).ok());

  for (int num_shards : {1, 2, 7}) {
    ShardedIndex sharded;
    ASSERT_TRUE(
        sharded.Build(&data_, &dist_, ShardedOptions(num_shards)).ok());
    EXPECT_EQ(sharded.num_shards(), num_shards);
    EXPECT_EQ(sharded.repetitions(), reference.repetitions());
    EXPECT_DOUBLE_EQ(sharded.verify_threshold(),
                     reference.verify_threshold());
    EXPECT_EQ(sharded.build_stats().total_filters,
              reference.build_stats().total_filters);

    ThreadPool pool(3);
    for (size_t i = 0; i < queries_.size(); ++i) {
      auto query = queries_.Get(static_cast<VectorId>(i));
      std::string ctx = "K=" + std::to_string(num_shards) + " query " +
                        std::to_string(i);
      // Filter keys are the same family, so they must agree exactly.
      EXPECT_EQ(sharded.ComputeFilterKeys(query),
                reference.ComputeFilterKeys(query))
          << ctx;
      ExpectSameMatch(sharded.Query(query), reference.Query(query), ctx);
      ExpectSameMatch(sharded.Query(query, &pool), reference.Query(query),
                      ctx + " (pooled)");
      ExpectSameMatches(sharded.QueryAll(query, 0.0),
                        reference.QueryAll(query, 0.0), ctx);
      ExpectSameMatches(sharded.QueryAll(query, 0.0, nullptr, &pool),
                        reference.QueryAll(query, 0.0), ctx + " (pooled)");
    }
  }
}

TEST_F(ShardedIndexTest, BatchQueryMatchesUnshardedForAnyThreadCount) {
  SkewedPathIndex reference;
  ASSERT_TRUE(reference.Build(&data_, &dist_, IndexOptions()).ok());
  auto expected = reference.BatchQuery(queries_, 1);

  ShardedIndex sharded;
  ASSERT_TRUE(sharded.Build(&data_, &dist_, ShardedOptions(7)).ok());
  for (int threads : {1, 2, 4}) {
    std::vector<QueryStats> stats;
    BatchQueryStats batch_stats;
    auto results = sharded.BatchQuery(queries_, threads, &stats,
                                      &batch_stats);
    ASSERT_EQ(results.size(), expected.size());
    ASSERT_EQ(stats.size(), queries_.size());
    EXPECT_EQ(batch_stats.queries, queries_.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ExpectSameMatch(results[i], expected[i],
                      "threads=" + std::to_string(threads) + " query " +
                          std::to_string(i));
    }
  }
}

TEST_F(ShardedIndexTest, AdversarialModeEquivalence) {
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.6;
  options.repetitions = 6;
  options.seed = 99;
  SkewedPathIndex reference;
  ASSERT_TRUE(reference.Build(&data_, &dist_, options).ok());

  ShardedIndexOptions sharded_options;
  sharded_options.index = options;
  sharded_options.num_shards = 5;
  ShardedIndex sharded;
  ASSERT_TRUE(sharded.Build(&data_, &dist_, sharded_options).ok());

  for (VectorId id = 0; id < 60; ++id) {
    auto query = data_.Get(id);
    ExpectSameMatch(sharded.Query(query), reference.Query(query),
                    "stored vector " + std::to_string(id));
  }
}

TEST_F(ShardedIndexTest, ShardOfIsAStablePartition) {
  for (int num_shards : {1, 2, 7, 64}) {
    for (VectorId id = 0; id < 500; ++id) {
      int shard = ShardedIndex::ShardOf(id, num_shards);
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, num_shards);
      EXPECT_EQ(shard, ShardedIndex::ShardOf(id, num_shards));
    }
  }
  // Entries across shards must add up to the total (nothing lost or
  // duplicated by partitioning).
  ShardedIndex sharded;
  ASSERT_TRUE(sharded.Build(&data_, &dist_, ShardedOptions(7)).ok());
  size_t total = 0;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    total += sharded.shard_entries(s);
  }
  EXPECT_EQ(total, sharded.build_stats().total_filters);
}

TEST_F(ShardedIndexTest, BuildValidatesArguments) {
  ShardedIndex index;
  EXPECT_TRUE(
      index.Build(nullptr, &dist_, ShardedOptions(2)).IsInvalidArgument());
  EXPECT_TRUE(
      index.Build(&data_, &dist_, ShardedOptions(0)).IsInvalidArgument());
  EXPECT_TRUE(
      index.Build(&data_, &dist_, ShardedOptions(1 << 20))
          .IsInvalidArgument());
  EXPECT_FALSE(index.built());
  EXPECT_FALSE(index.Query(data_.Get(0)).has_value());
}

TEST_F(ShardedIndexTest, ShardedJoinMatchesUnshardedJoin) {
  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = 0.8;
  options.index.repetitions = 8;
  options.threshold = 0.8;
  auto unsharded = SelfSimilarityJoin(data_, dist_, options).value();
  options.num_shards = 5;
  options.probe_threads = 3;
  auto sharded = SelfSimilarityJoin(data_, dist_, options).value();
  ASSERT_EQ(unsharded.size(), sharded.size());
  for (size_t i = 0; i < unsharded.size(); ++i) {
    EXPECT_EQ(unsharded[i].left, sharded[i].left) << i;
    EXPECT_EQ(unsharded[i].right, sharded[i].right) << i;
    EXPECT_EQ(unsharded[i].similarity, sharded[i].similarity) << i;
  }
}

class ShardedIndexIoTest : public ShardedIndexTest {
 protected:
  void SetUp() override {
    ShardedIndexTest::SetUp();
    path_ = test::TempPath("sharded_io", this, ".skidx");
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(ShardedIndexIoTest, SaveLoadRoundTrip) {
  ShardedIndex original;
  ASSERT_TRUE(original.Build(&data_, &dist_, ShardedOptions(5)).ok());
  ASSERT_TRUE(original.Save(path_).ok());

  ShardedIndex loaded;
  ASSERT_TRUE(loaded.Load(path_, &data_, &dist_).ok());
  EXPECT_TRUE(loaded.built());
  EXPECT_EQ(loaded.num_shards(), 5);
  EXPECT_EQ(loaded.repetitions(), original.repetitions());
  EXPECT_DOUBLE_EQ(loaded.verify_threshold(), original.verify_threshold());
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto query = queries_.Get(static_cast<VectorId>(i));
    ExpectSameMatch(loaded.Query(query), original.Query(query),
                    "query " + std::to_string(i));
    ExpectSameMatches(loaded.QueryAll(query, 0.0),
                      original.QueryAll(query, 0.0),
                      "query " + std::to_string(i));
  }
}

TEST_F(ShardedIndexIoTest, LoadRejectsDifferentDataset) {
  ShardedIndex original;
  ASSERT_TRUE(original.Build(&data_, &dist_, ShardedOptions(3)).ok());
  ASSERT_TRUE(original.Save(path_).ok());
  Rng rng(77);
  Dataset other = GenerateDataset(dist_, 300, &rng);
  ShardedIndex loaded;
  EXPECT_TRUE(loaded.Load(path_, &other, &dist_).IsInvalidArgument());
}

TEST_F(ShardedIndexIoTest, LoadRejectsGarbageAndTruncation) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "not an index";
  }
  ShardedIndex loaded;
  EXPECT_TRUE(loaded.Load(path_, &data_, &dist_).IsInvalidArgument());

  ShardedIndex original;
  ASSERT_TRUE(original.Build(&data_, &dist_, ShardedOptions(3)).ok());
  ASSERT_TRUE(original.Save(path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  for (size_t keep : {size_t{0}, size_t{3}, size_t{40}, contents.size() / 2,
                      contents.size() - 1}) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(keep));
    out.close();
    ShardedIndex truncated;
    EXPECT_FALSE(truncated.Load(path_, &data_, &dist_).ok())
        << "prefix of " << keep << " bytes";
  }
}

}  // namespace
}  // namespace skewsearch
