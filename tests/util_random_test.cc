#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace skewsearch {
namespace {

TEST(SplitMix64Test, DeterministicAndDistinct) {
  uint64_t s1 = 1, s2 = 1;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  uint64_t a = SplitMix64(&s1);
  uint64_t b = SplitMix64(&s1);
  EXPECT_NE(a, b);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextDouble();
  // stderr = 1/sqrt(12*kDraws) ~ 0.0009; 6 sigma.
  EXPECT_NEAR(sum / kDraws, 0.5, 0.006);
}

TEST(RngTest, BoundedInRange) {
  Rng rng(13);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedUniformity) {
  Rng rng(17);
  const uint64_t kBound = 10;
  const int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(kBound)]++;
  for (uint64_t v = 0; v < kBound; ++v) {
    // Expected 10000 +- ~5 sigma (sigma ~ 95).
    EXPECT_NEAR(counts[v], kDraws / kBound, 500) << "bucket " << v;
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  const int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, GeometricSkipsMean) {
  // E[skips] = (1-p)/p.
  Rng rng(29);
  const double p = 0.2;
  const int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.NextGeometricSkips(p));
  }
  EXPECT_NEAR(sum / kDraws, (1.0 - p) / p, 0.1);
}

TEST(RngTest, GeometricSkipsDegenerate) {
  Rng rng(31);
  EXPECT_EQ(rng.NextGeometricSkips(1.0), 0u);
  EXPECT_GT(rng.NextGeometricSkips(0.0), uint64_t{1} << 62);
  EXPECT_GT(rng.NextGeometricSkips(-0.5), uint64_t{1} << 62);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(37);
  const int kDraws = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = items;
  rng.Shuffle(&items);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleIsUniformish) {
  // Position of element 0 after shuffling [0,1,2,3] should be ~uniform.
  const int kTrials = 40000;
  std::vector<int> position_counts(4, 0);
  Rng rng(43);
  for (int t = 0; t < kTrials; ++t) {
    std::vector<int> items{0, 1, 2, 3};
    rng.Shuffle(&items);
    for (int pos = 0; pos < 4; ++pos) {
      if (items[pos] == 0) position_counts[pos]++;
    }
  }
  for (int pos = 0; pos < 4; ++pos) {
    EXPECT_NEAR(position_counts[pos], kTrials / 4, 600) << "pos " << pos;
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedStillWorks) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.NextUint64());
  EXPECT_GT(seen.size(), 95u);
}

}  // namespace
}  // namespace skewsearch
