#include "data/estimate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(EstimateTest, RejectsEmptyDataset) {
  Dataset data;
  EXPECT_TRUE(EstimateFrequencies(data).status().IsInvalidArgument());
}

TEST(EstimateTest, ExactCountsWithoutSmoothing) {
  Dataset data;
  data.Add(SparseVector::Of({0, 1}));
  data.Add(SparseVector::Of({0}));
  data.Add(SparseVector::Of({0, 2}));
  data.Add(SparseVector::Of({0, 1}));
  EstimateOptions options;
  options.smoothing = 0.0;
  options.max_p = 1.0 - 1e-9;
  auto dist = EstimateFrequencies(data, options);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->p(0), 1.0 - 1e-9, 1e-6);  // 4/4 clamped below 1
  EXPECT_NEAR(dist->p(1), 0.5, 1e-12);
  EXPECT_NEAR(dist->p(2), 0.25, 1e-12);
}

TEST(EstimateTest, SmoothingLiftsUnseenItems) {
  Dataset data;
  data.Add(SparseVector::Of({0}));
  data.Add(SparseVector::Of({0}));
  ASSERT_TRUE(data.SetDimension(5).ok());
  auto dist = EstimateFrequencies(data);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->dimension(), 5u);
  EXPECT_GT(dist->p(4), 0.0);
  EXPECT_LT(dist->p(4), dist->p(0));
}

TEST(EstimateTest, MaxPClampApplies) {
  Dataset data;
  for (int i = 0; i < 10; ++i) data.Add(SparseVector::Of({0}));
  auto dist = EstimateFrequencies(data);
  ASSERT_TRUE(dist.ok());
  EXPECT_LE(dist->MaxP(), 0.5);
}

TEST(EstimateTest, RecoversGeneratingDistribution) {
  auto truth = TwoBlockProbabilities(50, 0.3, 500, 0.02).value();
  Rng rng(1);
  Dataset data = GenerateDataset(truth, 5000, &rng);
  auto est = EstimateFrequencies(data);
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est->dimension(), truth.dimension());
  // Frequent block: relative error small.
  for (ItemId i = 0; i < 50; ++i) {
    EXPECT_NEAR(est->p(i), 0.3, 0.05) << "item " << i;
  }
  // Rare block: absolute error small.
  double rare_mean = 0.0;
  for (ItemId i = 50; i < 550; ++i) rare_mean += est->p(i);
  rare_mean /= 500.0;
  EXPECT_NEAR(rare_mean, 0.02, 0.003);
}

TEST(EstimateTest, CustomMinP) {
  Dataset data;
  data.Add(SparseVector::Of({0}));
  data.Add(SparseVector::Of({1}));
  ASSERT_TRUE(data.SetDimension(10).ok());
  EstimateOptions options;
  options.smoothing = 0.0;
  options.min_p = 0.01;
  auto dist = EstimateFrequencies(data, options);
  ASSERT_TRUE(dist.ok());
  EXPECT_DOUBLE_EQ(dist->p(9), 0.01);
}

}  // namespace
}  // namespace skewsearch
