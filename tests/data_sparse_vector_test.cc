#include "data/sparse_vector.h"

#include <gtest/gtest.h>

namespace skewsearch {
namespace {

TEST(SparseVectorTest, DefaultEmpty) {
  SparseVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(SparseVectorTest, FromIdsSortsAndDedupes) {
  SparseVector v = SparseVector::FromIds({5, 1, 3, 1, 5, 2});
  EXPECT_EQ(v.ids(), (std::vector<ItemId>{1, 2, 3, 5}));
}

TEST(SparseVectorTest, FromSortedTrustsInput) {
  SparseVector v = SparseVector::FromSorted({1, 2, 9});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 9u);
}

TEST(SparseVectorTest, OfLiteral) {
  SparseVector v = SparseVector::Of({7, 3, 3});
  EXPECT_EQ(v.ids(), (std::vector<ItemId>{3, 7}));
}

TEST(SparseVectorTest, Contains) {
  SparseVector v = SparseVector::Of({2, 4, 8, 16});
  EXPECT_TRUE(v.Contains(2));
  EXPECT_TRUE(v.Contains(16));
  EXPECT_FALSE(v.Contains(3));
  EXPECT_FALSE(v.Contains(0));
  EXPECT_FALSE(v.Contains(100));
}

TEST(SparseVectorTest, ContainsOnEmpty) {
  SparseVector v;
  EXPECT_FALSE(v.Contains(0));
}

TEST(SparseVectorTest, SpanViewsSameData) {
  SparseVector v = SparseVector::Of({1, 2, 3});
  auto s = v.span();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s.data(), v.ids().data());
}

TEST(SparseVectorTest, Equality) {
  EXPECT_EQ(SparseVector::Of({1, 2}), SparseVector::Of({2, 1}));
  EXPECT_FALSE(SparseVector::Of({1, 2}) == SparseVector::Of({1, 3}));
}

TEST(SparseVectorTest, LargeIds) {
  SparseVector v = SparseVector::Of({0xfffffffe, 0});
  EXPECT_TRUE(v.Contains(0xfffffffe));
  EXPECT_EQ(v[0], 0u);
}

}  // namespace
}  // namespace skewsearch
