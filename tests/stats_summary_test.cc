#include "stats/summary.h"

#include <gtest/gtest.h>

namespace skewsearch {
namespace {

TEST(SummaryTest, Empty) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s = Summarize({7.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 7.0);
  EXPECT_EQ(s.p50, 7.0);
  EXPECT_EQ(s.p99, 7.0);
}

TEST(SummaryTest, KnownPercentiles) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  Summary s = Summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_EQ(s.p50, 50.0);
  EXPECT_EQ(s.p90, 90.0);
  EXPECT_EQ(s.p99, 99.0);
}

TEST(SummaryTest, UnsortedInputHandled) {
  Summary s = Summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 3.0);
}

TEST(SummaryTest, StddevMatchesKnown) {
  Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev * s.stddev, 32.0 / 7.0, 1e-12);
}

}  // namespace
}  // namespace skewsearch
