// Save/Load of a built SkewedPathIndex plus the batch-query and
// parallel-probe APIs.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/similarity_join.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "test_paths.h"
#include "util/random.h"

namespace skewsearch {
namespace {

class IndexIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = test::TempPath("index_io", this, ".skidx");
    dist_ = TwoBlockProbabilities(150, 0.25, 8000, 0.005).value();
    Rng rng(11);
    data_ = GenerateDataset(dist_, 250, &rng);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  SkewedIndexOptions Options() const {
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = 0.7;
    options.repetitions = 8;
    options.seed = 4242;
    return options;
  }

  std::string path_;
  ProductDistribution dist_;
  Dataset data_;
};

TEST_F(IndexIoTest, SaveRequiresBuiltIndex) {
  SkewedPathIndex index;
  EXPECT_TRUE(index.Save(path_).IsInvalidArgument());
}

TEST_F(IndexIoTest, RoundTripPreservesQueries) {
  SkewedPathIndex original;
  ASSERT_TRUE(original.Build(&data_, &dist_, Options()).ok());
  ASSERT_TRUE(original.Save(path_).ok());

  SkewedPathIndex loaded;
  ASSERT_TRUE(loaded.Load(path_, &data_, &dist_).ok());
  EXPECT_TRUE(loaded.built());
  EXPECT_EQ(loaded.repetitions(), original.repetitions());
  EXPECT_EQ(loaded.build_stats().total_filters,
            original.build_stats().total_filters);
  EXPECT_EQ(loaded.build_stats().distinct_keys,
            original.build_stats().distinct_keys);
  EXPECT_DOUBLE_EQ(loaded.verify_threshold(), original.verify_threshold());

  CorrelatedQuerySampler sampler(&dist_, 0.7);
  Rng rng(12);
  for (int t = 0; t < 20; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data_.size()));
    SparseVector q = sampler.SampleCorrelated(data_.Get(target), &rng);
    // Identical filter computation and identical results.
    EXPECT_EQ(original.ComputeFilterKeys(q.span()),
              loaded.ComputeFilterKeys(q.span()));
    auto a = original.QueryAll(q.span(), 0.0);
    auto b = loaded.QueryAll(q.span(), 0.0);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].similarity, b[i].similarity);
    }
  }
}

TEST_F(IndexIoTest, LoadRejectsDifferentDataset) {
  SkewedPathIndex original;
  ASSERT_TRUE(original.Build(&data_, &dist_, Options()).ok());
  ASSERT_TRUE(original.Save(path_).ok());

  Rng rng(13);
  Dataset other = GenerateDataset(dist_, 250, &rng);
  SkewedPathIndex loaded;
  Status s = loaded.Load(path_, &other, &dist_);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("does not match"), std::string::npos);
}

TEST_F(IndexIoTest, LoadRejectsGarbageFile) {
  std::ofstream out(path_, std::ios::binary);
  out << "this is not an index";
  out.close();
  SkewedPathIndex loaded;
  EXPECT_TRUE(loaded.Load(path_, &data_, &dist_).IsInvalidArgument());
}

TEST_F(IndexIoTest, LoadRejectsTruncatedFile) {
  SkewedPathIndex original;
  ASSERT_TRUE(original.Build(&data_, &dist_, Options()).ok());
  ASSERT_TRUE(original.Save(path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  SkewedPathIndex loaded;
  EXPECT_FALSE(loaded.Load(path_, &data_, &dist_).ok());
}

TEST_F(IndexIoTest, LoadMissingFileIsIOError) {
  SkewedPathIndex loaded;
  EXPECT_TRUE(
      loaded.Load("/nonexistent/index.skidx", &data_, &dist_).IsIOError());
}

// ---- Negative paths: corruption must produce clean errors, not crashes.

class IndexIoCorruptionTest : public IndexIoTest {
 protected:
  std::string SaveValidIndex() {
    SkewedPathIndex original;
    EXPECT_TRUE(original.Build(&data_, &dist_, Options()).ok());
    EXPECT_TRUE(original.Save(path_).ok());
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void WriteFile(const std::string& contents) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  }

  Status TryLoad() {
    SkewedPathIndex loaded;
    return loaded.Load(path_, &data_, &dist_);
  }

  // Byte offsets into the fixed-width header (magic is bytes 0..3).
  static constexpr size_t kModeOffset = 4;
  static constexpr size_t kRepetitionsOffset = 51;
};

TEST_F(IndexIoCorruptionTest, RejectsCorruptedMagicVersion) {
  std::string contents = SaveValidIndex();
  for (size_t byte : {size_t{0}, size_t{3}}) {  // vendor byte, version byte
    std::string mutated = contents;
    mutated[byte] = static_cast<char>(mutated[byte] + 1);
    WriteFile(mutated);
    Status s = TryLoad();
    EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
    EXPECT_NE(s.message().find("not a skewsearch index"), std::string::npos);
  }
}

TEST_F(IndexIoCorruptionTest, RejectsWrongDatasetSize) {
  SaveValidIndex();
  for (size_t other_n : {data_.size() / 2, data_.size() + 7}) {
    Rng rng(404 + other_n);
    Dataset other = GenerateDataset(dist_, other_n, &rng);
    SkewedPathIndex loaded;
    Status s = loaded.Load(path_, &other, &dist_);
    EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
    EXPECT_NE(s.message().find("does not match"), std::string::npos);
    EXPECT_FALSE(loaded.built());
  }
}

TEST_F(IndexIoCorruptionTest, RejectsBadEnumFields) {
  std::string contents = SaveValidIndex();
  for (size_t offset : {kModeOffset, kModeOffset + 1, kModeOffset + 2}) {
    std::string mutated = contents;
    mutated[offset] = 17;  // no IndexMode/HashEngine/Measure has this value
    WriteFile(mutated);
    Status s = TryLoad();
    EXPECT_TRUE(s.IsInvalidArgument()) << "offset " << offset;
  }
}

TEST_F(IndexIoCorruptionTest, RejectsInsaneRepetitionCounts) {
  std::string contents = SaveValidIndex();
  for (int32_t bad : {0, -5, 1 << 24}) {
    std::string mutated = contents;
    std::memcpy(&mutated[kRepetitionsOffset], &bad, sizeof(bad));
    WriteFile(mutated);
    Status s = TryLoad();
    EXPECT_TRUE(s.IsInvalidArgument()) << "repetitions=" << bad << ": "
                                       << s.ToString();
  }
}

TEST_F(IndexIoCorruptionTest, RejectsOutOfRangePostingIds) {
  std::string contents = SaveValidIndex();
  // The posting-id array is the last vector in the file; smash its final
  // entry to an id far beyond the dataset. Structural checks can't see
  // this — only the id-range validation can.
  ASSERT_GE(contents.size(), sizeof(uint32_t));
  uint32_t bad_id = 0xfffffff0u;
  std::memcpy(&contents[contents.size() - sizeof(bad_id)], &bad_id,
              sizeof(bad_id));
  WriteFile(contents);
  Status s = TryLoad();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("beyond the dataset"), std::string::npos);
}

TEST_F(IndexIoCorruptionTest, TruncationSweepNeverCrashes) {
  std::string contents = SaveValidIndex();
  // Every header prefix, then strides through the table region.
  std::vector<size_t> cuts;
  for (size_t k = 0; k < std::min<size_t>(80, contents.size()); ++k) {
    cuts.push_back(k);
  }
  for (size_t k = 80; k < contents.size(); k += contents.size() / 23 + 1) {
    cuts.push_back(k);
  }
  cuts.push_back(contents.size() - 1);
  for (size_t keep : cuts) {
    WriteFile(contents.substr(0, keep));
    EXPECT_FALSE(TryLoad().ok()) << "prefix of " << keep << " bytes";
  }
}

TEST_F(IndexIoTest, AdversarialRoundTrip) {
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.6;
  options.repetitions = 6;
  SkewedPathIndex original;
  ASSERT_TRUE(original.Build(&data_, &dist_, options).ok());
  ASSERT_TRUE(original.Save(path_).ok());
  SkewedPathIndex loaded;
  ASSERT_TRUE(loaded.Load(path_, &data_, &dist_).ok());
  auto hit = loaded.Query(data_.Get(0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 0u);
}

TEST(BatchQueryTest, MatchesSerialQueries) {
  auto dist = TwoBlockProbabilities(120, 0.25, 6000, 0.005).value();
  Rng rng(14);
  Dataset data = GenerateDataset(dist, 200, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.repetitions = 8;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());

  CorrelatedQuerySampler sampler(&dist, 0.7);
  Dataset queries;
  for (int t = 0; t < 40; ++t) {
    queries.Add(sampler.SampleCorrelated(data.Get(t % data.size()), &rng));
  }
  std::vector<QueryStats> batch_stats;
  auto parallel = index.BatchQuery(queries, 4, &batch_stats);
  auto serial = index.BatchQuery(queries, 1);
  ASSERT_EQ(parallel.size(), queries.size());
  ASSERT_EQ(batch_stats.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(parallel[i].has_value(), serial[i].has_value()) << i;
    if (parallel[i]) {
      EXPECT_EQ(parallel[i]->id, serial[i]->id);
      EXPECT_EQ(parallel[i]->similarity, serial[i]->similarity);
    }
  }
}

TEST(BatchQueryTest, EmptyBatch) {
  auto dist = UniformProbabilities(100, 0.1).value();
  Rng rng(15);
  Dataset data = GenerateDataset(dist, 50, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.5;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  Dataset empty;
  EXPECT_TRUE(index.BatchQuery(empty, 4).empty());
}

TEST(ParallelJoinTest, MatchesSerialJoin) {
  auto dist = UniformProbabilities(1000, 0.04).value();
  Rng rng(16);
  Dataset data;
  for (int i = 0; i < 120; ++i) data.Add(dist.Sample(&rng));
  for (int i = 0; i < 8; ++i) data.Add(data.GetVector(i * 5));  // dups
  ASSERT_TRUE(data.SetDimension(1000).ok());

  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = 0.9;
  options.index.repetition_boost = 3.0;
  options.threshold = 0.9;

  auto serial = SelfSimilarityJoin(data, dist, options).value();
  options.probe_threads = 4;
  auto parallel = SelfSimilarityJoin(data, dist, options).value();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].left, parallel[i].left);
    EXPECT_EQ(serial[i].right, parallel[i].right);
    EXPECT_DOUBLE_EQ(serial[i].similarity, parallel[i].similarity);
  }
}

}  // namespace
}  // namespace skewsearch
