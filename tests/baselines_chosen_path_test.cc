#include "baselines/chosen_path.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/correlated.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(ChosenPathTest, BuildValidates) {
  ChosenPathIndex index;
  ChosenPathOptions options;
  auto dist = UniformProbabilities(10, 0.2).value();
  Dataset data;
  EXPECT_TRUE(index.Build(nullptr, &dist, options).IsInvalidArgument());
  data.Add(SparseVector::Of({1}));
  data.Add(SparseVector::Of({2}));
  options.b2 = 0.6;  // >= b1
  EXPECT_TRUE(index.Build(&data, &dist, options).IsInvalidArgument());
  options.b1 = 0.0;
  options.b2 = 0.1;
  EXPECT_TRUE(index.Build(&data, &dist, options).IsInvalidArgument());
}

TEST(ChosenPathTest, DepthFormula) {
  auto dist = UniformProbabilities(1000, 0.05).value();
  Rng rng(1);
  Dataset data = GenerateDataset(dist, 256, &rng);
  ChosenPathIndex index;
  ChosenPathOptions options;
  options.b1 = 0.5;
  options.b2 = 0.25;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  int expect = static_cast<int>(
      std::ceil(std::log(256.0) / std::log(4.0)));
  EXPECT_EQ(index.depth(), expect);
}

TEST(ChosenPathTest, FindsExactDuplicate) {
  auto dist = UniformProbabilities(2000, 0.05).value();  // E|x| = 100
  Rng rng(2);
  Dataset data = GenerateDataset(dist, 256, &rng);
  ChosenPathIndex index;
  ChosenPathOptions options;
  options.b1 = 0.8;
  options.b2 = 0.1;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  int found = 0;
  for (VectorId id = 0; id < 40; ++id) {
    auto hit = index.Query(data.Get(id));
    if (hit && hit->id == id) ++found;
  }
  EXPECT_GE(found, 34);
}

TEST(ChosenPathTest, CorrelatedRecall) {
  const double alpha = 0.8;
  auto dist = UniformProbabilities(3000, 0.04).value();
  Rng rng(3);
  Dataset data = GenerateDataset(dist, 300, &rng);
  // b1/b2 from the distribution's expected similarities.
  ChosenPathIndex index;
  ChosenPathOptions options;
  options.b1 = 0.04 * (1 - alpha) + alpha;  // p_hat
  options.b2 = 0.08;                        // ~2x p to be safe
  options.verify_threshold = options.b1 / 1.4;
  options.repetition_boost = 3.0;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  CorrelatedQuerySampler sampler(&dist, alpha);
  int found = 0;
  const int kQueries = 40;
  for (int t = 0; t < kQueries; ++t) {
    VectorId target = static_cast<VectorId>(rng.NextBounded(data.size()));
    SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
    auto hit = index.Query(q.span());
    if (hit && hit->id == target) ++found;
  }
  EXPECT_GE(found, kQueries * 7 / 10);
}

TEST(ChosenPathTest, QueryAllMeetsThreshold) {
  auto dist = UniformProbabilities(1000, 0.06).value();
  Rng rng(4);
  Dataset data = GenerateDataset(dist, 150, &rng);
  ChosenPathIndex index;
  ChosenPathOptions options;
  options.b1 = 0.7;
  options.b2 = 0.12;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  auto matches = index.QueryAll(data.Get(0), 0.5);
  bool self_found = false;
  for (const auto& m : matches) {
    EXPECT_GE(m.similarity, 0.5);
    self_found |= (m.id == 0);
  }
  EXPECT_TRUE(self_found);
}

TEST(ChosenPathTest, StatsPopulated) {
  auto dist = UniformProbabilities(1000, 0.05).value();
  Rng rng(5);
  Dataset data = GenerateDataset(dist, 128, &rng);
  ChosenPathIndex index;
  ChosenPathOptions options;
  options.b1 = 0.6;
  options.b2 = 0.1;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  EXPECT_GT(index.build_stats().total_filters, 0u);
  EXPECT_GT(index.build_stats().distinct_keys, 0u);
  QueryStats stats;
  index.Query(data.Get(0), &stats);
  EXPECT_GT(stats.filters, 0u);
}

TEST(ChosenPathTest, EmptyQuery) {
  auto dist = UniformProbabilities(100, 0.1).value();
  Rng rng(6);
  Dataset data = GenerateDataset(dist, 50, &rng);
  ChosenPathIndex index;
  ChosenPathOptions options;
  options.b1 = 0.5;
  options.b2 = 0.2;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  EXPECT_FALSE(index.Query({}).has_value());
}

}  // namespace
}  // namespace skewsearch
