// Copyright 2026 The skewsearch Authors.
#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace skewsearch {
namespace {

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto forty_two = pool.Submit([] { return 42; });
  auto text = pool.Submit([] { return std::string("done"); });
  EXPECT_EQ(forty_two.get(), 42);
  EXPECT_EQ(text.get(), "done");
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto failing = pool.Submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ManyMoreTasksThanWorkersAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_GE(pool.tasks_executed(), 200u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
    for (size_t grain : {size_t{0}, size_t{1}, size_t{13}, size_t{4096}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, grain, [&](size_t begin, size_t end, int slot) {
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, pool.num_threads());
        ASSERT_LE(end, n);
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " n=" << n
                                     << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForSlotsAreUnambiguousScratchIndices) {
  // Per-slot accumulation with no synchronization must be exact: two
  // chunks may only share a slot sequentially, never concurrently.
  ThreadPool pool(4);
  const size_t n = 5000;
  std::vector<long> per_slot(static_cast<size_t>(pool.num_threads()), 0);
  pool.ParallelFor(n, 7, [&](size_t begin, size_t end, int slot) {
    for (size_t i = begin; i < end; ++i) {
      per_slot[static_cast<size_t>(slot)] += static_cast<long>(i);
    }
  });
  const long total = std::accumulate(per_slot.begin(), per_slot.end(), 0L);
  EXPECT_EQ(total, static_cast<long>(n * (n - 1) / 2));
}

TEST(ThreadPoolTest, ParallelForRunsInlineWithSingleWorker) {
  ThreadPool pool(1);
  const auto main_id = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.ParallelFor(5, 2, [&](size_t, size_t, int slot) {
    EXPECT_EQ(slot, 0);
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_FALSE(seen.empty());
  for (const auto& id : seen) EXPECT_EQ(id, main_id);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100, 1,
                       [](size_t begin, size_t, int) {
                         if (begin == 42) throw std::runtime_error("bad");
                       }),
      std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> counter{0};
  pool.ParallelFor(10, 1,
                   [&](size_t, size_t, int) { counter.fetch_add(1); });
  EXPECT_GT(counter.load(), 0);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after finishing the queue
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace skewsearch
