#include "core/similarity_join.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

JoinOptions AdversarialJoinOptions(double b1) {
  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = b1;
  options.index.repetition_boost = 3.0;
  options.threshold = b1;
  return options;
}

TEST(SimilarityJoinTest, SelfJoinRecoversMostTruePairs) {
  // Plant near-duplicate pairs in noise and compare against the exact
  // brute-force join.
  auto dist = UniformProbabilities(3000, 0.02).value();  // E|x| = 60
  Rng rng(1);
  Dataset data;
  for (int i = 0; i < 150; ++i) data.Add(dist.Sample(&rng));
  // Plant 10 duplicates of existing vectors (similarity 1).
  for (int i = 0; i < 10; ++i) data.Add(data.GetVector(i * 3));
  ASSERT_TRUE(data.SetDimension(3000).ok());

  BruteForceSearcher brute(&data);
  auto truth = brute.SelfJoinAbove(0.8);
  ASSERT_GE(truth.size(), 10u);

  JoinStats stats;
  auto pairs =
      SelfSimilarityJoin(data, dist, AdversarialJoinOptions(0.8), &stats);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(stats.pairs, pairs->size());

  std::set<std::pair<VectorId, VectorId>> got;
  for (const auto& p : *pairs) {
    EXPECT_LT(p.left, p.right);
    EXPECT_GE(p.similarity, 0.8);
    got.insert({p.left, p.right});
  }
  // No false positives relative to the exact join.
  std::set<std::pair<VectorId, VectorId>> expect;
  for (const auto& p : truth) expect.insert({p.left, p.right});
  for (const auto& p : got) EXPECT_TRUE(expect.count(p));
  // Recall at least 80%.
  size_t hit = 0;
  for (const auto& p : expect) hit += got.count(p);
  EXPECT_GE(hit * 10, expect.size() * 8);
}

TEST(SimilarityJoinTest, RSJoinIdsReferToCorrectSides) {
  auto dist = UniformProbabilities(1000, 0.04).value();
  Rng rng(2);
  Dataset right = GenerateDataset(dist, 80, &rng);
  Dataset left;
  // Left = copies of right's first 5 vectors.
  for (VectorId id = 0; id < 5; ++id) left.Add(right.GetVector(id));
  ASSERT_TRUE(left.SetDimension(1000).ok());

  auto pairs =
      SimilarityJoin(left, right, dist, AdversarialJoinOptions(0.9));
  ASSERT_TRUE(pairs.ok());
  // Each left vector should match its twin on the right.
  std::set<std::pair<VectorId, VectorId>> got;
  for (const auto& p : *pairs) got.insert({p.left, p.right});
  size_t twins = 0;
  for (VectorId id = 0; id < 5; ++id) {
    twins += got.count({id, id});
  }
  EXPECT_GE(twins, 4u);
}

TEST(SimilarityJoinTest, ThresholdDefaultsToIndexVerify) {
  auto dist = UniformProbabilities(500, 0.05).value();
  Rng rng(3);
  Dataset data = GenerateDataset(dist, 60, &rng);
  JoinOptions options = AdversarialJoinOptions(0.9);
  options.threshold = -1.0;  // derive from index
  auto pairs = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(pairs.ok());
  for (const auto& p : *pairs) EXPECT_GE(p.similarity, 0.9);
}

TEST(SimilarityJoinTest, PropagatesBuildErrors) {
  auto dist = UniformProbabilities(10, 0.2).value();
  Dataset tiny;
  tiny.Add(SparseVector::Of({1}));
  JoinOptions options = AdversarialJoinOptions(0.5);
  auto pairs = SelfSimilarityJoin(tiny, dist, options);
  EXPECT_FALSE(pairs.ok());
  EXPECT_TRUE(pairs.status().IsInvalidArgument());
}

TEST(SimilarityJoinTest, StatsPopulated) {
  auto dist = UniformProbabilities(800, 0.05).value();
  Rng rng(4);
  Dataset data = GenerateDataset(dist, 100, &rng);
  JoinStats stats;
  auto pairs =
      SelfSimilarityJoin(data, dist, AdversarialJoinOptions(0.9), &stats);
  ASSERT_TRUE(pairs.ok());
  EXPECT_GE(stats.build_seconds, 0.0);
  EXPECT_GE(stats.probe_seconds, 0.0);
  EXPECT_GT(stats.candidates + stats.verifications, 0u);
}

TEST(SimilarityJoinTest, OnlineChurnedJoinMatchesOfflineAndCompacts) {
  auto dist = UniformProbabilities(1500, 0.03).value();
  Rng rng(6);
  Dataset data;
  for (int i = 0; i < 100; ++i) data.Add(dist.Sample(&rng));
  for (int i = 0; i < 8; ++i) data.Add(data.GetVector(i * 5));  // dups
  ASSERT_TRUE(data.SetDimension(1500).ok());

  JoinOptions offline = AdversarialJoinOptions(0.8);
  auto expected = SelfSimilarityJoin(data, dist, offline);
  ASSERT_TRUE(expected.ok());

  // Online build side, driven inline (no thread, so every maintenance
  // pass is deterministic) with enough net no-op churn to cross the
  // aggressive dead-ratio: the service must do real compaction work,
  // and the pair output must be identical to the offline join.
  JoinOptions online = AdversarialJoinOptions(0.8);
  online.online = true;
  online.maintenance_thread = false;
  online.maintenance.dead_ratio = 0.05;
  online.churn = data.size() / 2;
  JoinStats stats;
  auto got = SelfSimilarityJoin(data, dist, online, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(stats.compactions, 0u);

  ASSERT_EQ(got->size(), expected->size());
  for (size_t i = 0; i < got->size(); ++i) {
    EXPECT_EQ((*got)[i].left, (*expected)[i].left);
    EXPECT_EQ((*got)[i].right, (*expected)[i].right);
    EXPECT_DOUBLE_EQ((*got)[i].similarity, (*expected)[i].similarity);
  }
}

TEST(SimilarityJoinTest, OutputSortedByLeftThenRight) {
  auto dist = UniformProbabilities(600, 0.05).value();
  Rng rng(5);
  Dataset data;
  for (int i = 0; i < 50; ++i) data.Add(dist.Sample(&rng));
  for (int i = 0; i < 8; ++i) data.Add(data.GetVector(i));  // dups
  ASSERT_TRUE(data.SetDimension(600).ok());
  auto pairs = SelfSimilarityJoin(data, dist, AdversarialJoinOptions(0.9));
  ASSERT_TRUE(pairs.ok());
  for (size_t i = 1; i < pairs->size(); ++i) {
    const auto& a = (*pairs)[i - 1];
    const auto& b = (*pairs)[i];
    EXPECT_TRUE(a.left < b.left || (a.left == b.left && a.right < b.right));
  }
}

}  // namespace
}  // namespace skewsearch
