#include "baselines/prefix_filter.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"
#include "sim/brute_force.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(PrefixFilterTest, BuildValidates) {
  PrefixFilterIndex index;
  PrefixFilterOptions options;
  EXPECT_TRUE(index.Build(nullptr, options).IsInvalidArgument());
  Dataset data;
  data.Add(SparseVector::Of({1}));
  options.b1 = 0.0;
  EXPECT_TRUE(index.Build(&data, options).IsInvalidArgument());
  options.b1 = 1.5;
  EXPECT_TRUE(index.Build(&data, options).IsInvalidArgument());
}

TEST(PrefixFilterTest, RanksOrderedByFrequency) {
  Dataset data;
  data.Add(SparseVector::Of({0, 1}));
  data.Add(SparseVector::Of({0, 1}));
  data.Add(SparseVector::Of({0, 2}));
  // counts: 0 -> 3, 1 -> 2, 2 -> 1.
  PrefixFilterIndex index;
  PrefixFilterOptions options;
  options.b1 = 0.5;
  ASSERT_TRUE(index.Build(&data, options).ok());
  EXPECT_LT(index.TokenRank(2), index.TokenRank(1));
  EXPECT_LT(index.TokenRank(1), index.TokenRank(0));
}

TEST(PrefixFilterTest, FindsExactDuplicate) {
  auto dist = UniformProbabilities(500, 0.05).value();
  Rng rng(1);
  Dataset data = GenerateDataset(dist, 150, &rng);
  PrefixFilterIndex index;
  PrefixFilterOptions options;
  options.b1 = 0.9;
  ASSERT_TRUE(index.Build(&data, options).ok());
  for (VectorId id = 0; id < 20; ++id) {
    if (data.SizeOf(id) == 0) continue;
    auto hit = index.Query(data.Get(id));
    ASSERT_TRUE(hit.has_value()) << "id " << id;
    EXPECT_DOUBLE_EQ(hit->similarity, 1.0);
  }
}

TEST(PrefixFilterTest, ExactlyMatchesBruteForce) {
  // The defining property: prefix filtering is exact. Over random skewed
  // datasets and thresholds, QueryAll == brute force above threshold.
  Rng rng(2);
  for (double b1 : {0.3, 0.5, 0.7, 0.9}) {
    auto dist = TwoBlockProbabilities(30, 0.3, 400, 0.02).value();
    Dataset data = GenerateDataset(dist, 120, &rng);
    PrefixFilterIndex index;
    PrefixFilterOptions options;
    options.b1 = b1;
    ASSERT_TRUE(index.Build(&data, options).ok());
    BruteForceSearcher brute(&data);
    for (int t = 0; t < 25; ++t) {
      SparseVector q = dist.Sample(&rng);
      auto got = index.QueryAll(q.span());
      auto expect = brute.AboveThreshold(q.span(), b1);
      ASSERT_EQ(got.size(), expect.size())
          << "b1 = " << b1 << " trial " << t;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expect[i].id);
        EXPECT_DOUBLE_EQ(got[i].similarity, expect[i].similarity);
      }
    }
  }
}

TEST(PrefixFilterTest, SizeFilterProvablyCorrect) {
  // Candidates outside [b1|q|, |q|/b1] can never qualify; ensure none are
  // returned and that the filter does not drop qualifying sets.
  Dataset data;
  data.Add(SparseVector::Of({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));  // |x|=10
  data.Add(SparseVector::Of({1, 2}));                           // |x|=2
  PrefixFilterIndex index;
  PrefixFilterOptions options;
  options.b1 = 0.5;
  ASSERT_TRUE(index.Build(&data, options).ok());
  SparseVector q = SparseVector::Of({1, 2, 3, 4});  // |q| = 4
  // id0: B = 4/10 < 0.5 (also outside size range [2, 8]);
  // id1: B = 2/4 = 0.5 qualifies.
  auto hits = index.QueryAll(q.span());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1u);
}

TEST(PrefixFilterTest, RareTokensPruneCandidates) {
  // With heavy skew, prefixes consist of rare tokens, so candidate counts
  // stay far below n (the heuristic's selling point).
  auto dist = TwoBlockProbabilities(20, 0.4, 5000, 0.002).value();
  Rng rng(3);
  Dataset data = GenerateDataset(dist, 500, &rng);
  PrefixFilterIndex index;
  PrefixFilterOptions options;
  options.b1 = 0.6;
  ASSERT_TRUE(index.Build(&data, options).ok());
  QueryStats stats;
  SparseVector q = dist.Sample(&rng);
  index.QueryAll(q.span(), &stats);
  EXPECT_LT(stats.candidates, data.size());
}

TEST(PrefixFilterTest, EmptyQueryReturnsNothing) {
  Dataset data;
  data.Add(SparseVector::Of({1}));
  PrefixFilterIndex index;
  PrefixFilterOptions options;
  ASSERT_TRUE(index.Build(&data, options).ok());
  EXPECT_FALSE(index.Query({}).has_value());
}

TEST(PrefixFilterTest, SelfJoinMatchesBruteForce) {
  Rng rng(9);
  for (double b1 : {0.4, 0.7}) {
    auto dist = TwoBlockProbabilities(25, 0.3, 600, 0.02).value();
    Dataset data = GenerateDataset(dist, 90, &rng);
    // Plant a few duplicates so the join is non-trivial.
    for (VectorId id = 0; id < 6; ++id) data.Add(data.GetVector(id * 10));
    ASSERT_TRUE(data.SetDimension(625).ok());

    PrefixFilterIndex index;
    PrefixFilterOptions options;
    options.b1 = b1;
    ASSERT_TRUE(index.Build(&data, options).ok());
    QueryStats stats;
    auto pairs = index.SelfJoin(&stats);

    BruteForceSearcher brute(&data);
    auto expect = brute.SelfJoinAbove(b1);
    ASSERT_EQ(pairs.size(), expect.size()) << "b1 = " << b1;
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(pairs[i].left, expect[i].left);
      EXPECT_EQ(pairs[i].right, expect[i].right);
      EXPECT_DOUBLE_EQ(pairs[i].similarity, expect[i].similarity);
    }
    EXPECT_GT(stats.candidates, 0u);
  }
}

TEST(PrefixFilterTest, SelfJoinOnEmptyIndex) {
  PrefixFilterIndex index;
  EXPECT_TRUE(index.SelfJoin().empty());
}

TEST(PrefixFilterTest, ThresholdOneMeansExactMatchOnly) {
  Dataset data;
  data.Add(SparseVector::Of({1, 2, 3}));
  data.Add(SparseVector::Of({1, 2, 4}));
  PrefixFilterIndex index;
  PrefixFilterOptions options;
  options.b1 = 1.0;
  ASSERT_TRUE(index.Build(&data, options).ok());
  SparseVector q = SparseVector::Of({1, 2, 3});
  auto hits = index.QueryAll(q.span());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
}

}  // namespace
}  // namespace skewsearch
