#include "stats/independence.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(IndependenceTest, Validates) {
  Dataset data;
  Rng rng(1);
  EXPECT_FALSE(EstimateIndependenceRatio(data, 2, 100, &rng).ok());
  data.Add(SparseVector::Of({1}));
  EXPECT_FALSE(EstimateIndependenceRatio(data, 0, 100, &rng).ok());
  EXPECT_FALSE(EstimateIndependenceRatio(data, 2, 0, &rng).ok());
  EXPECT_FALSE(EstimateIndependenceRatio(data, 2, 100, nullptr).ok());
  EXPECT_FALSE(EstimateIndependenceRatio(data, 100, 100, &rng).ok());
}

TEST(IndependenceTest, IndependentDataNearOne) {
  // Genuinely independent bits: the ratio should concentrate near 1.
  auto dist = UniformProbabilities(60, 0.2).value();
  Rng rng(2);
  Dataset data = GenerateDataset(dist, 8000, &rng);
  auto est = EstimateIndependenceRatio(data, 2, 4000, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->ratio, 1.0, 0.1);
  auto est3 = EstimateIndependenceRatio(data, 3, 4000, &rng);
  ASSERT_TRUE(est3.ok());
  EXPECT_NEAR(est3->ratio, 1.0, 0.25);
}

TEST(IndependenceTest, TopicDataAboveOne) {
  // Planted co-occurrence must push the ratio well above 1, and the
  // |I| = 3 ratio above the |I| = 2 ratio (matching Table 1's pattern).
  // Rare-but-co-occurring items give the strongest lift (see SPOTIFY):
  // marginal ~ p_bg + act*incl stays small while the pair joint is
  // act*incl^2.
  auto background = UniformProbabilities(400, 0.01).value();
  TopicModelOptions options;
  options.num_topics = 8;
  options.topic_size = 20;
  options.activation_prob = 0.02;
  options.include_prob = 0.9;
  Rng rng(3);
  TopicModelGenerator gen(background, options, &rng);
  Dataset data = gen.Generate(4000, &rng);
  auto r2 = EstimateIndependenceRatio(data, 2, 20000, &rng);
  auto r3 = EstimateIndependenceRatio(data, 3, 20000, &rng);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_GT(r2->ratio, 1.4);
  EXPECT_GT(r3->ratio, r2->ratio);
}

TEST(IndependenceTest, FieldsConsistent) {
  auto dist = UniformProbabilities(40, 0.3).value();
  Rng rng(4);
  Dataset data = GenerateDataset(dist, 2000, &rng);
  auto est = EstimateIndependenceRatio(data, 2, 1000, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->samples, 1000u);
  EXPECT_GT(est->expected_product, 0.0);
  EXPECT_NEAR(est->ratio,
              est->expected_observed / est->expected_product, 1e-12);
}

TEST(ExactIndependenceTest, Validates) {
  Dataset data;
  EXPECT_FALSE(ExactIndependenceRatio(data, 2).ok());
  data.Add(SparseVector::Of({1, 2, 3, 4}));
  EXPECT_FALSE(ExactIndependenceRatio(data, 0).ok());
  EXPECT_FALSE(ExactIndependenceRatio(data, 4).ok());
  EXPECT_TRUE(ExactIndependenceRatio(data, 3).ok());
}

TEST(ExactIndependenceTest, HandComputedCase) {
  // Two vectors over d = 3: {0,1} and {0,1,2}.
  //   numerator(|I|=2) = [C(2,2) + C(3,2)] / (n * C(3,2)) = 4 / 6.
  //   p = (1, 1, 0.5); e2 = 1*1 + 1*0.5 + 1*0.5 = 2; denom = 2/3.
  //   ratio = (4/6) / (2/3) = 1.
  Dataset data;
  data.Add(SparseVector::Of({0, 1}));
  data.Add(SparseVector::Of({0, 1, 2}));
  auto est = ExactIndependenceRatio(data, 2);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->expected_observed, 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(est->expected_product, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(est->ratio, 1.0, 1e-12);
}

TEST(ExactIndependenceTest, IndependentDataNearOne) {
  auto dist = UniformProbabilities(120, 0.15).value();
  Rng rng(11);
  Dataset data = GenerateDataset(dist, 6000, &rng);
  for (size_t k : {1u, 2u, 3u}) {
    auto est = ExactIndependenceRatio(data, k);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(est->ratio, 1.0, 0.05) << "|I| = " << k;
  }
}

TEST(ExactIndependenceTest, AgreesWithMonteCarlo) {
  // On a small, dense universe the sampled estimator converges to the
  // exact value.
  auto dist = UniformProbabilities(30, 0.3).value();
  Rng rng(12);
  Dataset data = GenerateDataset(dist, 1500, &rng);
  auto exact = ExactIndependenceRatio(data, 2);
  auto sampled = EstimateIndependenceRatio(data, 2, 40000, &rng);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sampled.ok());
  EXPECT_NEAR(sampled->ratio, exact->ratio, 0.1);
}

TEST(ExactIndependenceTest, HeavyTailTopicsInflateRatios) {
  // The Table 1 mechanism: heavy-tailed topic activation produces
  // ratio3 >> ratio2 >> 1.
  auto background = UniformProbabilities(2000, 0.005).value();
  TopicModelOptions options;
  options.num_topics = 32;
  options.topic_size = 24;
  options.include_prob = 0.6;
  options.heavy_tail_exponent = 1.4;
  Rng rng(13);
  TopicModelGenerator gen(background, options, &rng);
  Dataset data = gen.Generate(4000, &rng);
  double r2 = ExactIndependenceRatio(data, 2)->ratio;
  double r3 = ExactIndependenceRatio(data, 3)->ratio;
  EXPECT_GT(r2, 1.5);
  EXPECT_GT(r3, r2 * 1.5);
}

TEST(IndependenceTest, SingleItemSubsetsRatioIsOne) {
  // |I| = 1: numerator and denominator are both E[p_j] exactly.
  auto dist = UniformProbabilities(50, 0.25).value();
  Rng rng(5);
  Dataset data = GenerateDataset(dist, 1000, &rng);
  auto est = EstimateIndependenceRatio(data, 1, 2000, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->ratio, 1.0, 1e-9);
}

}  // namespace
}  // namespace skewsearch
