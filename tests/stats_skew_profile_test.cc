#include "stats/skew_profile.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(SkewProfileTest, CountsAndSorts) {
  Dataset data;
  data.Add(SparseVector::Of({0, 1}));
  data.Add(SparseVector::Of({0}));
  data.Add(SparseVector::Of({0, 2}));
  data.Add(SparseVector::Of({0}));
  SkewProfile profile = ComputeSkewProfile(data);
  EXPECT_EQ(profile.n, 4u);
  EXPECT_EQ(profile.d, 3u);
  ASSERT_EQ(profile.frequencies.size(), 3u);
  EXPECT_DOUBLE_EQ(profile.frequencies[0], 1.0);    // item 0
  EXPECT_DOUBLE_EQ(profile.frequencies[1], 0.25);   // item 1 or 2
  EXPECT_DOUBLE_EQ(profile.frequencies[2], 0.25);
}

TEST(SkewProfileTest, DropsAbsentItems) {
  Dataset data;
  data.Add(SparseVector::Of({5}));
  ASSERT_TRUE(data.SetDimension(100).ok());
  SkewProfile profile = ComputeSkewProfile(data);
  EXPECT_EQ(profile.frequencies.size(), 1u);
  EXPECT_EQ(profile.d, 100u);
}

TEST(SkewProfileTest, LinearSeriesShape) {
  auto dist = ZipfProbabilities(2000, 1.0, 0.5).value();
  Rng rng(1);
  Dataset data = GenerateDataset(dist, 500, &rng);
  SkewProfile profile = ComputeSkewProfile(data);
  auto series = LinearAxisSeries(profile, 50);
  ASSERT_GT(series.size(), 10u);
  // x in (0, 1]; y decreasing-ish in [<=1, >=0 up to noise]; first point's
  // y must be the largest (frequencies sorted).
  for (const auto& pt : series) {
    EXPECT_GT(pt.x, 0.0);
    EXPECT_LE(pt.x, 1.0);
    EXPECT_LE(pt.y, series.front().y + 1e-12);
  }
}

TEST(SkewProfileTest, LogSeriesMonotoneX) {
  auto dist = ZipfProbabilities(2000, 1.0, 0.5).value();
  Rng rng(2);
  Dataset data = GenerateDataset(dist, 500, &rng);
  SkewProfile profile = ComputeSkewProfile(data);
  auto series = LogAxisSeries(profile, 40);
  ASSERT_GT(series.size(), 5u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].x, series[i - 1].x);
    EXPECT_LE(series[i].y, series[i - 1].y + 1e-9);  // freq sorted desc
  }
}

TEST(SkewProfileTest, EmptyDatasetProducesEmptySeries) {
  Dataset data;
  SkewProfile profile = ComputeSkewProfile(data);
  EXPECT_TRUE(LinearAxisSeries(profile, 10).empty());
  EXPECT_TRUE(LogAxisSeries(profile, 10).empty());
}

TEST(SkewProfileTest, ZipfExponentRecovered) {
  // A generated Zipf(s=1) dataset's empirical profile should fit an
  // exponent near 1 (sampling noise tolerated in the tail).
  auto dist = ZipfProbabilities(300, 1.0, 0.5).value();
  Rng rng(3);
  Dataset data = GenerateDataset(dist, 20000, &rng);
  SkewProfile profile = ComputeSkewProfile(data);
  double s = FitZipfExponent(profile);
  EXPECT_NEAR(s, 1.0, 0.25);
}

TEST(SkewProfileTest, UniformHasNearZeroExponent) {
  auto dist = UniformProbabilities(200, 0.2).value();
  Rng rng(4);
  Dataset data = GenerateDataset(dist, 5000, &rng);
  double s = FitZipfExponent(ComputeSkewProfile(data));
  EXPECT_NEAR(s, 0.0, 0.05);
}

}  // namespace
}  // namespace skewsearch
