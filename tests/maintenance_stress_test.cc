// Maintenance stress: the maintenance thread (background compaction +
// drift rebuild) racing readers, inserters and removers on one
// DynamicIndex. Designed to run under TSan
// (-DSKEWSEARCH_SANITIZE=thread): every epoch pin, snapshot publish and
// reclamation edge is exercised while rebuilds swap whole shard tables
// and parameter editions under live traffic.
//
// During the run, readers assert the two properties that must hold even
// across an edition change: (1) snapshot isolation — two identical
// queries against one pinned snapshot return byte-identical results no
// matter what maintenance does in between — and (2) no phantoms — a
// query never returns an id whose Remove() completed before the query
// started. Findability assertions (which depend on the filter family in
// effect) run after the index quiesces, against the final edition.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic_index.h"
#include "data/generators.h"
#include "maintenance/service.h"
#include "util/random.h"

namespace skewsearch {
namespace {

constexpr size_t kBaseSize = 300;
constexpr size_t kNumInserts = 420;  // pushes live past the 2x drift factor
constexpr size_t kNumRemoves = 100;  // base ids [0, kNumRemoves)
constexpr int kNumReaders = 3;

class MaintenanceStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dist_ = TwoBlockProbabilities(150, 0.25, 8000, 0.005).value();
    Rng rng(81);
    data_ = GenerateDataset(dist_, kBaseSize, &rng);

    DynamicIndexOptions options;
    options.index.mode = IndexMode::kCorrelated;
    options.index.alpha = 0.7;
    options.index.repetitions = 0;  // derived, so rebuilds re-provision L
    options.index.seed = 818;
    options.num_shards = 4;
    options.compact_dead_fraction = 0.20;
    ASSERT_TRUE(index_.Build(&data_, &dist_, options).ok());

    Rng vrng(82);
    while (insert_stream_.size() < kNumInserts) {
      SparseVector v = dist_.Sample(&vrng);
      if (!v.span().empty()) insert_stream_.push_back(std::move(v));
    }
  }

  bool HasPathsUnderCurrentFamily(std::span<const ItemId> items) {
    std::vector<uint64_t> keys;
    for (int rep = 0; rep < index_.repetitions(); ++rep) {
      index_.family().ComputeFilters(items, static_cast<uint32_t>(rep),
                                     &keys);
    }
    return !keys.empty();
  }

  ProductDistribution dist_;
  Dataset data_;
  DynamicIndex index_;
  std::vector<SparseVector> insert_stream_;
};

TEST_F(MaintenanceStressTest, MaintenanceThreadRacesMixedTraffic) {
  MaintenanceService service;
  MaintenanceOptions maintenance;
  maintenance.poll_interval_ms = 1;
  maintenance.drift_factor = 2.0;
  maintenance.min_rebuild_n = 2;
  ASSERT_TRUE(service.Attach(&index_, maintenance).ok());
  ASSERT_TRUE(service.Start().ok());

  // removed_rank[id] = position of base id `id` in the removal stream,
  // SIZE_MAX when never removed (read-only during the run).
  std::vector<size_t> removed_rank(kBaseSize, static_cast<size_t>(-1));
  for (size_t k = 0; k < kNumRemoves; ++k) removed_rank[k] = k;

  std::atomic<size_t> removed_upto{0};
  std::atomic<bool> writers_done{false};
  std::atomic<int> violations{0};
  std::vector<VectorId> inserted_ids(kNumInserts, 0);

  std::thread inserter([&] {
    for (size_t i = 0; i < kNumInserts; ++i) {
      auto id = index_.Insert(insert_stream_[i].span());
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      inserted_ids[i] = *id;
    }
  });
  std::thread remover([&] {
    for (size_t k = 0; k < kNumRemoves; ++k) {
      Status s = index_.Remove(static_cast<VectorId>(k));
      ASSERT_TRUE(s.ok()) << "remove " << k << ": " << s.ToString();
      removed_upto.store(k + 1, std::memory_order_release);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kNumReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(810 + static_cast<uint64_t>(r));
      size_t iterations = 0;
      while (!writers_done.load(std::memory_order_acquire) ||
             iterations < 40) {
        ++iterations;
        VectorId probe = static_cast<VectorId>(
            kNumRemoves + rng.NextBounded(kBaseSize - kNumRemoves));
        // (1) Snapshot isolation: one pinned snapshot answers the same
        // query identically even while compaction/rebuild proceed.
        DynamicIndex::Snapshot snapshot = index_.GetSnapshot();
        auto first = snapshot.QueryAll(data_.Get(probe), 0.0);
        auto second = snapshot.QueryAll(data_.Get(probe), 0.0);
        if (first.size() != second.size()) {
          violations.fetch_add(1);
          ADD_FAILURE() << "snapshot result drifted for probe " << probe;
        } else {
          for (size_t i = 0; i < first.size(); ++i) {
            if (first[i].id != second[i].id ||
                first[i].similarity != second[i].similarity) {
              violations.fetch_add(1);
              ADD_FAILURE() << "snapshot result drifted for probe "
                            << probe << " at entry " << i;
              break;
            }
          }
        }
        // (2) No phantoms: nothing removed before this query started
        // may come back, from the live view.
        const size_t removed_snapshot =
            removed_upto.load(std::memory_order_acquire);
        auto hit = index_.Query(data_.Get(probe));
        if (hit.has_value() && hit->id < kBaseSize &&
            removed_rank[hit->id] < removed_snapshot) {
          violations.fetch_add(1);
          ADD_FAILURE() << "phantom: id " << hit->id << " removed at rank "
                        << removed_rank[hit->id] << " < "
                        << removed_snapshot;
        }
      }
    });
  }

  inserter.join();
  remover.join();
  writers_done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  service.Stop();
  ASSERT_TRUE(service.RunOnce().ok());  // deterministic final pass
  service.Detach();
  EXPECT_TRUE(service.last_error().ok()) << service.last_error().ToString();
  EXPECT_EQ(violations.load(), 0);

  // The drift must actually have been exercised: live count ended at
  // kBaseSize + kNumInserts - kNumRemoves = 620 vs. derived 300.
  EXPECT_GT(index_.num_rebuilds(), 0u) << "drift rebuild never fired";
  // The rebuild re-derives for whatever the live count was when drift
  // tripped, which is strictly past the 2x factor.
  EXPECT_GT(index_.derived_n(), 2 * kBaseSize);
  EXPECT_LE(index_.derived_n(), kBaseSize + kNumInserts);
  EXPECT_GT(index_.edition_version(), 0u);

  // Quiesced: full accounting and per-id postconditions under the
  // *final* edition.
  EXPECT_EQ(index_.size(), kBaseSize + kNumInserts - kNumRemoves);
  for (size_t k = 0; k < kNumRemoves; ++k) {
    EXPECT_FALSE(index_.IsLive(static_cast<VectorId>(k)));
  }
  for (size_t k = 0; k < kNumRemoves; k += 7) {
    auto all = index_.QueryAll(data_.Get(static_cast<VectorId>(k)), 0.0);
    for (const Match& m : all) {
      EXPECT_NE(m.id, static_cast<VectorId>(k)) << "phantom after quiesce";
    }
  }
  size_t checked = 0;
  for (size_t i = 0; i < kNumInserts; i += 5) {
    EXPECT_TRUE(index_.IsLive(inserted_ids[i])) << i;
    if (!HasPathsUnderCurrentFamily(insert_stream_[i].span())) continue;
    ++checked;
    auto all = index_.QueryAll(insert_stream_[i].span(), 0.999);
    bool found = false;
    for (const Match& m : all) found = found || m.id == inserted_ids[i];
    EXPECT_TRUE(found) << "inserted vector " << i
                       << " lost across the rebuild";
  }
  EXPECT_GT(checked, 0u);

  // Quiesced + detached: every retired snapshot is reclaimable.
  index_.epochs().Collect();
  EXPECT_EQ(index_.epochs().limbo_size(), 0u);
}

// BatchQuery pins one epoch for the whole batch: run batches while the
// maintenance thread churns, and verify each batch is internally
// consistent with a serial pass over the same snapshot... which is
// exactly what the engine promises: identical results for any thread
// count. Also a TSan workout for the pool + epoch interaction.
TEST_F(MaintenanceStressTest, BatchQueryRacesMaintenance) {
  MaintenanceService service;
  MaintenanceOptions maintenance;
  maintenance.poll_interval_ms = 1;
  maintenance.drift_factor = 2.0;
  maintenance.min_rebuild_n = 2;
  ASSERT_TRUE(service.Attach(&index_, maintenance).ok());
  ASSERT_TRUE(service.Start().ok());

  Dataset queries;
  for (size_t i = 0; i < 60; ++i) {
    queries.Add(data_.Get(static_cast<VectorId>(
        kNumRemoves + i % (kBaseSize - kNumRemoves))));
  }

  std::atomic<bool> done{false};
  std::thread churn([&] {
    size_t i = 0;
    while (!done.load(std::memory_order_acquire) && i < kNumInserts) {
      ASSERT_TRUE(index_.Insert(insert_stream_[i].span()).ok());
      if (i < kNumRemoves) {
        ASSERT_TRUE(index_.Remove(static_cast<VectorId>(i)).ok());
      }
      ++i;
    }
  });

  for (int round = 0; round < 6; ++round) {
    auto results = index_.BatchQuery(queries, /*threads=*/4);
    ASSERT_EQ(results.size(), queries.size());
  }
  done.store(true, std::memory_order_release);
  churn.join();
  service.Stop();
  ASSERT_TRUE(service.RunOnce().ok());
  service.Detach();
  EXPECT_TRUE(service.last_error().ok()) << service.last_error().ToString();

  // Quiesced: a parallel batch equals a serial one positionally.
  auto serial = index_.BatchQuery(queries, 1);
  auto parallel = index_.BatchQuery(queries, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].has_value(), parallel[i].has_value()) << i;
    if (serial[i]) {
      EXPECT_EQ(serial[i]->id, parallel[i]->id) << i;
      EXPECT_EQ(serial[i]->similarity, parallel[i]->similarity) << i;
    }
  }
}

}  // namespace
}  // namespace skewsearch
