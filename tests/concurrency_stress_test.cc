// Concurrency stress: hammer one DynamicIndex (the online sharded index)
// with mixed reader / inserter / remover threads and assert linearizable
// visibility — no lost results (anything fully inserted before a query
// started is findable; stable base vectors never disappear) and no
// phantoms (anything fully removed before a query started is never
// returned). Designed to run under TSan (-DSKEWSEARCH_SANITIZE=thread).
//
// Publication protocol used by the assertions: each writer thread
// performs its mutations in a fixed order and publishes progress through
// an atomic counter with release semantics after each completed call;
// readers acquire the counter *before* issuing a query, so everything at
// indices below the snapshot is a completed-before mutation the query
// must respect.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/dynamic_index.h"
#include "data/generators.h"
#include "maintenance/service.h"
#include "util/random.h"

namespace skewsearch {
namespace {

constexpr size_t kBaseSize = 400;
constexpr size_t kNumInserts = 200;
constexpr size_t kNumRemoves = 120;  // base ids [0, kNumRemoves)
constexpr int kNumReaders = 3;

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dist_ = TwoBlockProbabilities(150, 0.25, 8000, 0.005).value();
    Rng rng(61);
    data_ = GenerateDataset(dist_, kBaseSize, &rng);

    DynamicIndexOptions options;
    options.index.mode = IndexMode::kCorrelated;
    options.index.alpha = 0.7;
    options.index.repetitions = 6;
    options.index.seed = 616;
    options.num_shards = 4;
    options.compact_dead_fraction = 0.25;
    ASSERT_TRUE(index_.Build(&data_, &dist_, options).ok());

    // Stable probes: base vectors that are never removed and whose
    // exact-duplicate query finds a match on the quiesced index (a
    // vector the family emits no paths for is legitimately unfindable).
    for (VectorId id = kNumRemoves; id < kBaseSize; ++id) {
      if (index_.Query(data_.Get(id)).has_value()) {
        stable_probes_.push_back(id);
      }
    }
    ASSERT_GT(stable_probes_.size(), kBaseSize / 2);

    // Insert stream: non-empty vectors with at least one filter path.
    Rng vrng(62);
    while (insert_stream_.size() < kNumInserts) {
      SparseVector v = dist_.Sample(&vrng);
      if (v.span().empty()) continue;
      std::vector<uint64_t> keys;
      for (int rep = 0; rep < index_.repetitions(); ++rep) {
        index_.family().ComputeFilters(v.span(),
                                       static_cast<uint32_t>(rep), &keys);
      }
      if (!keys.empty()) insert_stream_.push_back(std::move(v));
    }
  }

  ProductDistribution dist_;
  Dataset data_;
  DynamicIndex index_;
  std::vector<VectorId> stable_probes_;
  std::vector<SparseVector> insert_stream_;
};

TEST_F(ConcurrencyStressTest, MixedReadersAndWritersNoLostNoPhantom) {
  std::atomic<size_t> inserted_upto{0};
  std::atomic<size_t> removed_upto{0};
  std::atomic<bool> writers_done{false};
  std::atomic<int> violations{0};
  std::vector<VectorId> inserted_ids(kNumInserts, 0);

  // removed_rank[id] = position of base id `id` in the removal stream,
  // SIZE_MAX when it is never removed (read-only during the run).
  std::vector<size_t> removed_rank(kBaseSize, static_cast<size_t>(-1));
  for (size_t k = 0; k < kNumRemoves; ++k) removed_rank[k] = k;

  std::thread inserter([&] {
    for (size_t i = 0; i < kNumInserts; ++i) {
      auto id = index_.Insert(insert_stream_[i].span());
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      inserted_ids[i] = *id;
      inserted_upto.store(i + 1, std::memory_order_release);
    }
  });
  std::thread remover([&] {
    for (size_t k = 0; k < kNumRemoves; ++k) {
      Status s = index_.Remove(static_cast<VectorId>(k));
      ASSERT_TRUE(s.ok()) << "remove " << k << ": " << s.ToString();
      removed_upto.store(k + 1, std::memory_order_release);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kNumReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(700 + static_cast<uint64_t>(r));
      size_t iterations = 0;
      while (!writers_done.load(std::memory_order_acquire) ||
             iterations < 50) {
        ++iterations;
        // (1) No lost results: a stable base vector is always findable.
        VectorId probe = stable_probes_[static_cast<size_t>(
            rng.NextBounded(stable_probes_.size()))];
        const size_t removed_snapshot =
            removed_upto.load(std::memory_order_acquire);
        auto hit = index_.Query(data_.Get(probe));
        if (!hit.has_value()) {
          violations.fetch_add(1);
          ADD_FAILURE() << "lost result: stable probe " << probe
                        << " vanished";
          continue;
        }
        // (2) No phantoms: the returned id must not be a vector whose
        // Remove() completed before this query started.
        if (hit->id < kBaseSize &&
            removed_rank[hit->id] < removed_snapshot) {
          violations.fetch_add(1);
          ADD_FAILURE() << "phantom: query returned id " << hit->id
                        << " removed at rank " << removed_rank[hit->id]
                        << " < " << removed_snapshot;
        }
        // (3) No lost inserts: a vector whose Insert() completed before
        // this query started must be findable via its exact duplicate.
        const size_t inserted_snapshot =
            inserted_upto.load(std::memory_order_acquire);
        if (inserted_snapshot > 0) {
          size_t j = static_cast<size_t>(
              rng.NextBounded(inserted_snapshot));
          auto inserted_hit = index_.Query(insert_stream_[j].span());
          if (!inserted_hit.has_value()) {
            violations.fetch_add(1);
            ADD_FAILURE() << "lost result: inserted vector " << j
                          << " not findable";
          }
        }
      }
    });
  }

  inserter.join();
  remover.join();
  writers_done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(violations.load(), 0);

  // Quiesced: full accounting and per-id postconditions.
  EXPECT_EQ(index_.size(), kBaseSize + kNumInserts - kNumRemoves);
  for (size_t k = 0; k < kNumRemoves; ++k) {
    EXPECT_FALSE(index_.IsLive(static_cast<VectorId>(k)));
  }
  for (size_t k = 0; k < kNumRemoves; k += 7) {
    auto all = index_.QueryAll(data_.Get(static_cast<VectorId>(k)), 0.0);
    for (const Match& m : all) {
      EXPECT_NE(m.id, static_cast<VectorId>(k)) << "phantom after quiesce";
    }
  }
  for (size_t i = 0; i < kNumInserts; i += 5) {
    EXPECT_TRUE(index_.IsLive(inserted_ids[i])) << i;
    auto all = index_.QueryAll(insert_stream_[i].span(), 0.999);
    bool found = false;
    for (const Match& m : all) found = found || m.id == inserted_ids[i];
    EXPECT_TRUE(found) << "inserted vector " << i << " lost after quiesce";
  }
}

// Concurrent inserters racing into the same shards; every insert must be
// visible afterwards and ids must be unique.
TEST_F(ConcurrencyStressTest, ParallelInsertersAllVisible) {
  constexpr int kWriters = 4;
  std::vector<std::vector<VectorId>> ids(kWriters);
  std::atomic<size_t> cursor{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = cursor.fetch_add(1); i < insert_stream_.size();
           i = cursor.fetch_add(1)) {
        auto id = index_.Insert(insert_stream_[i].span());
        ASSERT_TRUE(id.ok());
        ids[static_cast<size_t>(w)].push_back(*id);
      }
    });
  }
  for (auto& writer : writers) writer.join();

  std::vector<VectorId> all_ids;
  for (const auto& chunk : ids) {
    all_ids.insert(all_ids.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(all_ids.size(), insert_stream_.size());
  std::sort(all_ids.begin(), all_ids.end());
  EXPECT_TRUE(std::adjacent_find(all_ids.begin(), all_ids.end()) ==
              all_ids.end())
      << "duplicate vector ids handed out";
  EXPECT_EQ(index_.size(), kBaseSize + insert_stream_.size());
  for (size_t i = 0; i < insert_stream_.size(); i += 3) {
    EXPECT_TRUE(index_.Query(insert_stream_[i].span()).has_value()) << i;
  }
}

// Readers racing a remover while the maintenance thread compacts the
// shards the removals dirty: the rebuilt shards must serve the same
// answers throughout.
TEST_F(ConcurrencyStressTest, ReadersRaceBackgroundCompaction) {
  MaintenanceService service;
  MaintenanceOptions options;
  options.poll_interval_ms = 1;
  options.drift_factor = 0.0;  // compaction only in this test
  ASSERT_TRUE(service.Attach(&index_, options).ok());
  ASSERT_TRUE(service.Start().ok());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(900 + static_cast<uint64_t>(r));
      size_t iterations = 0;
      while (!done.load(std::memory_order_acquire) || iterations < 30) {
        ++iterations;
        VectorId probe = stable_probes_[static_cast<size_t>(
            rng.NextBounded(stable_probes_.size()))];
        if (!index_.Query(data_.Get(probe)).has_value()) {
          violations.fetch_add(1);
          ADD_FAILURE() << "stable probe " << probe
                        << " lost during compaction";
        }
      }
    });
  }
  // Remove aggressively so the maintenance thread compacts mid-read.
  for (size_t k = 0; k < kNumRemoves; ++k) {
    ASSERT_TRUE(index_.Remove(static_cast<VectorId>(k)).ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  service.Stop();
  // A final deterministic pass: whatever the thread did not get to.
  ASSERT_TRUE(service.RunOnce().ok());
  service.Detach();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(index_.num_compactions(), 0u);
  EXPECT_TRUE(service.last_error().ok()) << service.last_error().ToString();
}

}  // namespace
}  // namespace skewsearch
