// Structure-aware format fuzzer for the SKF1 frozen-shard layout
// (core/frozen_shard.h), mirroring the wire-codec rejection suite: a
// deterministic seeded corpus of corruptions — truncation at and around
// every section boundary, bit- and byte-flips in every header, section
// table and payload field, section misalignment, size inflation — and
// the contract that FrozenShardFile::Map NEVER crashes or over-reads
// (ASan-clean) on any of them. Each mutant must either
//   (a) fail the default metadata-only Map cleanly, or
//   (b) fail the verify_payload Map cleanly (payload mutations are
//       invisible to the O(1) metadata pass by design), or
//   (c) be benign (padding bytes are deliberately unchecksummed) — in
//       which case the mapped index must answer queries byte-identically
//       to the pristine file.

#include "core/frozen_shard.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/sharded_index.h"
#include "core/skewed_index.h"
#include "data/generators.h"
#include "test_paths.h"
#include "util/random.h"

namespace skewsearch {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

class FrozenShardFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = test::TempPath("frozen_fuzz", this, ".skf");
    mutant_path_ = test::TempPath("frozen_fuzz_mutant", this, ".skf");
    dist_ = TwoBlockProbabilities(80, 0.25, 3000, 0.01).value();
    Rng rng(31);
    data_ = GenerateDataset(dist_, 150, &rng);

    ShardedIndexOptions options;
    options.index.mode = IndexMode::kCorrelated;
    options.index.alpha = 0.7;
    options.index.repetitions = 5;
    options.index.seed = 99991;
    options.num_shards = 2;
    ASSERT_TRUE(index_.Build(&data_, &dist_, options).ok());
    ASSERT_TRUE(index_.Freeze(path_).ok());
    pristine_ = ReadFile(path_);
    ASSERT_GE(pristine_.size(), 64u);

    // Reference answers from the pristine build, for the benign-mutation
    // arm of the contract.
    for (VectorId id = 0; id < data_.size(); ++id) {
      reference_.push_back(index_.Query(data_.Get(id)));
    }
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mutant_path_.c_str());
  }

  void WriteMutant(const std::string& bytes) {
    std::ofstream out(mutant_path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  /// The fuzz oracle. Maps the mutant twice (default, then
  /// verify_payload); if both succeed the mutation must be benign:
  /// queries through the mapped index must equal the pristine answers.
  /// Any crash or sanitizer finding anywhere here fails the test run.
  void ExpectCleanOutcome(const std::string& bytes,
                          const std::string& label) {
    SCOPED_TRACE(label);
    WriteMutant(bytes);

    ShardedIndex mapped;
    Status plain = mapped.MapFrozen(mutant_path_, &data_, &dist_);
    if (!plain.ok()) return;  // (a) clean metadata rejection

    FrozenMapOptions verify;
    verify.verify_payload = true;
    ShardedIndex verified;
    Status full = verified.MapFrozen(mutant_path_, &data_, &dist_, verify);
    if (!full.ok()) return;  // (b) clean payload rejection

    // (c) benign: answers must be byte-identical to the pristine index.
    for (VectorId id = 0; id < data_.size(); ++id) {
      auto got = verified.Query(data_.Get(id));
      ASSERT_EQ(reference_[id].has_value(), got.has_value())
          << "query " << id;
      if (got) {
        EXPECT_EQ(reference_[id]->id, got->id) << "query " << id;
        EXPECT_EQ(reference_[id]->similarity, got->similarity)
            << "query " << id;
      }
    }
  }

  /// Every section boundary in the file, recovered from the (pristine)
  /// header and shard entry table.
  std::vector<size_t> SectionBoundaries() const {
    std::vector<size_t> cuts = {0, 4, 8, 16, 24, 28, 32, 40, 48, 56, 64};
    uint64_t param_size = 0, table_offset = 0;
    uint32_t num_shards = 0;
    std::memcpy(&param_size, pristine_.data() + 40, 8);
    std::memcpy(&table_offset, pristine_.data() + 48, 8);
    std::memcpy(&num_shards, pristine_.data() + 24, 4);
    cuts.push_back(static_cast<size_t>(64 + param_size));
    cuts.push_back(static_cast<size_t>(table_offset));
    for (uint32_t s = 0; s < num_shards; ++s) {
      const size_t entry = table_offset + s * 64;
      cuts.push_back(entry);
      uint64_t fields[6];
      std::memcpy(fields, pristine_.data() + entry, sizeof(fields));
      // keys/offsets/ids section starts and ends.
      cuts.push_back(static_cast<size_t>(fields[0]));
      cuts.push_back(static_cast<size_t>(fields[0] + fields[1] * 8));
      cuts.push_back(static_cast<size_t>(fields[2]));
      cuts.push_back(static_cast<size_t>(fields[2] + fields[3] * 4));
      cuts.push_back(static_cast<size_t>(fields[4]));
      cuts.push_back(static_cast<size_t>(fields[4] + fields[5] * 4));
    }
    cuts.push_back(pristine_.size());
    return cuts;
  }

  std::string path_;
  std::string mutant_path_;
  ProductDistribution dist_;
  Dataset data_;
  ShardedIndex index_;
  std::string pristine_;
  std::vector<std::optional<Match>> reference_;
};

TEST_F(FrozenShardFuzzTest, PristineFileMapsAndIsBenign) {
  // Sanity: the oracle's benign arm actually runs on the unmutated file.
  ExpectCleanOutcome(pristine_, "pristine");
}

TEST_F(FrozenShardFuzzTest, TruncationAtEverySectionBoundary) {
  for (size_t cut : SectionBoundaries()) {
    for (long long delta : {-65LL, -1LL, 0LL, 1LL, 63LL}) {
      const long long len = static_cast<long long>(cut) + delta;
      if (len < 0 || len >= static_cast<long long>(pristine_.size())) {
        continue;
      }
      ExpectCleanOutcome(pristine_.substr(0, static_cast<size_t>(len)),
                         "truncate at " + std::to_string(len));
    }
  }
}

TEST_F(FrozenShardFuzzTest, GrowthBeyondRecordedSize) {
  // Appending bytes desynchronizes file_size from the mapping; both a
  // single byte and a whole page must be rejected (or proven benign).
  ExpectCleanOutcome(pristine_ + std::string(1, '\0'), "append 1");
  ExpectCleanOutcome(pristine_ + std::string(4096, '\xab'), "append 4096");
}

TEST_F(FrozenShardFuzzTest, ByteFlipsInHeaderAndSectionTable) {
  uint64_t table_offset = 0;
  uint32_t num_shards = 0;
  std::memcpy(&table_offset, pristine_.data() + 48, 8);
  std::memcpy(&num_shards, pristine_.data() + 24, 4);
  std::vector<size_t> positions;
  for (size_t pos = 0; pos < 64; ++pos) positions.push_back(pos);
  const size_t table_end = table_offset + num_shards * 64;
  for (size_t pos = table_offset; pos < table_end; ++pos) {
    positions.push_back(pos);
  }
  for (size_t pos : positions) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
      std::string mutant = pristine_;
      mutant[pos] = static_cast<char>(
          static_cast<uint8_t>(mutant[pos]) ^ flip);
      if (mutant == pristine_) continue;
      ExpectCleanOutcome(mutant, "flip byte " + std::to_string(pos) +
                                     " ^ " + std::to_string(flip));
    }
  }
}

TEST_F(FrozenShardFuzzTest, SeededRandomByteFlipsEverywhere) {
  // Deterministic random corpus across the whole file — params, payload
  // sections and padding alike. Payload flips are the (b)-arm's domain;
  // padding flips exercise the benign arm.
  Rng rng(0xf022);
  for (int i = 0; i < 300; ++i) {
    std::string mutant = pristine_;
    const size_t pos =
        static_cast<size_t>(rng.NextUint64() % mutant.size());
    const uint8_t flip = static_cast<uint8_t>(rng.NextUint64() % 255 + 1);
    mutant[pos] =
        static_cast<char>(static_cast<uint8_t>(mutant[pos]) ^ flip);
    ExpectCleanOutcome(mutant, "random flip #" + std::to_string(i) +
                                   " at " + std::to_string(pos));
  }
}

TEST_F(FrozenShardFuzzTest, FieldTargetedCorruptions) {
  struct FieldMutation {
    size_t offset;
    uint64_t value;
    size_t width;
    const char* label;
  };
  uint64_t table_offset = 0;
  std::memcpy(&table_offset, pristine_.data() + 48, 8);
  const uint64_t file_size = pristine_.size();
  const std::vector<FieldMutation> mutations = {
      {8, 0, 8, "file_size zero"},
      {8, file_size - 1, 8, "file_size short"},
      {8, file_size + 64, 8, "file_size long"},
      {8, ~0ULL, 8, "file_size max"},
      {16, 0xdeadbeef, 8, "fingerprint"},
      {24, 0, 4, "num_shards zero"},
      {24, 5000, 4, "num_shards over cap"},
      {24, 3, 4, "num_shards grown"},
      {28, 7, 4, "section_count wrong"},
      {32, 0, 8, "param_offset zero"},
      {32, 128, 8, "param_offset moved"},
      {40, 0, 8, "param_size zero"},
      {40, file_size, 8, "param_size whole file"},
      {48, 0, 8, "table_offset zero"},
      {48, table_offset + 1, 8, "table_offset misaligned"},
      {48, table_offset + 64, 8, "table_offset shifted"},
      {48, file_size, 8, "table_offset at end"},
      {48, ~0ULL & ~63ULL, 8, "table_offset huge aligned"},
      {56, 0, 8, "meta_checksum zero"},
      // Shard entry 0 fields (each 8 bytes wide).
      {static_cast<size_t>(table_offset) + 0, ~0ULL & ~63ULL, 8,
       "keys_offset huge"},
      {static_cast<size_t>(table_offset) + 0, 65, 8,
       "keys_offset misaligned"},
      {static_cast<size_t>(table_offset) + 8, ~0ULL, 8,
       "keys_count huge"},
      {static_cast<size_t>(table_offset) + 8, 0, 8, "keys_count zero"},
      {static_cast<size_t>(table_offset) + 24, 0, 8,
       "offsets_count zero"},
      {static_cast<size_t>(table_offset) + 24, ~0ULL, 8,
       "offsets_count huge"},
      {static_cast<size_t>(table_offset) + 40, ~0ULL, 8,
       "ids_count huge"},
      {static_cast<size_t>(table_offset) + 40, 0, 8, "ids_count zero"},
      {static_cast<size_t>(table_offset) + 48, ~0ULL, 8, "max_id huge"},
      {static_cast<size_t>(table_offset) + 48, 0, 8, "max_id zero"},
      {static_cast<size_t>(table_offset) + 56, 0, 8,
       "payload_checksum zero"},
  };
  for (const FieldMutation& m : mutations) {
    std::string mutant = pristine_;
    ASSERT_LE(m.offset + m.width, mutant.size());
    std::memcpy(mutant.data() + m.offset, &m.value, m.width);
    if (mutant == pristine_) continue;
    ExpectCleanOutcome(mutant, m.label);
  }
}

TEST_F(FrozenShardFuzzTest, FieldCorruptionsWithRecomputedChecksum) {
  // The nastier adversary: corrupt a metadata field AND fix up the
  // metadata checksum so only the deeper validation can object. The
  // per-field O(1) checks (bounds, alignment, bracketing) must still
  // reject — or the payload pass must — without ever crashing.
  auto recompute = [](std::string* bytes) {
    uint64_t param_size = 0, table_offset = 0;
    uint32_t num_shards = 0;
    std::memcpy(&param_size, bytes->data() + 40, 8);
    std::memcpy(&table_offset, bytes->data() + 48, 8);
    std::memcpy(&num_shards, bytes->data() + 24, 4);
    const uint64_t table_bytes = uint64_t{64} * num_shards;
    if (64 + param_size > bytes->size() ||
        table_offset > bytes->size() ||
        table_bytes > bytes->size() - table_offset) {
      return false;  // cannot even locate the checksummed regions
    }
    frozen_internal::Checksum64 sum;
    sum.Update(bytes->data(), 56);
    sum.Update(bytes->data() + 64, param_size);
    sum.Update(bytes->data() + table_offset, table_bytes);
    const uint64_t digest = sum.digest();
    std::memcpy(bytes->data() + 56, &digest, 8);
    return true;
  };

  uint64_t table_offset = 0;
  std::memcpy(&table_offset, pristine_.data() + 48, 8);
  struct FieldMutation {
    size_t offset;
    uint64_t value;
    size_t width;
    const char* label;
  };
  // (Deliberately absent: a "shrink num_shards with fixed-up checksum"
  // mutation. That file is a structurally valid 1-shard SKF1 with
  // different *content* — adversarial rewriting, which checksums are
  // not meant to defeat; the corruption model covers it via the
  // unfixed-checksum variant in FieldTargetedCorruptions.)
  const std::vector<FieldMutation> mutations = {
      {8, pristine_.size() - 64, 8, "file_size short, checksummed"},
      {static_cast<size_t>(table_offset) + 0, ~0ULL & ~63ULL, 8,
       "keys_offset huge, checksummed"},
      {static_cast<size_t>(table_offset) + 0,
       static_cast<size_t>(table_offset) + 32, 8,
       "keys_offset misaligned, checksummed"},
      {static_cast<size_t>(table_offset) + 8, ~0ULL / 8, 8,
       "keys_count huge, checksummed"},
      {static_cast<size_t>(table_offset) + 24, 1, 8,
       "offsets_count mismatched, checksummed"},
      {static_cast<size_t>(table_offset) + 40, ~0ULL / 4, 8,
       "ids_count huge, checksummed"},
      {static_cast<size_t>(table_offset) + 40, 3, 8,
       "ids_count shrunk, checksummed"},
      {static_cast<size_t>(table_offset) + 48, ~0ULL, 8,
       "max_id huge, checksummed"},
      {static_cast<size_t>(table_offset) + 48, 1, 8,
       "max_id understated, checksummed"},
      {static_cast<size_t>(table_offset) + 56, 0, 8,
       "payload_checksum cleared, checksummed"},
  };
  for (const FieldMutation& m : mutations) {
    std::string mutant = pristine_;
    std::memcpy(mutant.data() + m.offset, &m.value, m.width);
    if (!recompute(&mutant)) continue;
    if (mutant == pristine_) continue;
    ExpectCleanOutcome(mutant, m.label);
  }
}

TEST_F(FrozenShardFuzzTest, EmptyAndTinyFiles) {
  ExpectCleanOutcome(std::string(), "empty file");
  ExpectCleanOutcome(std::string("SKF1"), "magic only");
  ExpectCleanOutcome(std::string(63, '\0'), "one byte short of a header");
  ExpectCleanOutcome(std::string(64, '\0'), "zeroed header");
  ExpectCleanOutcome(pristine_.substr(0, 64), "header only");
}

}  // namespace
}  // namespace skewsearch
