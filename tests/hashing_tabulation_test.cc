#include "hashing/tabulation.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace skewsearch {
namespace {

TEST(TabulationHashTest, Deterministic) {
  Rng rng(3);
  TabulationHash h(&rng);
  EXPECT_EQ(h.Hash(123456), h.Hash(123456));
}

TEST(TabulationHashTest, DifferentSeedsDiffer) {
  Rng r1(1), r2(2);
  TabulationHash h1(&r1), h2(&r2);
  int equal = 0;
  for (uint64_t x = 0; x < 1000; ++x) {
    if (h1.Hash(x) == h2.Hash(x)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(TabulationHashTest, XorStructure) {
  // Tabulation hashing of key 0 equals the XOR of the zero-byte entries;
  // changing a single byte changes exactly one table lookup.
  Rng rng(5);
  TabulationHash h(&rng);
  uint64_t h0 = h.Hash(0);
  uint64_t h1 = h.Hash(0xff);
  EXPECT_NE(h0, h1);
  // h0 ^ h1 = T0[0] ^ T0[0xff]; applying the same delta to another key
  // with identical byte 0 gives the same XOR difference.
  uint64_t h2 = h.Hash(0xab00);
  uint64_t h3 = h.Hash(0xabff);
  EXPECT_EQ(h0 ^ h1, h2 ^ h3);
}

TEST(TabulationHashTest, FewCollisionsOnSequentialKeys) {
  Rng rng(7);
  TabulationHash h(&rng);
  std::set<uint64_t> outputs;
  const int kKeys = 20000;
  for (uint64_t x = 0; x < kKeys; ++x) outputs.insert(h.Hash(x));
  EXPECT_EQ(outputs.size(), static_cast<size_t>(kKeys));
}

TEST(TabulationHashTest, UnitIntervalMean) {
  Rng rng(9);
  TabulationHash h(&rng);
  double sum = 0.0;
  const int kKeys = 50000;
  for (uint64_t x = 0; x < kKeys; ++x) sum += h.HashUnit(x);
  EXPECT_NEAR(sum / kKeys, 0.5, 0.01);
}

TEST(TabulationHashTest, BitBalance) {
  // Every output bit should be set for ~half of sequential keys.
  Rng rng(11);
  TabulationHash h(&rng);
  const int kKeys = 20000;
  std::vector<int> bit_counts(64, 0);
  for (uint64_t x = 0; x < kKeys; ++x) {
    uint64_t v = h.Hash(x);
    for (int b = 0; b < 64; ++b) bit_counts[b] += (v >> b) & 1;
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(bit_counts[b], kKeys / 2, 500) << "bit " << b;
  }
}

}  // namespace
}  // namespace skewsearch
