#include "baselines/minhash_lsh.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(MinHashTest, BuildValidates) {
  MinHashLsh index;
  MinHashOptions options;
  Dataset data;
  EXPECT_TRUE(index.Build(nullptr, options).IsInvalidArgument());
  data.Add(SparseVector::Of({1}));
  data.Add(SparseVector::Of({2}));
  options.j1 = 0.0;
  EXPECT_TRUE(index.Build(&data, options).IsInvalidArgument());
  options.j1 = 0.5;
  options.j2 = 0.6;  // >= j1 with auto geometry
  EXPECT_TRUE(index.Build(&data, options).IsInvalidArgument());
}

TEST(MinHashTest, AutoGeometryReasonable) {
  auto dist = UniformProbabilities(500, 0.1).value();
  Rng rng(1);
  Dataset data = GenerateDataset(dist, 256, &rng);
  MinHashLsh index;
  MinHashOptions options;
  options.j1 = 0.5;
  options.j2 = 0.2;
  ASSERT_TRUE(index.Build(&data, options).ok());
  EXPECT_GT(index.rows(), 0);
  EXPECT_GT(index.bands(), 0);
  EXPECT_LE(index.bands(), 4096);
}

TEST(MinHashTest, ExplicitGeometryHonored) {
  auto dist = UniformProbabilities(500, 0.1).value();
  Rng rng(2);
  Dataset data = GenerateDataset(dist, 64, &rng);
  MinHashLsh index;
  MinHashOptions options;
  options.bands = 17;
  options.rows = 3;
  ASSERT_TRUE(index.Build(&data, options).ok());
  EXPECT_EQ(index.bands(), 17);
  EXPECT_EQ(index.rows(), 3);
}

TEST(MinHashTest, IdenticalVectorsAlwaysCollide) {
  // MinHash of identical sets is identical => every band matches.
  auto dist = UniformProbabilities(800, 0.05).value();
  Rng rng(3);
  Dataset data = GenerateDataset(dist, 100, &rng);
  MinHashLsh index;
  MinHashOptions options;
  options.j1 = 0.6;
  options.j2 = 0.15;
  ASSERT_TRUE(index.Build(&data, options).ok());
  int found = 0;
  for (VectorId id = 0; id < 30; ++id) {
    auto hit = index.Query(data.Get(id));
    if (hit && hit->id == id && hit->similarity == 1.0) ++found;
  }
  EXPECT_EQ(found, 30);
}

TEST(MinHashTest, NearDuplicatesFound) {
  auto dist = UniformProbabilities(2000, 0.05).value();
  Rng rng(4);
  Dataset data;
  SparseVector base = dist.Sample(&rng);
  data.Add(base);
  // 95% overlapping variant.
  std::vector<ItemId> ids(base.ids());
  for (size_t k = 0; k < ids.size() / 20 + 1; ++k) {
    ids[k] = static_cast<ItemId>(1999 - k);
  }
  data.Add(SparseVector::FromIds(ids));
  for (int i = 0; i < 150; ++i) data.Add(dist.Sample(&rng));
  ASSERT_TRUE(data.SetDimension(2000).ok());

  MinHashLsh index;
  MinHashOptions options;
  options.j1 = 0.7;
  options.j2 = 0.1;
  ASSERT_TRUE(index.Build(&data, options).ok());
  auto matches = index.QueryAll(base.span(), 0.7);
  std::set<VectorId> got;
  for (const auto& m : matches) got.insert(m.id);
  EXPECT_TRUE(got.count(0));
  EXPECT_TRUE(got.count(1));
}

TEST(MinHashTest, UnrelatedQueriesMostlyPruned) {
  auto dist = UniformProbabilities(3000, 0.03).value();
  Rng rng(5);
  Dataset data = GenerateDataset(dist, 400, &rng);
  MinHashLsh index;
  MinHashOptions options;
  options.j1 = 0.6;
  options.j2 = 0.1;
  ASSERT_TRUE(index.Build(&data, options).ok());
  // A fresh random vector should touch only a tiny fraction of the data.
  QueryStats stats;
  SparseVector q = dist.Sample(&rng);
  index.QueryAll(q.span(), 0.6, &stats);
  EXPECT_LT(stats.distinct_candidates, data.size() / 4);
}

TEST(MinHashTest, VerifyMeasureConfigurable) {
  auto dist = UniformProbabilities(500, 0.1).value();
  Rng rng(6);
  Dataset data = GenerateDataset(dist, 64, &rng);
  MinHashLsh index;
  MinHashOptions options;
  options.j1 = 0.5;
  options.j2 = 0.2;
  options.verify_measure = Measure::kBraunBlanquet;
  options.verify_threshold = 0.9;
  ASSERT_TRUE(index.Build(&data, options).ok());
  auto hit = index.Query(data.Get(0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_GE(hit->similarity, 0.9);
}

TEST(MinHashTest, EmptyQueryAndEmptyVectors) {
  Dataset data;
  data.Add(SparseVector::Of({}));
  data.Add(SparseVector::Of({1, 2}));
  data.Add(SparseVector::Of({3}));
  MinHashLsh index;
  MinHashOptions options;
  options.j1 = 0.5;
  options.j2 = 0.2;
  ASSERT_TRUE(index.Build(&data, options).ok());
  EXPECT_FALSE(index.Query({}).has_value());
}

}  // namespace
}  // namespace skewsearch
