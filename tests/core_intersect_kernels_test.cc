// Copyright 2026 The skewsearch Authors.
// Differential tests for the vectorized intersection kernels: every
// kernel must return a byte-identical count to the scalar reference on
// every input — randomized across size, overlap, and alignment regimes,
// plus the degenerate shapes (empty, single element, no overlap, full
// overlap) where block kernels typically go wrong.

#include "core/intersect.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "data/sparse_vector.h"
#include "sim/intersect.h"
#include "util/random.h"

namespace skewsearch {
namespace {

std::vector<ItemId> MakeSorted(size_t count, ItemId universe, Rng* rng) {
  std::vector<ItemId> ids;
  ids.reserve(count);
  while (ids.size() < count) {
    ids.push_back(static_cast<ItemId>(rng->NextBounded(universe)));
  }
  // FromIds sorts and dedupes — exactly the invariant the kernels assume.
  return SparseVector::FromIds(std::move(ids)).ids();
}

void ExpectAllKernelsAgree(std::span<const ItemId> a,
                           std::span<const ItemId> b) {
  const size_t expect = IntersectSizeMerge(a, b);
  EXPECT_EQ(IntersectSizeScalar(a, b), expect);
  EXPECT_EQ(IntersectSizeSse2(a, b), expect);
  EXPECT_EQ(IntersectSizeAvx2(a, b), expect);
  EXPECT_EQ(IntersectSizeKernel(a, b), expect);
  EXPECT_EQ(IntersectSizeGalloping(a, b), expect);
  // Symmetry: |a n b| == |b n a| on every route.
  EXPECT_EQ(IntersectSizeSse2(b, a), expect);
  EXPECT_EQ(IntersectSizeAvx2(b, a), expect);
  EXPECT_EQ(IntersectSizeKernel(b, a), expect);
}

TEST(IntersectKernelsTest, DegenerateShapes) {
  const std::vector<ItemId> empty;
  const std::vector<ItemId> one = {7};
  const std::vector<ItemId> small = {1, 7, 9, 1000};
  ExpectAllKernelsAgree(empty, empty);
  ExpectAllKernelsAgree(empty, small);
  ExpectAllKernelsAgree(one, small);
  ExpectAllKernelsAgree(one, one);
  ExpectAllKernelsAgree(small, small);  // full overlap
}

TEST(IntersectKernelsTest, NoOverlapAndFullOverlap) {
  std::vector<ItemId> evens;
  std::vector<ItemId> odds;
  for (ItemId i = 0; i < 1000; ++i) {
    evens.push_back(2 * i);
    odds.push_back(2 * i + 1);
  }
  EXPECT_EQ(IntersectSizeSse2(evens, odds), 0u);
  EXPECT_EQ(IntersectSizeAvx2(evens, odds), 0u);
  ExpectAllKernelsAgree(evens, odds);
  EXPECT_EQ(IntersectSizeSse2(evens, evens), evens.size());
  EXPECT_EQ(IntersectSizeAvx2(evens, evens), evens.size());
}

TEST(IntersectKernelsTest, RandomizedSizeAndOverlapRegimes) {
  Rng rng(1234);
  // Sizes straddle the SIMD block widths (4 / 8) and their remainders;
  // universe multipliers sweep overlap from ~50% down to ~1%.
  const size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                          31, 33, 64, 100, 257, 1024};
  const ItemId multipliers[] = {2, 8, 64};
  for (size_t la : sizes) {
    for (size_t lb : {la, la / 2 + 1, la * 3 + 1}) {
      for (ItemId mult : multipliers) {
        const ItemId universe =
            static_cast<ItemId>(std::max(la, lb) * mult + 1);
        auto a = MakeSorted(la, universe, &rng);
        auto b = MakeSorted(lb, universe, &rng);
        ExpectAllKernelsAgree(a, b);
      }
    }
  }
}

TEST(IntersectKernelsTest, AlignmentRegimes) {
  // Block kernels read 4/8-element groups; slide both windows over
  // every sub-word offset so loads start at all alignments.
  Rng rng(99);
  auto a = MakeSorted(512, 4096, &rng);
  auto b = MakeSorted(512, 4096, &rng);
  for (size_t off_a = 0; off_a < 9; ++off_a) {
    for (size_t off_b = 0; off_b < 9; ++off_b) {
      std::span<const ItemId> sa(a.data() + off_a, a.size() - off_a);
      std::span<const ItemId> sb(b.data() + off_b, b.size() - off_b);
      const size_t expect = IntersectSizeMerge(sa, sb);
      EXPECT_EQ(IntersectSizeSse2(sa, sb), expect);
      EXPECT_EQ(IntersectSizeAvx2(sa, sb), expect);
      EXPECT_EQ(IntersectSizeKernel(sa, sb), expect);
    }
  }
}

TEST(IntersectKernelsTest, AsymmetricInputsTakeGallopingRoute) {
  Rng rng(7);
  auto tiny = MakeSorted(8, 1u << 20, &rng);
  auto huge = MakeSorted(20000, 1u << 20, &rng);
  ExpectAllKernelsAgree(tiny, huge);
}

TEST(IntersectKernelsTest, DispatchOverrideClampsAndRestores) {
  const IntersectKernel best = DetectIntersectKernel();
  // Scalar is always available.
  EXPECT_EQ(SetIntersectKernel(IntersectKernel::kScalar),
            IntersectKernel::kScalar);
  EXPECT_EQ(ActiveIntersectKernel(), IntersectKernel::kScalar);
  Rng rng(5);
  auto a = MakeSorted(300, 2048, &rng);
  auto b = MakeSorted(300, 2048, &rng);
  const size_t scalar_count = IntersectSizeKernel(a, b);
  // Requesting more than the hardware supports clamps to the best
  // supported kernel; the dispatched result must not change.
  const IntersectKernel installed = SetIntersectKernel(IntersectKernel::kAvx2);
  EXPECT_LE(static_cast<int>(installed), static_cast<int>(best));
  EXPECT_EQ(ActiveIntersectKernel(), installed);
  EXPECT_EQ(IntersectSizeKernel(a, b), scalar_count);
  SetIntersectKernel(best);
  EXPECT_EQ(ActiveIntersectKernel(), best);
}

TEST(IntersectKernelsTest, SimLayerRoutesThroughKernel) {
  // sim/intersect.h's IntersectSize is the public entry every measure
  // uses; it must match the merge reference whatever kernel is active.
  Rng rng(31);
  auto a = MakeSorted(777, 6000, &rng);
  auto b = MakeSorted(900, 6000, &rng);
  EXPECT_EQ(IntersectSize(a, b), IntersectSizeMerge(a, b));
}

TEST(IntersectKernelsTest, KernelNamesAreStable) {
  EXPECT_STREQ(IntersectKernelName(IntersectKernel::kScalar), "scalar");
  EXPECT_STREQ(IntersectKernelName(IntersectKernel::kSse2), "sse2");
  EXPECT_STREQ(IntersectKernelName(IntersectKernel::kAvx2), "avx2");
}

}  // namespace
}  // namespace skewsearch
