// Integration: empirical checks of the paper's analytic claims —
// Lemma 10's similarity separation, filter-count scaling against the
// rho equations, and the skew advantage over classic Chosen Path.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/chosen_path.h"
#include "core/rho.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "sim/measures.h"
#include "stats/exponent_fit.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(Lemma10Test, SimilaritySeparation) {
  // With sum p_i = C ln n large, B(x, q) >= alpha/1.3 for the correlated
  // pair and <= alpha/1.5 for uncorrelated pairs, w.h.p.
  const double alpha = 0.6;
  auto dist = UniformProbabilities(6000, 0.04).value();  // m = 240
  Rng rng(1);
  CorrelatedQuerySampler sampler(&dist, alpha);
  int correlated_ok = 0, uncorrelated_ok = 0;
  const int kTrials = 120;
  for (int t = 0; t < kTrials; ++t) {
    SparseVector x = dist.Sample(&rng);
    SparseVector q = sampler.SampleCorrelated(x.span(), &rng);
    SparseVector z = dist.Sample(&rng);
    if (BraunBlanquet(x.span(), q.span()) >= alpha / 1.3) ++correlated_ok;
    if (BraunBlanquet(z.span(), q.span()) <= alpha / 1.5) ++uncorrelated_ok;
  }
  EXPECT_GE(correlated_ok, kTrials * 95 / 100);
  EXPECT_GE(uncorrelated_ok, kTrials * 95 / 100);
}

TEST(FilterScalingTest, FilterCountTracksRhoEquation) {
  // E|F(x)| should grow roughly like n^rho (up to the delta and log-factor
  // slack). We fit the measured exponent over a geometric n-grid and check
  // it is within a generous band of the analytic rho.
  const double alpha = 0.7;
  auto dist = TwoBlockProbabilities(200, 0.25, 10000, 0.005).value();
  double rho = CorrelatedRho(dist, alpha).value();

  std::vector<double> ns, filters;
  for (size_t n : {128, 256, 512, 1024}) {
    Rng rng(100 + n);
    Dataset data = GenerateDataset(dist, n, &rng);
    SkewedPathIndex index;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = alpha;
    options.repetitions = 4;  // fixed so filters/element is comparable
    options.delta = 0.1;
    ASSERT_TRUE(index.Build(&data, &dist, options).ok());
    ns.push_back(static_cast<double>(n));
    filters.push_back(index.build_stats().avg_filters_per_element + 1.0);
  }
  auto fit = FitPowerLaw(ns, filters);
  ASSERT_TRUE(fit.ok());
  // Generous band: the delta boost adds ~ln(1+delta) and small-n effects
  // are real; the point is the measured exponent is in the right regime
  // (clearly sublinear, clearly correlated with the equation's rho).
  EXPECT_LT(fit->exponent, rho + 0.35);
  EXPECT_GT(fit->exponent, rho - 0.35);
}

TEST(SkewAdvantageTest, SkewReducesOurFilterWork) {
  // Figure 1's operational meaning at test scale: holding m = sum p_i,
  // alpha, n and delta fixed, our index generates measurably fewer
  // filters/candidates on a skewed distribution than on a uniform one,
  // consistently with rho(skewed) < rho(uniform). (The head-to-head
  // Chosen Path comparison needs larger n to beat constants and lives in
  // bench/scaling_exponent; the analytic comparison is in core_rho_test.)
  const double alpha = 2.0 / 3.0;
  const size_t n = 600;
  auto uniform = UniformProbabilities(300, 0.25).value();  // m = 75
  auto skewed =
      TwoBlockProbabilities(150, 0.25, 37500, 0.001).value();  // m = 75
  double rho_uniform = CorrelatedRho(uniform, alpha).value();
  double rho_skewed = CorrelatedRho(skewed, alpha).value();
  ASSERT_LT(rho_skewed, rho_uniform - 0.05);

  auto measure = [&](const ProductDistribution& dist, uint64_t seed) {
    Rng rng(seed);
    Dataset data = GenerateDataset(dist, n, &rng);
    SkewedPathIndex index;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = alpha;
    options.repetitions = 10;
    options.delta = 0.1;
    EXPECT_TRUE(index.Build(&data, &dist, options).ok());
    CorrelatedQuerySampler sampler(&dist, alpha);
    size_t candidates = 0, filters = 0;
    int found = 0;
    const int kQueries = 40;
    for (int t = 0; t < kQueries; ++t) {
      VectorId target = static_cast<VectorId>(rng.NextBounded(n));
      SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
      QueryStats stats;
      auto hits = index.QueryAll(q.span(), alpha / 1.3, &stats);
      candidates += stats.candidates;
      filters += stats.filters;
      for (const auto& m : hits) found += (m.id == target);
    }
    EXPECT_GE(found, kQueries * 6 / 10);
    return std::make_pair(filters, candidates);
  };

  auto [uniform_filters, uniform_cands] = measure(uniform, 7);
  auto [skewed_filters, skewed_cands] = measure(skewed, 8);
  EXPECT_LT(skewed_filters, uniform_filters);
  EXPECT_LT(skewed_cands, uniform_cands);
}

TEST(AdaptiveQueryTest, EasyQueriesTouchFewerCandidates) {
  // Theorem 2's adaptivity: on the same adversarial index, queries whose
  // items are rare (small rho(q)) generate fewer candidates than queries
  // made of frequent items (large rho(q)).
  auto dist = TwoBlockProbabilities(150, 0.3, 30000, 0.002).value();
  Rng rng(9);
  const size_t n = 500;
  Dataset data = GenerateDataset(dist, n, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = 0.5;
  options.repetitions = 8;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());

  // Frequent-only queries vs mixed queries of the same size.
  size_t frequent_cands = 0, mixed_cands = 0;
  for (int t = 0; t < 25; ++t) {
    std::vector<ItemId> freq_ids, mixed_ids;
    for (ItemId i = 0; i < 60; ++i) {
      freq_ids.push_back((i * 2 + static_cast<ItemId>(t)) % 150);
      mixed_ids.push_back((i % 30) * 2);  // 30 frequent
    }
    for (ItemId i = 0; i < 30; ++i) {
      mixed_ids.push_back(150 + static_cast<ItemId>(t) * 50 + i);  // 30 rare
    }
    QueryStats s1, s2;
    index.QueryAll(SparseVector::FromIds(freq_ids).span(), 2.0, &s1);
    index.QueryAll(SparseVector::FromIds(mixed_ids).span(), 2.0, &s2);
    frequent_cands += s1.candidates;
    mixed_cands += s2.candidates;
  }
  EXPECT_LT(mixed_cands, frequent_cands);
}

TEST(StopRuleTest, FarPairsRarelyCollide) {
  // The probability stop rule caps Pr[v in F(x)] at 1/n per filter, so an
  // unrelated query's expected candidate count stays near |F(q)| * O(1).
  auto dist = UniformProbabilities(2500, 0.04).value();
  Rng rng(11);
  const size_t n = 800;
  Dataset data = GenerateDataset(dist, n, &rng);
  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.repetitions = 6;
  options.delta = 0.1;
  ASSERT_TRUE(index.Build(&data, &dist, options).ok());
  double total_candidates = 0, total_filters = 0;
  const int kQueries = 30;
  for (int t = 0; t < kQueries; ++t) {
    SparseVector q = dist.Sample(&rng);  // unrelated to the data
    QueryStats stats;
    index.QueryAll(q.span(), 2.0, &stats);
    total_candidates += static_cast<double>(stats.candidates);
    total_filters += static_cast<double>(stats.filters);
  }
  // Average bucket load per probed filter stays O(1)-ish.
  EXPECT_LT(total_candidates, 20.0 * (total_filters + kQueries));
}

}  // namespace
}  // namespace skewsearch
