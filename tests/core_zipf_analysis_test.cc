#include "core/zipf_analysis.h"

#include <gtest/gtest.h>

namespace skewsearch {
namespace {

TEST(ZipfAnalysisTest, Validates) {
  ZipfClassOptions options;
  EXPECT_FALSE(MakeZipfClassDistribution(options, 1).ok());
  options.exponent = -1.0;
  EXPECT_FALSE(MakeZipfClassDistribution(options, 1000).ok());
  options.exponent = 1.0;
  EXPECT_FALSE(AnalyzeZipfClass(options, {}).ok());
}

TEST(ZipfAnalysisTest, PureZipfTrivializes) {
  // The paper's observation: with p_j = 1/2j and d = n, sum p ~ ln(d)/2,
  // so C(n) = sum p / ln n tends to the constant 1/2 — and for s > 1 the
  // expected size is O(1), so C(n) -> 0.
  ZipfClassOptions options;
  options.kind = ZipfClass::kPureZipf;
  options.exponent = 1.5;
  auto points =
      AnalyzeZipfClass(options, {1 << 10, 1 << 14, 1 << 18}).value();
  EXPECT_LT(points.back().c_of_n, points.front().c_of_n);
  EXPECT_LT(points.back().c_of_n, 0.5);
  // Expected set size stays bounded (the "very small expected size").
  EXPECT_LT(points.back().expected_size, 10.0);
}

TEST(ZipfAnalysisTest, ScaledZipfKeepsAsymptoticsInteresting) {
  // The candidate answer: rescaling the Zipf shape to sum p = C0 ln n
  // keeps C(n) = C0 at every n while preserving the skew.
  ZipfClassOptions options;
  options.kind = ZipfClass::kScaledZipf;
  options.exponent = 1.0;
  options.c0 = 8.0;
  auto points =
      AnalyzeZipfClass(options, {1 << 10, 1 << 14, 1 << 18}).value();
  for (const auto& point : points) {
    EXPECT_NEAR(point.c_of_n, 8.0, 0.5) << "n = " << point.n;
    // The skew advantage persists: positive exponent gap everywhere.
    EXPECT_GT(point.gap, 0.0) << "n = " << point.n;
  }
}

TEST(ZipfAnalysisTest, PiecewiseZipfAlsoInteresting) {
  ZipfClassOptions options;
  options.kind = ZipfClass::kPiecewiseZipf;
  options.exponent = 1.1;
  options.c0 = 6.0;
  auto points = AnalyzeZipfClass(options, {1 << 10, 1 << 16}).value();
  for (const auto& point : points) {
    EXPECT_NEAR(point.c_of_n, 6.0, 0.5);
    EXPECT_GT(point.gap, 0.0);
    EXPECT_GT(point.rho_ours, 0.0);
    EXPECT_LE(point.rho_ours, 1.0);
  }
}

TEST(ZipfAnalysisTest, GapGrowsWithSkewExponent) {
  // Steeper Zipf decay = more skew = larger advantage over Chosen Path.
  double prev_gap = -1.0;
  for (double s : {0.5, 1.0, 1.5}) {
    ZipfClassOptions options;
    options.kind = ZipfClass::kScaledZipf;
    options.exponent = s;
    options.c0 = 8.0;
    auto points = AnalyzeZipfClass(options, {1 << 14}).value();
    EXPECT_GT(points[0].gap, prev_gap) << "s = " << s;
    prev_gap = points[0].gap;
  }
}

TEST(ZipfAnalysisTest, DistributionPropertiesSane) {
  ZipfClassOptions options;
  options.kind = ZipfClass::kScaledZipf;
  options.c0 = 5.0;
  auto dist = MakeZipfClassDistribution(options, 4096).value();
  EXPECT_TRUE(dist.SatisfiesHalfAssumption());
  EXPECT_GE(dist.dimension(), 4096u);
}

}  // namespace
}  // namespace skewsearch
