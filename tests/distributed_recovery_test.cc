// Copyright 2026 The skewsearch Authors.
// Worker-loss recovery and replay idempotence: a session that dies
// mid-probe-stream must not change the join output — the coordinator
// re-derives the dead worker's slices from the deterministic plan,
// re-ships them to a survivor, replays the unacknowledged batches, and
// the merge's dedup absorbs everything. Also the transport-poisoning
// satellite: a TCP stream desynchronized mid-frame must refuse further
// use with a distinct status instead of decoding garbage.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "distributed/distributed_join.h"
#include "distributed/transport/session.h"
#include "distributed/transport/tcp_transport.h"
#include "distributed/transport/transport.h"
#include "util/random.h"

namespace skewsearch {
namespace {

Dataset ZipfDataWithDuplicates(uint64_t seed, size_t n,
                               ProductDistribution* dist_out) {
  auto dist = ZipfProbabilities(2000, 1.0, 0.4).value();
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) data.Add(dist.Sample(&rng));
  for (size_t i = 0; i < n / 10; ++i) {
    data.Add(data.GetVector(static_cast<VectorId>(i * 3)));
  }
  EXPECT_TRUE(data.SetDimension(2000).ok());
  *dist_out = std::move(dist);
  return data;
}

void ExpectIdentical(const std::vector<JoinPair>& expected,
                     const std::vector<JoinPair>& got) {
  ASSERT_EQ(expected.size(), got.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].left, got[i].left) << "pair " << i;
    EXPECT_EQ(expected[i].right, got[i].right) << "pair " << i;
    EXPECT_DOUBLE_EQ(expected[i].similarity, got[i].similarity)
        << "pair " << i;
  }
}

/// One hosted loopback worker: ServeConnection on its own thread, with
/// optional fault injection.
struct HostedWorker {
  std::thread thread;
  WorkerServeStats stats;
  Status status;

  void Join() {
    if (thread.joinable()) thread.join();
  }
};

TEST(DistributedRecoveryTest, WorkerDeathMidJoinRecoversByteIdentical) {
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(71, 140, &dist);
  DistributedJoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = 0.8;
  options.index.repetition_boost = 3.0;
  options.index.seed = 71;
  options.workers = 3;
  options.probe_batch = 8;  // enough batches per worker to die mid-stream
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, options).ok());
  auto expected = join.SelfJoin();
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->size(), 0u) << "identity needs a non-trivial output";

  // Worker 1's server drops the connection after two answered batches —
  // no Error frame, no Shutdown, exactly what a SIGKILLed process looks
  // like from the coordinator's side of the socket.
  std::vector<std::unique_ptr<HostedWorker>> hosts;
  std::vector<std::unique_ptr<FrameConnection>> connections;
  for (int w = 0; w < 3; ++w) {
    auto [client, server] = LoopbackPair();
    auto host = std::make_unique<HostedWorker>();
    ServeOptions serve;
    if (w == 1) serve.fail_after_batches = 2;
    host->thread = std::thread(
        [host = host.get(), serve, conn = std::move(server)]() mutable {
          host->status = ServeConnection(conn.get(), &host->stats, serve);
        });
    hosts.push_back(std::move(host));
    connections.push_back(std::move(client));
  }
  ASSERT_TRUE(join.AttachRemote(std::move(connections)).ok());

  DistributedJoinStats stats;
  auto got = join.SelfJoin(&stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectIdentical(*expected, *got);
  EXPECT_EQ(stats.worker_recoveries, 1u);
  EXPECT_GE(stats.replayed_batches, 1u);

  // The remap persists: the next join on the reduced pool (worker 1's
  // slices now merged into a survivor) is still byte-identical, with
  // nothing left to recover.
  DistributedJoinStats again;
  auto second = join.SelfJoin(&again);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectIdentical(*expected, *second);
  EXPECT_EQ(again.worker_recoveries, 0u);
  EXPECT_EQ(again.replayed_batches, 0u);

  join.DetachRemote();
  size_t reassignments = 0;
  for (int w = 0; w < 3; ++w) {
    hosts[static_cast<size_t>(w)]->Join();
    const HostedWorker& host = *hosts[static_cast<size_t>(w)];
    if (w == 1) {
      EXPECT_TRUE(host.status.IsAborted()) << host.status.ToString();
    } else {
      EXPECT_TRUE(host.status.ok()) << host.status.ToString();
      reassignments += host.stats.reassignments;
    }
  }
  // Exactly one survivor absorbed the dead worker's slices.
  EXPECT_EQ(reassignments, 1u);
}

TEST(DistributedRecoveryTest, DuplicateProbeBatchIsIdempotent) {
  // A replayed (duplicate-delivered) batch must produce an identical
  // response: the worker recomputes against read-only state. Driven at
  // the session layer, where the pipelined API allows two identical
  // batches in flight.
  wire::WorkerAssignment assignment;
  assignment.threshold = 0.4;
  assignment.measure = Measure::kBraunBlanquet;
  assignment.postings.emplace_back(7u, std::vector<VectorId>{0, 1});
  assignment.vectors.emplace_back(0u, std::vector<ItemId>{1, 2, 3});
  assignment.vectors.emplace_back(1u, std::vector<ItemId>{2, 3, 4});

  auto [client, server] = LoopbackPair();
  HostedWorker host;
  host.thread = std::thread([&host, conn = std::move(server)]() mutable {
    host.status = ServeConnection(conn.get(), &host.stats);
  });
  auto session =
      RemoteWorkerSession::Start(std::move(client), /*worker_id=*/0,
                                 /*num_workers=*/1, assignment);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->negotiated_version(), wire::kVersionMax);

  const std::vector<ItemId> items = {2, 3, 4};
  ProbeRequest probe;
  probe.left = 9;
  probe.items = std::span<const ItemId>(items);
  probe.keys = {7};
  std::span<const ProbeRequest> batch(&probe, 1);
  ASSERT_TRUE(session->SendProbeBatch(batch).ok());
  ASSERT_TRUE(session->SendProbeBatch(batch).ok());
  EXPECT_EQ(session->in_flight(), 2u);
  auto first = session->ReceiveResponses();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = session->ReceiveResponses();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(first->size(), 1u);
  ASSERT_EQ(second->size(), 1u);
  const ProbeResponse& a = (*first)[0];
  const ProbeResponse& b = (*second)[0];
  EXPECT_EQ(a.left, b.left);
  ASSERT_GT(a.matches.size(), 0u) << "idempotence needs real matches";
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].id, b.matches[i].id);
    EXPECT_DOUBLE_EQ(a.matches[i].similarity, b.matches[i].similarity);
  }
  EXPECT_TRUE(session->Shutdown().ok());
  host.Join();
  EXPECT_TRUE(host.status.ok()) << host.status.ToString();
  EXPECT_EQ(host.stats.batches, 2u);
}

/// Connects a raw (non-frame) TCP client to \p port and returns the fd.
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

TEST(DistributedPoisonTest, GarbageHeaderPoisonsTcpConnection) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const int fd = RawConnect(listener->port());
  auto connection = listener->Accept();
  ASSERT_TRUE(connection.ok());

  // A full 12-byte header of garbage: the magic check fails only after
  // the bytes are consumed, so there is no resync point.
  const uint8_t garbage[12] = {0xde, 0xad, 0xbe, 0xef, 1, 2,
                               3,    4,    5,    6,    7, 8};
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));
  wire::Frame frame;
  Status first = (*connection)->Receive(&frame);
  EXPECT_FALSE(first.ok());
  Status second = (*connection)->Receive(&frame);
  EXPECT_TRUE(second.IsAborted()) << second.ToString();
  EXPECT_NE(second.ToString().find("poisoned"), std::string::npos)
      << second.ToString();
  // The poison covers sends too: the stream position is unknown.
  Status sent = (*connection)->Send(wire::EncodeShutdown());
  EXPECT_TRUE(sent.IsAborted()) << sent.ToString();
  ::close(fd);
}

TEST(DistributedPoisonTest, MidFrameTimeoutPoisonsTcpConnection) {
  TcpOptions options;
  options.io_timeout_ms = 200;
  auto listener = TcpListener::Listen(0, options);
  ASSERT_TRUE(listener.ok());
  const int fd = RawConnect(listener->port());
  auto connection = listener->Accept();
  ASSERT_TRUE(connection.ok());

  // Five header bytes, then silence: the receiver times out mid-frame
  // with the stream desynchronized — the connection must refuse any
  // further use rather than treat later bytes as a fresh header.
  const uint8_t partial[5] = {'S', 'K', 'W', 'J', 1};
  ASSERT_EQ(::send(fd, partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  wire::Frame frame;
  Status first = (*connection)->Receive(&frame);
  EXPECT_FALSE(first.ok());
  EXPECT_FALSE(first.IsAborted()) << "first failure is the timeout itself: "
                                  << first.ToString();
  Status second = (*connection)->Receive(&frame);
  EXPECT_TRUE(second.IsAborted()) << second.ToString();
  EXPECT_NE(second.ToString().find("poisoned"), std::string::npos);
  ::close(fd);
}

TEST(DistributedPoisonTest, CleanTimeoutBetweenFramesDoesNotPoison) {
  TcpOptions options;
  options.io_timeout_ms = 150;
  auto listener = TcpListener::Listen(0, options);
  ASSERT_TRUE(listener.ok());
  const int fd = RawConnect(listener->port());
  auto connection = listener->Accept();
  ASSERT_TRUE(connection.ok());

  // No bytes at all: the wait times out before any of the frame was
  // consumed, so the stream is still aligned and stays usable.
  wire::Frame frame;
  Status first = (*connection)->Receive(&frame);
  EXPECT_FALSE(first.ok());
  EXPECT_FALSE(first.IsAborted()) << first.ToString();

  // A whole valid frame sent afterwards is received normally.
  const wire::Frame shutdown = wire::EncodeShutdown();
  std::vector<uint8_t> bytes;
  wire::AppendFrameHeader(shutdown.type,
                          static_cast<uint32_t>(shutdown.payload.size()),
                          shutdown.version, &bytes);
  bytes.insert(bytes.end(), shutdown.payload.begin(),
               shutdown.payload.end());
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  Status second = (*connection)->Receive(&frame);
  EXPECT_TRUE(second.ok()) << second.ToString();
  EXPECT_EQ(frame.type, wire::FrameType::kShutdown);
  ::close(fd);
}

}  // namespace
}  // namespace skewsearch
