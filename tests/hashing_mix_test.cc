#include "hashing/mix.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace skewsearch {
namespace {

TEST(Mix64Test, Deterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(Mix64Test, BijectiveOnSample) {
  // fmix64 is a bijection; no collisions on any sample.
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 10000; ++x) outputs.insert(Mix64(x));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64Test, AvalancheOnSingleBitFlips) {
  // Flipping one input bit should flip ~32 of 64 output bits.
  int total_flips = 0;
  const int kTrials = 64 * 100;
  for (uint64_t x = 1; x <= 100; ++x) {
    for (int bit = 0; bit < 64; ++bit) {
      uint64_t diff = Mix64(x) ^ Mix64(x ^ (uint64_t{1} << bit));
      total_flips += __builtin_popcountll(diff);
    }
  }
  double avg = static_cast<double>(total_flips) / kTrials;
  EXPECT_NEAR(avg, 32.0, 1.5);
}

TEST(Avalanche64Test, DeterministicAndDistinctFromMix64) {
  EXPECT_EQ(Avalanche64(777), Avalanche64(777));
  // Both finalizers fix 0 (xor/multiply structure), so start from 1.
  int equal = 0;
  for (uint64_t x = 1; x <= 1000; ++x) {
    if (Avalanche64(x) == Mix64(x)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(MixPairTest, OrderSensitive) {
  // Hashing ordered paths requires MixPair(a,b) != MixPair(b,a).
  int symmetric = 0;
  for (uint64_t a = 1; a <= 100; ++a) {
    uint64_t b = a * 7919 + 13;
    if (MixPair(a, b) == MixPair(b, a)) ++symmetric;
  }
  EXPECT_EQ(symmetric, 0);
}

TEST(MixPairTest, NoCollisionsOnGrid) {
  std::set<uint64_t> outputs;
  for (uint64_t a = 0; a < 100; ++a) {
    for (uint64_t b = 0; b < 100; ++b) outputs.insert(MixPair(a, b));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(ToUnitIntervalTest, RangeAndExtremes) {
  EXPECT_GE(ToUnitInterval(0), 0.0);
  EXPECT_LT(ToUnitInterval(~uint64_t{0}), 1.0);
  EXPECT_EQ(ToUnitInterval(0), 0.0);
}

TEST(ToUnitIntervalTest, UniformMean) {
  double sum = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += ToUnitInterval(Mix64(static_cast<uint64_t>(i) + 1));
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

}  // namespace
}  // namespace skewsearch
