#include "data/correlated.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "sim/intersect.h"
#include "sim/measures.h"
#include "util/random.h"

namespace skewsearch {
namespace {

TEST(CorrelatedQueryTest, AlphaOneCopiesExactly) {
  auto dist = UniformProbabilities(500, 0.1).value();
  CorrelatedQuerySampler sampler(&dist, 1.0);
  Rng rng(1);
  SparseVector x = dist.Sample(&rng);
  SparseVector q = sampler.SampleCorrelated(x.span(), &rng);
  EXPECT_EQ(q, x);
}

TEST(CorrelatedQueryTest, AlphaZeroIsIndependent) {
  auto dist = UniformProbabilities(2000, 0.05).value();
  CorrelatedQuerySampler sampler(&dist, 0.0);
  Rng rng(2);
  SparseVector x = dist.Sample(&rng);
  // Intersection with an alpha=0 query should look like two independent
  // draws: E = |x| * p = ~5.
  double total_inter = 0.0;
  const int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    SparseVector q = sampler.SampleCorrelated(x.span(), &rng);
    total_inter += static_cast<double>(IntersectSizeMerge(x.span(), q.span()));
  }
  double mean = total_inter / kTrials;
  double expected = static_cast<double>(x.size()) * 0.05;
  EXPECT_NEAR(mean, expected, 2.0);
}

TEST(CorrelatedQueryTest, MarginalIsStillD) {
  // q ~ D_alpha(x) has marginal D: E|q| = sum p_i.
  auto dist = TwoBlockProbabilities(100, 0.3, 1000, 0.01).value();
  CorrelatedQuerySampler sampler(&dist, 0.6);
  Rng rng(3);
  double total = 0.0;
  const int kTrials = 1500;
  for (int t = 0; t < kTrials; ++t) {
    SparseVector x = dist.Sample(&rng);
    total += static_cast<double>(
        sampler.SampleCorrelated(x.span(), &rng).size());
  }
  EXPECT_NEAR(total / kTrials, dist.SumP(), 1.2);
}

TEST(CorrelatedQueryTest, IntersectionMatchesTheory) {
  // E|x n q| = sum_i p_i * p_hat_i with p_hat = p(1-a) + a.
  const double alpha = 0.7;
  auto dist = UniformProbabilities(3000, 0.04).value();
  CorrelatedQuerySampler sampler(&dist, alpha);
  Rng rng(4);
  double total = 0.0;
  const int kTrials = 800;
  for (int t = 0; t < kTrials; ++t) {
    SparseVector x = dist.Sample(&rng);
    SparseVector q = sampler.SampleCorrelated(x.span(), &rng);
    total += static_cast<double>(IntersectSizeMerge(x.span(), q.span()));
  }
  double p_hat = 0.04 * (1 - alpha) + alpha;
  double expected = 3000 * 0.04 * p_hat;
  EXPECT_NEAR(total / kTrials, expected, expected * 0.05);
}

TEST(CorrelatedQueryTest, EmpiricalPearsonApproachesAlpha) {
  // Per-dimension Pearson correlation of (x_i, q_i) should be ~alpha;
  // the phi coefficient over a long uniform vector estimates it.
  const double alpha = 0.5;
  auto dist = UniformProbabilities(20000, 0.2).value();
  CorrelatedQuerySampler sampler(&dist, alpha);
  Rng rng(5);
  SparseVector x = dist.Sample(&rng);
  SparseVector q = sampler.SampleCorrelated(x.span(), &rng);
  double phi = EmpiricalPearson(x.span(), q.span(), dist.dimension());
  EXPECT_NEAR(phi, alpha, 0.05);
}

TEST(CorrelatedQueryTest, QueriesVaryAcrossCalls) {
  auto dist = UniformProbabilities(500, 0.1).value();
  CorrelatedQuerySampler sampler(&dist, 0.5);
  Rng rng(6);
  SparseVector x = dist.Sample(&rng);
  SparseVector q1 = sampler.SampleCorrelated(x.span(), &rng);
  SparseVector q2 = sampler.SampleCorrelated(x.span(), &rng);
  EXPECT_FALSE(q1 == q2);
}

TEST(CorrelatedQueryTest, ClampsAlpha) {
  auto dist = UniformProbabilities(100, 0.1).value();
  CorrelatedQuerySampler hi(&dist, 1.5);
  EXPECT_DOUBLE_EQ(hi.alpha(), 1.0);
  CorrelatedQuerySampler lo(&dist, -0.5);
  EXPECT_DOUBLE_EQ(lo.alpha(), 0.0);
}

TEST(CorrelatedQueryTest, EmptyBaseVector) {
  auto dist = UniformProbabilities(200, 0.05).value();
  CorrelatedQuerySampler sampler(&dist, 0.8);
  Rng rng(7);
  SparseVector empty;
  // q should then just be a thinned fresh sample (no crash, ids valid).
  SparseVector q = sampler.SampleCorrelated(empty.span(), &rng);
  for (ItemId id : q.ids()) EXPECT_LT(id, 200u);
}

}  // namespace
}  // namespace skewsearch
