// Transport-layer tests: loopback and TCP frame delivery, the
// handshake's version negotiation and reconstruction cross-checks, and
// the acceptance-criterion identity — a DistributedJoin served by
// remote workers (loopback or real sockets) produces output
// byte-identical to the in-process join, for any probe batch size.
// The suite name starts with "Distributed" so CI's TSan matrix picks
// it up (worker threads + sockets are exactly what TSan should watch).

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/similarity_join.h"
#include "data/generators.h"
#include "distributed/distributed_join.h"
#include "distributed/transport/session.h"
#include "distributed/transport/tcp_transport.h"
#include "distributed/transport/transport.h"
#include "util/random.h"

namespace skewsearch {
namespace {

JoinOptions AdversarialJoinOptions(double b1, uint64_t seed) {
  JoinOptions options;
  options.index.mode = IndexMode::kAdversarial;
  options.index.b1 = b1;
  options.index.repetition_boost = 3.0;
  options.index.seed = seed;
  options.threshold = b1;
  return options;
}

Dataset ZipfDataWithDuplicates(uint64_t seed, size_t n,
                               ProductDistribution* dist_out) {
  auto dist = ZipfProbabilities(2000, 1.0, 0.4).value();
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) data.Add(dist.Sample(&rng));
  for (size_t i = 0; i < n / 10; ++i) {
    data.Add(data.GetVector(static_cast<VectorId>(i * 3)));
  }
  EXPECT_TRUE(data.SetDimension(2000).ok());
  *dist_out = std::move(dist);
  return data;
}

void ExpectIdentical(const std::vector<JoinPair>& expected,
                     const std::vector<JoinPair>& got) {
  ASSERT_EQ(expected.size(), got.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].left, got[i].left) << "pair " << i;
    EXPECT_EQ(expected[i].right, got[i].right) << "pair " << i;
    EXPECT_DOUBLE_EQ(expected[i].similarity, got[i].similarity)
        << "pair " << i;
  }
}

/// One hosted worker: a thread running ServeConnection on its end of a
/// transport, with the outcome captured for the test to assert on.
struct HostedWorker {
  std::thread thread;
  Status status;
  WorkerServeStats stats;

  void Serve(std::unique_ptr<FrameConnection> connection) {
    thread = std::thread([this, conn = std::move(connection)]() mutable {
      status = ServeConnection(conn.get(), &stats);
    });
  }
  void Join() {
    if (thread.joinable()) thread.join();
  }
};

TEST(DistributedTransportTest, LoopbackDeliversFramesInOrder) {
  auto [a, b] = LoopbackPair();
  wire::HelloFrame hello;
  hello.worker_id = 0;
  hello.num_workers = 2;
  ASSERT_TRUE(a->Send(wire::EncodeHello(hello)).ok());
  ASSERT_TRUE(a->Send(wire::EncodeShutdown()).ok());
  wire::Frame frame;
  ASSERT_TRUE(b->Receive(&frame).ok());
  EXPECT_EQ(frame.type, wire::FrameType::kHello);
  ASSERT_TRUE(b->Receive(&frame).ok());
  EXPECT_EQ(frame.type, wire::FrameType::kShutdown);
  EXPECT_EQ(a->stats().frames_sent, 2u);
  EXPECT_EQ(b->stats().frames_received, 2u);
  EXPECT_EQ(a->stats().bytes_sent, b->stats().bytes_received);
  EXPECT_GT(a->stats().bytes_sent, 2 * wire::kFrameHeaderBytes - 1);
}

TEST(DistributedTransportTest, LoopbackCloseUnblocksAndFailsCleanly) {
  auto [a, b] = LoopbackPair();
  // Queued frames still drain after the peer closes...
  ASSERT_TRUE(a->Send(wire::EncodeShutdown()).ok());
  a->Close();
  wire::Frame frame;
  ASSERT_TRUE(b->Receive(&frame).ok());
  // ...then Receive and Send fail instead of blocking.
  EXPECT_FALSE(b->Receive(&frame).ok());
  EXPECT_FALSE(b->Send(wire::EncodeShutdown()).ok());

  // A Receive blocked on an open connection is woken by Close.
  auto [c, d] = LoopbackPair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    c->Close();
  });
  EXPECT_FALSE(d->Receive(&frame).ok());
  closer.join();
}

TEST(DistributedTransportTest, FrameVersionDefaultsToMinAndIsSettable) {
  // Pre-negotiation frames (the Hello) must go out under kVersionMin so
  // the oldest peer can parse the header; the session layer raises the
  // connection to the negotiated version afterwards. If the default
  // were kVersionMax, bumping the protocol would break the handshake
  // against every older worker.
  auto [a, b] = LoopbackPair();
  EXPECT_EQ(a->frame_version(), wire::kVersionMin);
  a->set_frame_version(wire::kVersionMax);
  EXPECT_EQ(a->frame_version(), wire::kVersionMax);
}

TEST(DistributedTransportTest, TcpRoundTripOnLocalhost) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  ASSERT_GT(listener->port(), 0);
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    wire::Frame frame;
    ASSERT_TRUE((*conn)->Receive(&frame).ok());
    EXPECT_EQ(frame.type, wire::FrameType::kProbeBatch);
    ASSERT_TRUE((*conn)->Send(frame).ok());  // echo
  });
  auto client = TcpConnect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  std::vector<ProbeRequest> batch(3);
  batch[0].left = 7;
  wire::Frame sent = wire::EncodeProbeBatch(batch);
  ASSERT_TRUE((*client)->Send(sent).ok());
  wire::Frame echoed;
  ASSERT_TRUE((*client)->Receive(&echoed).ok());
  EXPECT_EQ(echoed.type, sent.type);
  EXPECT_EQ(echoed.payload, sent.payload);
  server.join();
  EXPECT_EQ((*client)->stats().bytes_sent,
            wire::kFrameHeaderBytes + sent.payload.size());
}

TEST(DistributedTransportTest, TcpReceiveRejectsGarbageHeader) {
  // A peer speaking a different protocol is rejected at the header,
  // before any payload allocation.
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    wire::Frame garbage;
    garbage.type = wire::FrameType::kHello;
    garbage.payload.assign(64, 0xAB);
    // Hand-roll a bogus magic by sending a valid frame and relying on
    // the client reading raw bytes: instead, just close after sending
    // a frame whose payload the client will treat as a header.
    ASSERT_TRUE((*conn)->Send(garbage).ok());
  });
  auto client = TcpConnect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  wire::Frame frame;
  // The garbage frame *is* validly framed, so the first Receive
  // succeeds; its payload is not a valid Hello.
  ASSERT_TRUE((*client)->Receive(&frame).ok());
  wire::HelloFrame hello;
  EXPECT_FALSE(wire::DecodeHello(frame, &hello).ok());
  server.join();
}

TEST(DistributedTransportTest, ConnectToClosedPortFails) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  listener->Close();
  auto client = TcpConnect("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
}

TEST(DistributedTransportTest, WorkerRejectsDisjointVersionRange) {
  auto [coordinator, worker_end] = LoopbackPair();
  HostedWorker worker;
  worker.Serve(std::move(worker_end));
  wire::HelloFrame hello;
  hello.min_version = wire::kVersionMax + 1;  // future coordinator
  hello.max_version = wire::kVersionMax + 9;
  hello.worker_id = 0;
  hello.num_workers = 1;
  ASSERT_TRUE(coordinator->Send(wire::EncodeHello(hello)).ok());
  wire::Frame frame;
  ASSERT_TRUE(coordinator->Receive(&frame).ok());
  ASSERT_EQ(frame.type, wire::FrameType::kError);
  wire::ErrorFrame error;
  ASSERT_TRUE(wire::DecodeError(frame, &error).ok());
  EXPECT_TRUE(wire::StatusFromError(error).IsNotSupported());
  worker.Join();
  EXPECT_FALSE(worker.status.ok());
}

TEST(DistributedTransportTest, SessionRejectsInconsistentAssignment) {
  // Postings referencing a vector that was not shipped must fail the
  // attach, not silently verify against garbage.
  auto [coordinator, worker_end] = LoopbackPair();
  HostedWorker worker;
  worker.Serve(std::move(worker_end));
  wire::WorkerAssignment assignment;
  assignment.threshold = 0.5;
  assignment.postings.emplace_back(42, std::vector<VectorId>{1, 2});
  assignment.vectors.emplace_back(1, std::vector<ItemId>{3, 5});
  // id 2 is referenced but never shipped.
  auto session = RemoteWorkerSession::Start(std::move(coordinator), 0, 1,
                                            assignment);
  EXPECT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsInvalidArgument())
      << session.status().ToString();
  worker.Join();
  EXPECT_FALSE(worker.status.ok());
}

/// Attaches \p join to `workers` hosted loopback or TCP workers and
/// returns the hosts (callers join + assert on them after detaching).
enum class Transport { kLoopback, kTcp };

std::vector<std::unique_ptr<HostedWorker>> AttachHostedWorkers(
    DistributedJoin* join, Transport transport) {
  const int workers = join->num_workers();
  std::vector<std::unique_ptr<HostedWorker>> hosts;
  std::vector<std::unique_ptr<FrameConnection>> connections;
  for (int w = 0; w < workers; ++w) {
    auto host = std::make_unique<HostedWorker>();
    if (transport == Transport::kLoopback) {
      auto [coordinator_end, worker_end] = LoopbackPair();
      host->Serve(std::move(worker_end));
      connections.push_back(std::move(coordinator_end));
    } else {
      auto listener = TcpListener::Listen(0);
      EXPECT_TRUE(listener.ok());
      const uint16_t port = listener->port();
      host->thread = std::thread(
          [host = host.get(), l = std::move(listener).value()]() mutable {
            auto conn = l.Accept();
            if (!conn.ok()) {
              host->status = conn.status();
              return;
            }
            host->status = ServeConnection(conn->get(), &host->stats);
          });
      auto connection = TcpConnect("127.0.0.1", port);
      EXPECT_TRUE(connection.ok());
      connections.push_back(std::move(connection).value());
    }
    hosts.push_back(std::move(host));
  }
  EXPECT_TRUE(join->AttachRemote(std::move(connections)).ok());
  return hosts;
}

void RunRemoteIdentity(Transport transport, size_t probe_batch) {
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(91, 120, &dist);
  JoinOptions options = AdversarialJoinOptions(0.8, 91);
  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->size(), 0u) << "identity needs a non-trivial output";

  DistributedJoinOptions distributed;
  distributed.index = options.index;
  distributed.threshold = options.threshold;
  distributed.workers = 3;
  distributed.probe_batch = probe_batch;
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());
  auto hosts = AttachHostedWorkers(&join, transport);
  ASSERT_TRUE(join.remote());

  DistributedJoinStats stats;
  auto got = join.SelfJoin(&stats);
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
  EXPECT_GT(stats.wire_bytes_sent, 0u);
  EXPECT_GT(stats.wire_bytes_received, 0u);
  EXPECT_GE(stats.probe_round_trips, 1u);
  if (probe_batch == 1) {
    // Unbatched: one ProbeBatch frame per routed request, and with the
    // default pipeline window the exposed round trips collapse to the
    // per-worker drains instead of one per frame.
    size_t requests = 0;
    for (const WorkerLoad& load : stats.workers) requests += load.probes;
    EXPECT_EQ(stats.probe_batches_sent, requests);
    EXPECT_LT(stats.probe_round_trips, requests);
  }
  EXPECT_EQ(stats.worker_recoveries, 0u);
  EXPECT_EQ(stats.replayed_batches, 0u);
  const WireStats totals = join.RemoteWireTotals();
  EXPECT_GE(totals.bytes_sent, stats.wire_bytes_sent);

  join.DetachRemote();
  EXPECT_FALSE(join.remote());
  for (auto& host : hosts) {
    host->Join();
    EXPECT_TRUE(host->status.ok()) << host->status.ToString();
    EXPECT_GT(host->stats.probes, 0u);
  }

  // Detached, the same coordinator serves in-process again, identically.
  auto local = join.SelfJoin();
  ASSERT_TRUE(local.ok());
  ExpectIdentical(*expected, *local);
}

TEST(DistributedTransportTest, LoopbackJoinIdenticalToInProcess) {
  RunRemoteIdentity(Transport::kLoopback, 256);
}

TEST(DistributedTransportTest, TcpJoinIdenticalToInProcess) {
  RunRemoteIdentity(Transport::kTcp, 256);
}

TEST(DistributedTransportTest, BatchSizeDoesNotChangeOutput) {
  RunRemoteIdentity(Transport::kLoopback, 1);
  RunRemoteIdentity(Transport::kLoopback, 0);  // whole queue per frame
}

TEST(DistributedTransportTest, RemoteRSJoinIdenticalToInProcess) {
  ProductDistribution dist;
  Dataset right = ZipfDataWithDuplicates(95, 100, &dist);
  Rng rng(96);
  Dataset left;
  for (VectorId id = 0; id < 10; ++id) left.Add(right.GetVector(id * 2));
  for (int i = 0; i < 30; ++i) left.Add(dist.Sample(&rng));
  ASSERT_TRUE(left.SetDimension(2000).ok());
  JoinOptions options = AdversarialJoinOptions(0.8, 95);
  auto expected = SimilarityJoin(left, right, dist, options);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->size(), 0u);

  DistributedJoinOptions distributed;
  distributed.index = options.index;
  distributed.threshold = options.threshold;
  distributed.workers = 2;
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&right, &dist, distributed).ok());
  auto hosts = AttachHostedWorkers(&join, Transport::kLoopback);
  auto got = join.Join(left);
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
  join.DetachRemote();
  for (auto& host : hosts) {
    host->Join();
    EXPECT_TRUE(host->status.ok()) << host->status.ToString();
  }
}

TEST(DistributedTransportTest, ParallelRemoteServingMatchesSerial) {
  // threads > 1 drives each remote session from its own pool slot; the
  // merge must stay deterministic (this is the TSan target).
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(97, 120, &dist);
  JoinOptions options = AdversarialJoinOptions(0.8, 97);
  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());

  DistributedJoinOptions distributed;
  distributed.index = options.index;
  distributed.threshold = options.threshold;
  distributed.workers = 4;
  distributed.threads = 4;
  distributed.probe_batch = 16;
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());
  auto hosts = AttachHostedWorkers(&join, Transport::kLoopback);
  auto got = join.SelfJoin();
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
  join.DetachRemote();
  for (auto& host : hosts) {
    host->Join();
    EXPECT_TRUE(host->status.ok()) << host->status.ToString();
  }
}

TEST(DistributedTransportTest, AttachRemoteValidatesPreconditions) {
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(98, 60, &dist);
  DistributedJoinOptions distributed;
  distributed.index.mode = IndexMode::kAdversarial;
  distributed.index.b1 = 0.8;
  distributed.workers = 2;

  // Not built yet.
  DistributedJoin unbuilt;
  std::vector<std::unique_ptr<FrameConnection>> none;
  EXPECT_TRUE(unbuilt.AttachRemote(std::move(none)).IsInvalidArgument());

  // Wrong connection count.
  DistributedJoin join;
  ASSERT_TRUE(join.Build(&data, &dist, distributed).ok());
  std::vector<std::unique_ptr<FrameConnection>> one;
  auto [a, b] = LoopbackPair();
  one.push_back(std::move(a));
  EXPECT_TRUE(join.AttachRemote(std::move(one)).IsInvalidArgument());
  EXPECT_FALSE(join.remote());
  // The failed attach must not have broken in-process serving.
  EXPECT_TRUE(join.SelfJoin().ok());
}

TEST(DistributedTransportTest, JoinOptionsRemoteWorkersServeOverTcp) {
  // The core-level seam: SelfSimilarityJoin with remote_workers spins
  // the whole coordinator path including endpoint parsing.
  ProductDistribution dist;
  Dataset data = ZipfDataWithDuplicates(99, 100, &dist);
  JoinOptions options = AdversarialJoinOptions(0.8, 99);
  auto expected = SelfSimilarityJoin(data, dist, options);
  ASSERT_TRUE(expected.ok());

  std::vector<std::unique_ptr<HostedWorker>> hosts;
  JoinOptions remote = options;
  for (int w = 0; w < 2; ++w) {
    auto listener = TcpListener::Listen(0);
    ASSERT_TRUE(listener.ok());
    remote.remote_workers.push_back(
        "127.0.0.1:" + std::to_string(listener->port()));
    auto host = std::make_unique<HostedWorker>();
    host->thread = std::thread(
        [host = host.get(), l = std::move(listener).value()]() mutable {
          auto conn = l.Accept();
          if (!conn.ok()) {
            host->status = conn.status();
            return;
          }
          host->status = ServeConnection(conn->get(), &host->stats);
        });
    hosts.push_back(std::move(host));
  }
  JoinStats stats;
  auto got = SelfSimilarityJoin(data, dist, remote, &stats);
  ASSERT_TRUE(got.ok());
  ExpectIdentical(*expected, *got);
  EXPECT_GT(stats.wire_bytes_sent, 0u);
  EXPECT_GE(stats.probe_round_trips, 1u);
  for (auto& host : hosts) {
    host->Join();
    EXPECT_TRUE(host->status.ok()) << host->status.ToString();
  }

  // workers must match the endpoint count when both are given.
  JoinOptions mismatched = remote;
  mismatched.workers = 3;
  EXPECT_TRUE(
      SelfSimilarityJoin(data, dist, mismatched).status().IsInvalidArgument());

  // A bad endpoint fails cleanly.
  JoinOptions bad = options;
  bad.remote_workers = {"not-an-endpoint"};
  EXPECT_FALSE(SelfSimilarityJoin(data, dist, bad).ok());
}

}  // namespace
}  // namespace skewsearch
