// Reproduces Figure 1 of the paper.
//
// Paper setup: half the bits are set with probability p, the other half
// with probability p/8; the sought correlation is alpha = 2/3.
//   Red curve  = rho of the paper's data structure (Theorem 1 equation)
//   Blue curve = rho of Chosen Path solving the (b1, b2)-approximate
//                problem with b1 = E[similarity of correlated pair] and
//                b2 = E[similarity of uncorrelated pair]
//   Prefix filtering has rho = 1 here (all probabilities are Theta(1)).
//
// Expected shape (paper): ours <= Chosen Path everywhere, with a visible
// gap across the whole range, both decreasing as p -> 0.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/rho.h"

namespace skewsearch {
namespace {

void Run() {
  using bench::Fmt;
  const double alpha = 2.0 / 3.0;

  bench::Banner("Figure 1: rho vs p (half bits at p, half at p/8, alpha=2/3)");
  bench::Note("ours = Theorem 1 equation; chosen_path = log(b1)/log(b2);");
  bench::Note("prefix filtering has rho = 1 over this whole range.");

  bench::Table table({"p", "rho_ours", "rho_chosen_path", "rho_prefix",
                      "gap(cp-ours)"});
  double max_gap = 0.0, min_gap = 1.0;
  for (int step = 1; step <= 25; ++step) {
    double p = 0.02 * static_cast<double>(step);  // 0.02 .. 0.50
    std::vector<ProbabilityGroup> groups{{p, 500.0}, {p / 8.0, 500.0}};
    double ours = CorrelatedRhoGrouped(groups, alpha).value();

    // Chosen Path on the same instance: expected similarities.
    double m = 500.0 * p + 500.0 * p / 8.0;
    double b1 = (500.0 * p * ConditionalProbability(p, alpha) +
                 500.0 * (p / 8.0) * ConditionalProbability(p / 8.0, alpha)) /
                m;
    double b2 = (500.0 * p * p + 500.0 * (p / 8.0) * (p / 8.0)) / m;
    double cp = ChosenPathRho(b1, b2);
    double gap = cp - ours;
    max_gap = std::max(max_gap, gap);
    min_gap = std::min(min_gap, gap);
    table.AddRow({Fmt(p, 2), Fmt(ours, 4), Fmt(cp, 4), "1.0000",
                  Fmt(gap, 4)});
  }
  table.Print();

  bench::Banner("Shape check vs paper");
  bench::Note("paper: red (ours) strictly below blue (Chosen Path) for all "
              "p in (0, 0.5] under this skew.");
  std::printf("  measured: min gap = %.4f, max gap = %.4f -> %s\n", min_gap,
              max_gap,
              min_gap > 0.0 ? "ours strictly better everywhere (MATCHES)"
                            : "MISMATCH");

  // Sanity anchor: no skew (p == p/1) collapses the gap to ~0.
  std::vector<ProbabilityGroup> uniform{{0.25, 1000.0}};
  double ours_u = CorrelatedRhoGrouped(uniform, alpha).value();
  double cp_u = ChosenPathRho(ConditionalProbability(0.25, alpha), 0.25);
  std::printf(
      "  no-skew anchor (p=0.25 uniform): ours=%.4f chosen_path=%.4f "
      "(must coincide): %s\n",
      ours_u, cp_u, std::abs(ours_u - cp_u) < 1e-6 ? "MATCHES" : "MISMATCH");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::Run();
  return 0;
}
