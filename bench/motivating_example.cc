// Reproduces the Section 1 motivating example: on the "harmonic"
// distribution p_k = 1/k, splitting a search for overlap >= b1|q| into a
// frequent-half search (overlap >= ell|q|) OR a rare-half search
// (overlap >= (b1-ell)|q|) and balancing ell beats the single unsplit
// search whenever the frequent/rare background intersections differ.
//
// Part A sweeps ell and prints the analytic exponents; Part B builds the
// actual SplitSearcher and an unsplit index and measures candidate work
// and recall on near-duplicate queries.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/skewed_index.h"
#include "core/split_search.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using bench::Fmt;

void AnalyticPart() {
  bench::Banner(
      "Motivating example, Part A: harmonic distribution, b1 = 0.5");
  auto dist = HarmonicProbabilities(100000).value();

  auto balanced = SplitSearcher::Analyze(dist, 4096, 0.5).value();
  bench::Note("unsplit Chosen-Path exponent: rho = " +
              Fmt(balanced.rho_unsplit, 3));
  bench::Note("frequency split at p >= " +
              bench::FmtSci(balanced.split_probability) + " (" +
              Fmt(balanced.frequent_items) + " frequent / " +
              Fmt(balanced.rare_items) + " rare items)");

  bench::Table table(
      {"ell", "rho_frequent", "rho_rare", "max", "beats unsplit?"});
  for (double ell : {0.05, 0.15, 0.25, 0.35, 0.40, 0.45}) {
    auto plan = SplitSearcher::Analyze(dist, 4096, 0.5, -1.0, ell).value();
    double mx = std::max(plan.rho_frequent, plan.rho_rare);
    table.AddRow({Fmt(ell, 2), Fmt(plan.rho_frequent, 3),
                  Fmt(plan.rho_rare, 3), Fmt(mx, 3),
                  mx < plan.rho_unsplit ? "yes" : "no"});
  }
  auto best = balanced;
  table.AddRow({Fmt(best.ell, 3) + " (auto)", Fmt(best.rho_frequent, 3),
                Fmt(best.rho_rare, 3),
                Fmt(std::max(best.rho_frequent, best.rho_rare), 3),
                std::max(best.rho_frequent, best.rho_rare) <
                        best.rho_unsplit
                    ? "yes"
                    : "no"});
  table.Print();
  std::printf(
      "  paper shape: balanced split strictly below unsplit (%.3f < %.3f): "
      "%s\n",
      std::max(best.rho_frequent, best.rho_rare), best.rho_unsplit,
      std::max(best.rho_frequent, best.rho_rare) < best.rho_unsplit
          ? "MATCHES"
          : "MISMATCH");
}

void MeasuredPart() {
  bench::Banner("Motivating example, Part B: measured (harmonic data)");
  const double b1 = 0.5;
  auto dist = HarmonicProbabilities(50000).value();
  bench::Table table({"n", "split cand/q", "unsplit cand/q", "split recall",
                      "unsplit recall"});
  for (size_t n : {512, 1024, 2048}) {
    Rng rng(0x3011 + n);
    Dataset data = GenerateDataset(dist, n, &rng);

    SplitSearcher split;
    SplitSearchOptions split_options;
    split_options.b1 = b1;
    split_options.index.repetitions = 8;
    if (!split.Build(&data, &dist, split_options).ok()) continue;

    SkewedPathIndex unsplit;
    SkewedIndexOptions unsplit_options;
    unsplit_options.mode = IndexMode::kAdversarial;
    unsplit_options.b1 = b1;
    unsplit_options.repetitions = 8;
    if (!unsplit.Build(&data, &dist, unsplit_options).ok()) continue;

    const int kQueries = 40;
    double sc = 0, uc = 0;
    int sf = 0, uf = 0;
    for (int t = 0; t < kQueries; ++t) {
      // Query = stored vector with ~30% of items dropped (B ~ 0.7 > b1).
      VectorId target = static_cast<VectorId>(rng.NextBounded(n));
      auto items = data.Get(target);
      std::vector<ItemId> ids;
      for (ItemId item : items) {
        if (rng.NextBernoulli(0.7)) ids.push_back(item);
      }
      if (ids.empty()) {
        ++sf;
        ++uf;
        continue;
      }
      SparseVector q = SparseVector::FromSorted(std::move(ids));
      QueryStats s;
      if (split.Query(q.span(), &s)) ++sf;
      sc += static_cast<double>(s.candidates);
      if (unsplit.Query(q.span(), &s)) ++uf;
      uc += static_cast<double>(s.candidates);
    }
    table.AddRow({Fmt(n), Fmt(sc / kQueries, 1), Fmt(uc / kQueries, 1),
                  Fmt(static_cast<double>(sf) / kQueries, 2),
                  Fmt(static_cast<double>(uf) / kQueries, 2)});
  }
  table.Print();
  bench::Note("shape: both indexes answer the queries; the split plan's");
  bench::Note("advantage is in the analytic exponents above (the paper's");
  bench::Note("own point — the example motivates the principled recursive");
  bench::Note("structure, which the unsplit skew-adaptive index embodies).");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::AnalyticPart();
  skewsearch::MeasuredPart();
  return 0;
}
