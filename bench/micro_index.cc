// Microbenchmarks: end-to-end index operations — filter generation, build
// throughput, and query latency for the paper's index and the baselines.

#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/chosen_path.h"
#include "baselines/prefix_filter.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

struct Fixture {
  ProductDistribution dist;
  Dataset data;
  SkewedPathIndex index;
  CorrelatedQuerySampler sampler;

  static Fixture& Get() {
    static Fixture* fixture = [] {
      auto f = new Fixture();
      return f;
    }();
    return *fixture;
  }

  Fixture()
      : dist(TwoBlockProbabilities(150, 0.25, 10000, 0.005).value()),
        sampler(&dist, 0.7) {
    Rng rng(1);
    data = GenerateDataset(dist, 2048, &rng);
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = 0.7;
    options.repetitions = 8;
    options.delta = 0.1;
    index.Build(&data, &dist, options).ok();
  }
};

void BM_ComputeFilterKeys(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(2);
  SparseVector x = f.dist.Sample(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index.ComputeFilterKeys(x.span()));
  }
}
BENCHMARK(BM_ComputeFilterKeys);

void BM_SkewedIndexQuery(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(3);
  SparseVector q =
      f.sampler.SampleCorrelated(f.data.Get(17), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index.Query(q.span()));
  }
}
BENCHMARK(BM_SkewedIndexQuery);

void BM_SkewedIndexBuild(benchmark::State& state) {
  auto dist = TwoBlockProbabilities(100, 0.25, 4000, 0.005).value();
  Rng rng(4);
  Dataset data = GenerateDataset(dist, static_cast<size_t>(state.range(0)),
                                 &rng);
  for (auto _ : state) {
    SkewedPathIndex index;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = 0.7;
    options.repetitions = 4;
    options.delta = 0.1;
    benchmark::DoNotOptimize(index.Build(&data, &dist, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SkewedIndexBuild)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMillisecond);

void BM_PrefixFilterQuery(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  PrefixFilterIndex prefix;
  PrefixFilterOptions options;
  options.b1 = 0.5;
  if (!prefix.Build(&f.data, options).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  Rng rng(5);
  SparseVector q = f.sampler.SampleCorrelated(f.data.Get(17), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prefix.Query(q.span()));
  }
}
BENCHMARK(BM_PrefixFilterQuery);

void BM_ChosenPathQuery(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  ChosenPathIndex cp;
  ChosenPathOptions options;
  options.b1 = 0.6;
  options.b2 = 0.15;
  options.repetitions = 8;
  options.verify_threshold = 0.5;
  if (!cp.Build(&f.data, &f.dist, options).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  Rng rng(6);
  SparseVector q = f.sampler.SampleCorrelated(f.data.Get(17), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cp.Query(q.span()));
  }
}
BENCHMARK(BM_ChosenPathQuery);

void BM_DistributionSample(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.dist.Sample(&rng));
  }
}
BENCHMARK(BM_DistributionSample);

}  // namespace
}  // namespace skewsearch

BENCHMARK_MAIN();
