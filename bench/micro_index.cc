// Copyright 2026 The skewsearch Authors.
// Microbenchmarks: end-to-end index operations — filter generation,
// build throughput, and query latency for the paper's index and the
// baselines. Standalone timer harness (bench_util.h).
//
// Flags: --json FILE   write metrics JSON (see bench_util.h)

#include <string>
#include <vector>

#include "baselines/chosen_path.h"
#include "baselines/prefix_filter.h"
#include "bench_util.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

int Run(int argc, char** argv) {
  bench::Banner("Index micro-operations");
  bench::JsonReporter reporter("micro_index");

  auto dist = TwoBlockProbabilities(150, 0.25, 10000, 0.005).value();
  Rng rng(1);
  Dataset data = GenerateDataset(dist, 2048, &rng);
  CorrelatedQuerySampler sampler(&dist, 0.7);

  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = 0.7;
  options.repetitions = 8;
  options.delta = 0.1;
  if (!index.Build(&data, &dist, options).ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }

  bench::Table table({"operation", "ns/op"});

  Rng key_rng(2);
  SparseVector x = dist.Sample(&key_rng);
  const double keys_ns = bench::NsPerOp(
      [&] { bench::DoNotOptimize(index.ComputeFilterKeys(x.span())); }, 5,
      0.02);
  table.AddRow({"ComputeFilterKeys", bench::Fmt(keys_ns, 1)});
  reporter.Metric("compute_filter_keys_ns", keys_ns, /*stable=*/false, "ns");
  reporter.Metric("filter_keys_per_vector",
                  static_cast<double>(index.ComputeFilterKeys(x.span()).size()),
                  /*stable=*/true, "keys");

  Rng query_rng(3);
  SparseVector q = sampler.SampleCorrelated(data.Get(17), &query_rng);
  const double query_ns = bench::NsPerOp(
      [&] { bench::DoNotOptimize(index.Query(q.span())); }, 5, 0.02);
  table.AddRow({"SkewedPathIndex::Query", bench::Fmt(query_ns, 1)});
  reporter.Metric("query_ns", query_ns, /*stable=*/false, "ns");

  {
    auto small_dist = TwoBlockProbabilities(100, 0.25, 4000, 0.005).value();
    Rng build_rng(4);
    Dataset small = GenerateDataset(small_dist, 1024, &build_rng);
    SkewedIndexOptions build_options;
    build_options.mode = IndexMode::kCorrelated;
    build_options.alpha = 0.7;
    build_options.repetitions = 4;
    build_options.delta = 0.1;
    const double build_ns = bench::NsPerOp(
        [&] {
          SkewedPathIndex fresh;
          bench::DoNotOptimize(fresh.Build(&small, &small_dist,
                                           build_options));
        },
        3, 0.05);
    table.AddRow({"Build(n=1024)", bench::Fmt(build_ns, 0)});
    reporter.Metric("build_1024_ns", build_ns, /*stable=*/false, "ns");
  }

  {
    PrefixFilterIndex prefix;
    PrefixFilterOptions prefix_options;
    prefix_options.b1 = 0.5;
    if (prefix.Build(&data, prefix_options).ok()) {
      Rng prefix_rng(5);
      SparseVector pq = sampler.SampleCorrelated(data.Get(17), &prefix_rng);
      const double prefix_ns = bench::NsPerOp(
          [&] { bench::DoNotOptimize(prefix.Query(pq.span())); }, 5, 0.02);
      table.AddRow({"PrefixFilter::Query", bench::Fmt(prefix_ns, 1)});
      reporter.Metric("prefix_query_ns", prefix_ns, /*stable=*/false, "ns");
    }
  }

  {
    ChosenPathIndex cp;
    ChosenPathOptions cp_options;
    cp_options.b1 = 0.6;
    cp_options.b2 = 0.15;
    cp_options.repetitions = 8;
    cp_options.verify_threshold = 0.5;
    if (cp.Build(&data, &dist, cp_options).ok()) {
      Rng cp_rng(6);
      SparseVector cq = sampler.SampleCorrelated(data.Get(17), &cp_rng);
      const double cp_ns = bench::NsPerOp(
          [&] { bench::DoNotOptimize(cp.Query(cq.span())); }, 5, 0.02);
      table.AddRow({"ChosenPath::Query", bench::Fmt(cp_ns, 1)});
      reporter.Metric("chosen_path_query_ns", cp_ns, /*stable=*/false, "ns");
    }
  }

  Rng sample_rng(7);
  const double sample_ns = bench::NsPerOp(
      [&] { bench::DoNotOptimize(dist.Sample(&sample_rng)); }, 5, 0.02);
  table.AddRow({"ProductDistribution::Sample", bench::Fmt(sample_ns, 1)});
  table.Print();

  return reporter.WriteIfRequested(argc, argv) ? 0 : 1;
}

}  // namespace
}  // namespace skewsearch

int main(int argc, char** argv) { return skewsearch::Run(argc, argv); }
