// Copyright 2026 The skewsearch Authors.
// Shared console-table helpers for the paper-reproduction benches.

#ifndef SKEWSEARCH_BENCH_BENCH_UTIL_H_
#define SKEWSEARCH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace skewsearch::bench {

/// Prints a "== title ==" banner.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints an indented free-text note.
inline void Note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// \brief Minimal fixed-width table printer.
///
/// Columns are sized to the widest cell. Use AddRow with pre-formatted
/// strings (see Fmt below).
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf(" ");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    size_t total = widths.size() + 1;
    for (size_t w : widths) total += w + 1;
    std::printf(" %s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting into a std::string.
inline std::string Fmt(double value, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

/// Integer formatting.
inline std::string Fmt(size_t value) { return std::to_string(value); }
inline std::string Fmt(int value) { return std::to_string(value); }

/// Scientific notation for tiny values.
inline std::string FmtSci(double value, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

}  // namespace skewsearch::bench

#endif  // SKEWSEARCH_BENCH_BENCH_UTIL_H_
