// Copyright 2026 The skewsearch Authors.
// Shared helpers for the paper-reproduction benches: console tables, a
// standalone micro-timer, and the machine-readable JSON output contract.
//
// Every bench binary accepts `--json FILE` and, when given, writes its
// headline metrics as one JSON document (schema below) next to its
// usual console tables. tools/bench_compare.py diffs such a document
// against the committed BENCH_baseline.json, failing CI when a metric
// marked *stable* (deterministic on 1 CPU: counts, bytes, sizes) drifts
// beyond tolerance; *advisory* metrics (wall clock, speedups) are
// reported but never fail the build.
//
// JSON schema (one object per bench run):
//   {
//     "bench": "<name>",
//     "metrics": {
//       "<metric>": {"value": <number>, "stable": true|false,
//                     "unit": "<string>"},
//       ...
//     }
//   }

#ifndef SKEWSEARCH_BENCH_BENCH_UTIL_H_
#define SKEWSEARCH_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace skewsearch::bench {

/// Prints a "== title ==" banner.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints an indented free-text note.
inline void Note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// \brief Minimal fixed-width table printer.
///
/// Columns are sized to the widest cell. Use AddRow with pre-formatted
/// strings (see Fmt below).
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf(" ");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    size_t total = widths.size() + 1;
    for (size_t w : widths) total += w + 1;
    std::printf(" %s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting into a std::string.
inline std::string Fmt(double value, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

/// Integer formatting.
inline std::string Fmt(size_t value) { return std::to_string(value); }
inline std::string Fmt(int value) { return std::to_string(value); }

/// Scientific notation for tiny values.
inline std::string FmtSci(double value, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

/// Compiler barrier: keeps \p value (and everything feeding it) alive
/// through optimization, the standalone stand-in for
/// benchmark::DoNotOptimize.
template <typename T>
inline void DoNotOptimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile T sink = value;
  (void)sink;
#endif
}

/// Nanoseconds per call of \p fn: calibrates a batch size until one
/// batch runs >= \p min_batch_seconds, then times \p repeats batches and
/// returns the fastest (minimum damps scheduler noise — the standard
/// micro-bench estimator for a quiet machine).
template <typename F>
inline double NsPerOp(F&& fn, int repeats = 5,
                      double min_batch_seconds = 0.01) {
  using Clock = std::chrono::steady_clock;
  auto run_batch = [&](uint64_t iters) {
    const auto start = Clock::now();
    for (uint64_t i = 0; i < iters; ++i) fn();
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  uint64_t iters = 1;
  double seconds = run_batch(iters);
  while (seconds < min_batch_seconds && iters < (uint64_t{1} << 40)) {
    iters *= 4;
    seconds = run_batch(iters);
  }
  double best = seconds;
  for (int r = 1; r < repeats; ++r) {
    best = std::min(best, run_batch(iters));
  }
  return best * 1e9 / static_cast<double>(iters);
}

/// Returns the value following `--json` in \p argv, or nullptr. Every
/// bench passes its raw argc/argv here; the flag composes with each
/// bench's own flag parsing (all of them skip unknown pairs).
inline const char* JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return nullptr;
}

/// \brief Collects named metrics and writes the bench JSON document.
///
/// Usage:
///   bench::JsonReporter reporter("micro_intersect");
///   reporter.Metric("intersect_size_4096", size, /*stable=*/true);
///   reporter.Metric("kernel_speedup", speedup, /*stable=*/false, "x");
///   reporter.WriteIfRequested(argc, argv);   // honors --json FILE
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Records one metric. \p stable marks values that are deterministic
  /// for a fixed seed on 1 CPU (counts, bytes, ratios of counts) — the
  /// ones bench_compare.py enforces; wall-clock-derived values must
  /// pass stable=false. Non-finite values are stored as null (compare
  /// treats them as advisory-only).
  void Metric(const std::string& name, double value, bool stable,
              const std::string& unit = "") {
    metrics_.push_back({name, value, stable, unit});
  }

  /// Serializes the document. Deterministic field order (insertion).
  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + bench_name_ +
                      "\",\n  \"metrics\": {\n";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const Entry& m = metrics_[i];
      char value[64];
      if (std::isfinite(m.value)) {
        std::snprintf(value, sizeof(value), "%.17g", m.value);
      } else {
        std::snprintf(value, sizeof(value), "null");
      }
      out += "    \"" + m.name + "\": {\"value\": " + value +
             ", \"stable\": " + (m.stable ? "true" : "false") +
             ", \"unit\": \"" + m.unit + "\"}";
      out += i + 1 < metrics_.size() ? ",\n" : "\n";
    }
    out += "  }\n}\n";
    return out;
  }

  /// Writes to \p path; returns false (with a note on stderr) on IO
  /// failure so benches can propagate a nonzero exit.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write bench JSON to '%s'\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    return ok;
  }

  /// Honors `--json FILE` if present in \p argv; no-op (and success)
  /// otherwise.
  bool WriteIfRequested(int argc, char** argv) const {
    const char* path = JsonPathFromArgs(argc, argv);
    return path == nullptr ? true : WriteTo(path);
  }

 private:
  struct Entry {
    std::string name;
    double value;
    bool stable;
    std::string unit;
  };

  std::string bench_name_;
  std::vector<Entry> metrics_;
};

/// Appends the global metrics registry snapshot to \p reporter as
/// "obs.<name>" metrics — the bench-side view of what the
/// observability layer recorded during the run (docs/OBSERVABILITY.md
/// has the catalog). Everything is advisory: registries are
/// process-cumulative and some recorders run on racing threads, so the
/// values are for the log, not the regression gate.
inline void ReportRegistrySnapshot(JsonReporter* reporter) {
  for (const obs::MetricSnapshot& m :
       obs::MetricsRegistry::Global().Snapshot()) {
    switch (m.kind) {
      case obs::MetricKind::kCounter:
        reporter->Metric("obs." + m.name,
                         static_cast<double>(m.counter_value),
                         /*stable=*/false);
        break;
      case obs::MetricKind::kGauge:
        reporter->Metric("obs." + m.name,
                         static_cast<double>(m.gauge_value),
                         /*stable=*/false);
        break;
      case obs::MetricKind::kHistogram:
        reporter->Metric("obs." + m.name + ".count",
                         static_cast<double>(m.histogram.count),
                         /*stable=*/false);
        reporter->Metric("obs." + m.name + ".p99",
                         static_cast<double>(m.histogram.Quantile(0.99)),
                         /*stable=*/false, "ns");
        break;
    }
  }
}

}  // namespace skewsearch::bench

#endif  // SKEWSEARCH_BENCH_BENCH_UTIL_H_
