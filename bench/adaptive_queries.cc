// Theorem 2's query adaptivity: on one fixed adversarial index, the query
// cost exponent rho(q) depends on the *query's own* frequency profile —
// queries over rare items are cheap, queries over frequent items are
// expensive. We compose queries with a varying rare-item fraction, solve
// the per-query equation sum_{i in q} p_i^rho = b1 |q|, and check that
// measured candidate counts increase monotonically with the analytic
// rho(q).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/rho.h"
#include "core/skewed_index.h"
#include "data/generators.h"
#include "stats/summary.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using bench::Fmt;

void Run() {
  const double b1 = 0.5;
  const size_t n = 4096;
  // 200 frequent dims at 0.3, 60000 rare at 0.002.
  auto dist = TwoBlockProbabilities(200, 0.3, 60000, 0.002).value();
  Rng rng(0xada9);
  Dataset data = GenerateDataset(dist, n, &rng);

  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kAdversarial;
  options.b1 = b1;
  options.repetitions = 6;
  if (!index.Build(&data, &dist, options).ok()) {
    std::printf("build failed\n");
    return;
  }

  bench::Banner("Theorem 2 adaptivity: one index, queries of varying mix");
  bench::Note("query size fixed at 80 items; rare fraction varies.");
  bench::Table table({"rare fraction", "analytic rho(q)",
                      "candidates/q (mean)", "candidates/q (p90)"});

  std::vector<double> rhos, costs;
  for (double rare_fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const size_t kQuerySize = 80;
    size_t rare_count =
        static_cast<size_t>(rare_fraction * static_cast<double>(kQuerySize));
    size_t freq_count = kQuerySize - rare_count;

    // Analytic rho(q) for this composition.
    std::vector<ProbabilityGroup> groups;
    if (freq_count > 0) {
      groups.push_back({0.3, static_cast<double>(freq_count)});
    }
    if (rare_count > 0) {
      groups.push_back({0.002, static_cast<double>(rare_count)});
    }
    double rho_q = AdversarialQueryRhoGrouped(groups, b1).value();

    std::vector<double> per_query;
    const int kQueries = 40;
    for (int t = 0; t < kQueries; ++t) {
      std::vector<ItemId> ids;
      while (ids.size() < freq_count) {
        ItemId candidate = static_cast<ItemId>(rng.NextBounded(200));
        if (std::find(ids.begin(), ids.end(), candidate) == ids.end()) {
          ids.push_back(candidate);
        }
      }
      while (ids.size() < kQuerySize) {
        ItemId candidate =
            static_cast<ItemId>(200 + rng.NextBounded(60000));
        if (std::find(ids.begin(), ids.end(), candidate) == ids.end()) {
          ids.push_back(candidate);
        }
      }
      QueryStats stats;
      // Threshold 2.0: enumerate candidates without returning matches.
      index.QueryAll(SparseVector::FromIds(ids).span(), 2.0, &stats);
      per_query.push_back(static_cast<double>(stats.candidates));
    }
    Summary summary = Summarize(per_query);
    rhos.push_back(rho_q);
    costs.push_back(summary.mean);
    table.AddRow({Fmt(rare_fraction, 2), Fmt(rho_q, 3),
                  Fmt(summary.mean, 1), Fmt(summary.p90, 1)});
  }
  table.Print();

  bool monotone = true;
  for (size_t i = 1; i < costs.size(); ++i) {
    // rho decreases with rare fraction; costs must not increase.
    if (rhos[i] > rhos[i - 1] + 1e-9) monotone = false;
    if (costs[i] > costs[i - 1] * 1.25 + 2.0) monotone = false;
  }
  std::printf(
      "  shape: analytic rho(q) decreases with rare fraction and measured "
      "cost follows: %s\n",
      monotone ? "MATCHES" : "MISMATCH");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::Run();
  return 0;
}
