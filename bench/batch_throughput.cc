// Copyright 2026 The skewsearch Authors.
// Batch-query throughput vs. thread count on a Zipf-skewed workload.
//
// Builds the paper's index over a Zipfian dataset, then answers the same
// query batch with BatchQuery() at increasing worker counts, reporting
// queries/sec, speedup over one thread, and the aggregated batch stats.
// A final verification pass asserts the parallel results are identical
// to the serial ones (the engine's core determinism contract).
//
// Flags: --n <dataset> --queries <batch> --alpha <corr> --threads <list>
//        --rounds <timed repetitions> --json <file> (see bench_util.h)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {
namespace {

struct Config {
  size_t n = 20000;
  size_t num_queries = 4000;
  double alpha = 0.8;
  int rounds = 3;
  std::vector<int> threads = {1, 2, 4, 8};
};

std::vector<int> ParseThreadList(const char* text) {
  std::vector<int> out;
  std::string token;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      // Non-numeric or non-positive entries degrade to 1 worker, the
      // same clamp ThreadPool itself applies.
      if (!token.empty()) out.push_back(std::max(1, std::atoi(token.c_str())));
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return out.empty() ? std::vector<int>{1} : out;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--n") == 0) {
      config.n = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      config.num_queries = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--alpha") == 0) {
      config.alpha = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      config.rounds = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.threads = ParseThreadList(argv[i + 1]);
    }
  }
  return config;
}

bool SameResults(const std::vector<std::optional<Match>>& a,
                 const std::vector<std::optional<Match>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].has_value() != b[i].has_value()) return false;
    if (a[i].has_value() &&
        (a[i]->id != b[i]->id || a[i]->similarity != b[i]->similarity)) {
      return false;
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  Config config = ParseArgs(argc, argv);
  bench::JsonReporter reporter("batch_throughput");

  bench::Banner("Batch-query throughput vs. thread count (Zipf workload)");
  bench::Note("hardware threads available: " +
              std::to_string(std::thread::hardware_concurrency()));

  auto dist = ZipfProbabilities(2000, 1.0, 0.3).value();
  Rng rng(99);
  Dataset data = GenerateDataset(dist, config.n, &rng);
  Dataset queries;
  CorrelatedQuerySampler sampler(&dist, config.alpha);
  for (size_t i = 0; i < config.num_queries; ++i) {
    SparseVector q = sampler.SampleCorrelated(
        data.Get(static_cast<VectorId>(i % data.size())), &rng);
    queries.Add(q.span());
  }

  SkewedPathIndex index;
  SkewedIndexOptions options;
  options.mode = IndexMode::kCorrelated;
  options.alpha = config.alpha;
  options.build_threads = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  Status built = index.Build(&data, &dist, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
    return 1;
  }
  bench::Note("index built: n=" + std::to_string(config.n) +
              ", repetitions=" + std::to_string(index.repetitions()) +
              ", build=" + bench::Fmt(index.build_stats().build_seconds) +
              "s");

  const auto baseline = index.BatchQuery(queries, 1);
  size_t matches = 0;
  for (const auto& m : baseline) {
    if (m.has_value()) ++matches;
  }
  reporter.Metric("repetitions", index.repetitions(), /*stable=*/true, "reps");
  reporter.Metric("matches", static_cast<double>(matches), /*stable=*/true,
                  "queries");
  double serial_qps = 0.0;
  bool all_identical = true;

  bench::Table table({"threads", "qps", "speedup", "wall_s", "cand/query",
                      "identical"});
  for (int threads : config.threads) {
    ThreadPool pool(threads);
    // Warm-up pass (pages in postings, sizes scratch buffers), then the
    // timed rounds; report the best round to damp scheduler noise.
    std::vector<std::optional<Match>> results =
        index.BatchQuery(queries, &pool);
    double best_seconds = 0.0;
    BatchQueryStats agg;
    for (int round = 0; round < config.rounds; ++round) {
      BatchQueryStats round_stats;
      results = index.BatchQuery(queries, &pool, nullptr, &round_stats);
      if (round == 0 || round_stats.wall_seconds < best_seconds) {
        best_seconds = round_stats.wall_seconds;
        agg = round_stats;
      }
    }
    const bool identical = SameResults(baseline, results);
    all_identical = all_identical && identical;
    const double qps =
        best_seconds > 0.0 ? static_cast<double>(queries.size()) / best_seconds
                           : 0.0;
    if (threads == 1) {
      serial_qps = qps;
      // Candidate volume is seed-deterministic (parallelism only shards
      // the batch); qps and speedups are machine-dependent wall clock.
      reporter.Metric("candidates_total",
                      static_cast<double>(agg.totals.candidates),
                      /*stable=*/true, "candidates");
    }
    reporter.Metric("qps_t" + std::to_string(threads), qps, /*stable=*/false,
                    "queries/s");
    if (serial_qps > 0.0 && threads != 1) {
      reporter.Metric("speedup_t" + std::to_string(threads), qps / serial_qps,
                      /*stable=*/false, "x");
    }
    table.AddRow({bench::Fmt(threads), bench::Fmt(qps, 0),
                  serial_qps > 0.0 ? bench::Fmt(qps / serial_qps, 2) + "x"
                                   : "-",
                  bench::Fmt(best_seconds, 4),
                  agg.queries > 0
                      ? bench::Fmt(static_cast<double>(agg.totals.candidates) /
                                       static_cast<double>(agg.queries),
                                   1)
                      : "-",
                  identical ? "yes" : "NO"});
  }
  table.Print();
  bench::Note(all_identical
                  ? "parallel results byte-identical to serial: OK"
                  : "DETERMINISM VIOLATION: parallel results differ!");
  reporter.Metric("results_identical", all_identical ? 1.0 : 0.0,
                  /*stable=*/true, "bool");
  if (!reporter.WriteIfRequested(argc, argv)) return 1;
  return all_identical ? 0 : 2;
}

}  // namespace
}  // namespace skewsearch

int main(int argc, char** argv) { return skewsearch::Run(argc, argv); }
