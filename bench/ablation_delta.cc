// Ablation on the sampling boost delta of the correlated policy
// (Section 6). The paper proves correctness with delta = 3/sqrt(alpha*C)
// but remarks "a smaller constant is likely sufficient in practice" — this
// bench quantifies the trade-off: larger delta buys per-repetition success
// probability at the price of n^{ln(1+delta)} extra filters.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using bench::Fmt;

void Run() {
  const double alpha = 2.0 / 3.0;
  const size_t n = 2048;
  auto dist = TwoBlockProbabilities(200, 0.25, 20000, 0.005).value();
  Rng rng(0xde17a);
  Dataset data = GenerateDataset(dist, n, &rng);
  const double c_constant = dist.CForN(n);
  const double paper_delta = 3.0 / std::sqrt(alpha * c_constant);

  bench::Banner("Ablation: sampling boost delta (Sec. 6)");
  bench::Note("C = " + Fmt(c_constant, 1) +
              ", paper delta = 3/sqrt(alpha C) = " + Fmt(paper_delta, 2));
  bench::Table table({"delta", "reps", "filters/elem", "recall", "cand/q",
                      "build s"});

  for (double delta : {0.0, 0.05, 0.1, 0.2, 0.3, paper_delta}) {
    // Fixed *small* repetition count isolates the per-repetition success
    // probability, which is what delta buys.
    SkewedPathIndex index;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = alpha;
    options.repetitions = 2;
    options.delta = delta;
    if (!index.Build(&data, &dist, options).ok()) continue;

    CorrelatedQuerySampler sampler(&dist, alpha);
    Rng qrng(0x9999);
    const int kQueries = 60;
    int found = 0;
    double candidates = 0;
    for (int t = 0; t < kQueries; ++t) {
      VectorId target = static_cast<VectorId>(qrng.NextBounded(n));
      SparseVector q = sampler.SampleCorrelated(data.Get(target), &qrng);
      QueryStats s;
      auto h = index.Query(q.span(), &s);
      found += (h && h->id == target);
      candidates += static_cast<double>(s.candidates);
    }
    table.AddRow({Fmt(delta, 2) + (delta == paper_delta ? " (paper)" : ""),
                  Fmt(index.repetitions()),
                  Fmt(index.build_stats().avg_filters_per_element, 1),
                  Fmt(static_cast<double>(found) / kQueries, 2),
                  Fmt(candidates / kQueries, 1),
                  Fmt(index.build_stats().build_seconds, 2)});
  }
  table.Print();
  bench::Note("expected shape: recall rises with delta and saturates well");
  bench::Note("below the paper's conservative value, while filters/element");
  bench::Note("and candidate cost keep growing — supporting the paper's");
  bench::Note("'smaller constant suffices in practice' remark.");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::Run();
  return 0;
}
