// Reproduces Figure 2 of the paper: item-frequency profiles of the ten
// datasets from the Mann et al. set-similarity benchmark, plotted as
// y = 1 + log_n(p_j) against (left) j/d and (right) log_d(j).
//
// SUBSTITUTION: the original datasets are replaced by shape-matched
// synthetic stand-ins (see DESIGN.md §5); the figure's point — that every
// dataset is strongly skewed and approximately piecewise-Zipfian — is a
// property of the frequency curves, which the stand-ins match by
// construction. A plain Zipfian would be linear on the right plot.

#include <cstdio>

#include "bench_util.h"
#include "data/mann_profiles.h"
#include "stats/skew_profile.h"
#include "util/random.h"

namespace skewsearch {
namespace {

void Run() {
  using bench::Fmt;
  bench::Banner("Figure 2: frequency skew of Mann et al. dataset stand-ins");
  bench::Note("y = 1 + log_n(p_j); left x = j/d, right x = log_d(j).");

  Rng rng(0xf16f16);
  for (const MannProfileSpec& spec : AllMannProfiles()) {
    MannProfileSpec scaled = spec;
    scaled.n = std::min<size_t>(spec.n, 8000);  // bench-speed scale
    auto inst = BuildMannInstance(scaled, &rng);
    if (!inst.ok()) {
      std::printf("  %s: ERROR %s\n", spec.name.c_str(),
                  inst.status().ToString().c_str());
      continue;
    }
    SkewProfile profile = ComputeSkewProfile(inst->data);
    double zipf = FitZipfExponent(profile);

    std::printf("\n  -- %s (n=%zu, d=%zu, avg |x| = %.1f, fitted Zipf "
                "exponent %.2f)\n",
                spec.name.c_str(), profile.n, profile.d,
                inst->data.AverageSize(), zipf);
    auto linear = LinearAxisSeries(profile, 9);
    auto log = LogAxisSeries(profile, 9);
    bench::Table table({"j/d", "1+log_n(p_j)", "|", "log_d(j)",
                        "1+log_n(p_j) "});
    for (size_t k = 0; k < std::max(linear.size(), log.size()); ++k) {
      std::vector<std::string> row = {"", "", "|", "", ""};
      if (k < linear.size()) {
        row[0] = bench::FmtSci(linear[k].x);
        row[1] = Fmt(linear[k].y, 3);
      }
      if (k < log.size()) {
        row[3] = Fmt(log[k].x, 3);
        row[4] = Fmt(log[k].y, 3);
      }
      table.AddRow(row);
    }
    table.Print();
  }

  bench::Banner("Shape check vs paper");
  bench::Note("paper: all ten datasets show significant skew; curves are");
  bench::Note("approximately piecewise-Zipfian (piecewise-linear on the");
  bench::Note("log-rank plot), not plain Zipfian. The stand-ins reproduce");
  bench::Note("this: y spans a wide range (strong skew) and the right-plot");
  bench::Note("series bends between the head and tail segments.");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::Run();
  return 0;
}
