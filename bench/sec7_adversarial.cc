// Reproduces the Section 7.1 worked examples (adversarial queries).
//
// Setup (paper): query q has two types of bits — half set with probability
// pa = 1/4 and half with pb = n^{-0.9}; sum_i p_i = |q| = Theta(log n).
//
//   (a) b1 = 1/3:  Chosen Path rho_CP >= log(1/3)/log(1/8) ~ 0.528,
//                  ours rho = log(2/3)/log(1/4) + o(1)   ~ 0.293,
//                  prefix filtering: no nontrivial guarantee.
//   (b) b1 = 2/3:  ours rho -> 0 (query time O(n^eps)),
//                  rho_CP = log(2/3)/log(1/8) ~ 0.194,
//                  prefix filtering needs Omega(n^0.1).
//
// Part A solves the exponent equations (at asymptotic n, via grouped
// solvers). Part B builds the actual indexes on sampled data over an
// n-grid, measures candidates/query, and fits the empirical exponent.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/chosen_path.h"
#include "baselines/prefix_filter.h"
#include "bench_util.h"
#include "core/rho.h"
#include "core/skewed_index.h"
#include "data/generators.h"
#include "stats/exponent_fit.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using bench::Fmt;

void AnalyticPart() {
  bench::Banner("Section 7.1, Part A: analytic exponents");
  bench::Table table(
      {"instance", "method", "paper rho", "solved rho (n->inf)"});

  auto ours_at = [](double b1, double n) {
    double pb = std::pow(n, -0.9);
    std::vector<ProbabilityGroup> groups{{0.25, 500.0}, {pb, 500.0}};
    return AdversarialQueryRhoGrouped(groups, b1).value();
  };
  table.AddRow({"(a) b1=1/3", "ours", "0.293", Fmt(ours_at(1.0 / 3, 1e12), 3)});
  table.AddRow({"(a) b1=1/3", "chosen path", "0.528",
                Fmt(ChosenPathRho(1.0 / 3, 1.0 / 8), 3)});
  table.AddRow({"(a) b1=1/3", "prefix filter", "no guarantee (rho ~ 1)", "-"});
  table.AddRow({"(b) b1=2/3", "ours", "-> 0",
                Fmt(ours_at(2.0 / 3, 1e120), 3) + " (at n=1e120)"});
  table.AddRow({"(b) b1=2/3", "chosen path", "0.194",
                Fmt(ChosenPathRho(2.0 / 3, 1.0 / 8), 3)});
  table.AddRow({"(b) b1=2/3", "prefix filter", "Omega(n^0.1)", "-"});
  table.Print();

  bench::Note("convergence of ours in (b): rho(n) ~ Theta(1/log n):");
  bench::Table conv({"n", "rho_ours(b1=2/3)"});
  for (double n : {1e6, 1e12, 1e24, 1e48, 1e96}) {
    conv.AddRow({bench::FmtSci(n, 0), Fmt(ours_at(2.0 / 3, n), 4)});
  }
  conv.Print();
}

// --- Part B: measured ---------------------------------------------------

struct Workload {
  ProductDistribution dist;
  Dataset data;
  size_t d_frequent;
};

Workload MakeWorkload(size_t n, Rng* rng) {
  const double log_n = std::log(static_cast<double>(n));
  const double half_m = 3.0 * log_n;  // C = 3 per half
  const double pb = std::pow(static_cast<double>(n), -0.9);
  const size_t d_a = static_cast<size_t>(half_m / 0.25);
  const size_t d_b = static_cast<size_t>(half_m / pb);
  Workload w{TwoBlockProbabilities(d_a, 0.25, d_b, pb).value(), Dataset(),
             d_a};
  w.data = GenerateDataset(w.dist, n, rng);
  return w;
}

// Builds a query sharing `share` of x's items, replacements drawn from the
// same frequency block so the query profile matches the paper's setup.
SparseVector MakeQuery(const Workload& w, std::span<const ItemId> x,
                       double share, Rng* rng) {
  std::vector<ItemId> ids;
  SparseVector base = SparseVector::FromSorted(
      std::vector<ItemId>(x.begin(), x.end()));
  for (ItemId item : x) {
    if (rng->NextBernoulli(share)) {
      ids.push_back(item);
    } else {
      // Replace by a fresh unused item of the same type.
      for (int attempt = 0; attempt < 64; ++attempt) {
        ItemId fresh =
            item < w.d_frequent
                ? static_cast<ItemId>(rng->NextBounded(w.d_frequent))
                : static_cast<ItemId>(
                      w.d_frequent +
                      rng->NextBounded(w.dist.dimension() - w.d_frequent));
        if (!base.Contains(fresh) &&
            std::find(ids.begin(), ids.end(), fresh) == ids.end()) {
          ids.push_back(fresh);
          break;
        }
      }
    }
  }
  return SparseVector::FromIds(std::move(ids));
}

void MeasuredPart(double b1, const char* label) {
  bench::Banner(std::string("Section 7.1, Part B: measured, ") + label);
  const double share = b1 + 0.07;  // queries comfortably above threshold
  std::vector<double> ns, ours_cost, prefix_cost, cp_cost;
  bench::Table table({"n", "ours cand/q", "prefix cand/q", "cp cand/q",
                      "ours recall", "prefix recall", "cp recall"});
  for (size_t n : {512, 1024, 2048, 4096, 8192}) {
    Rng rng(0x5ec7a + n);
    Workload w = MakeWorkload(n, &rng);

    SkewedPathIndex ours;
    SkewedIndexOptions our_options;
    our_options.mode = IndexMode::kAdversarial;
    our_options.b1 = b1;
    our_options.repetitions = 6;
    if (!ours.Build(&w.data, &w.dist, our_options).ok()) continue;

    PrefixFilterIndex prefix;
    PrefixFilterOptions prefix_options;
    prefix_options.b1 = b1;
    if (!prefix.Build(&w.data, prefix_options).ok()) continue;

    bool with_cp = n <= 4096;  // CP filter count explodes at b1=1/3
    ChosenPathIndex cp;
    if (with_cp) {
      ChosenPathOptions cp_options;
      cp_options.b1 = b1;
      cp_options.b2 = 0.125;
      cp_options.repetitions = 4;
      with_cp = cp.Build(&w.data, &w.dist, cp_options).ok();
    }

    const int kQueries = 50;
    double oc = 0, pc = 0, cc = 0;
    int of = 0, pf = 0, cf = 0;
    for (int t = 0; t < kQueries; ++t) {
      VectorId target = static_cast<VectorId>(rng.NextBounded(n));
      SparseVector q = MakeQuery(w, w.data.Get(target), share, &rng);
      QueryStats s;
      if (ours.Query(q.span(), &s)) ++of;
      oc += static_cast<double>(s.candidates);
      if (prefix.Query(q.span(), &s)) ++pf;
      pc += static_cast<double>(s.candidates);
      if (with_cp) {
        if (cp.Query(q.span(), &s)) ++cf;
        cc += static_cast<double>(s.candidates);
      }
    }
    ns.push_back(static_cast<double>(n));
    ours_cost.push_back(oc / kQueries + 1.0);
    prefix_cost.push_back(pc / kQueries + 1.0);
    if (with_cp) cp_cost.push_back(cc / kQueries + 1.0);
    table.AddRow({Fmt(n), Fmt(oc / kQueries, 1), Fmt(pc / kQueries, 1),
                  with_cp ? Fmt(cc / kQueries, 1) : "-",
                  Fmt(static_cast<double>(of) / kQueries, 2),
                  Fmt(static_cast<double>(pf) / kQueries, 2),
                  with_cp ? Fmt(static_cast<double>(cf) / kQueries, 2) : "-"});
  }
  table.Print();

  auto report_fit = [&](const char* name, const std::vector<double>& xs,
                        const std::vector<double>& costs) {
    if (costs.size() < 2) return;
    std::vector<double> nn(xs.begin(), xs.begin() + costs.size());
    auto fit = FitPowerLaw(nn, costs);
    if (fit.ok()) {
      std::printf("  fitted exponent %-13s rho_hat = %+.3f (R^2 = %.2f)\n",
                  name, fit->exponent, fit->r_squared);
    }
  };
  report_fit("ours:", ns, ours_cost);
  report_fit("prefix:", ns, prefix_cost);
  report_fit("chosen path:", ns, cp_cost);
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::AnalyticPart();
  skewsearch::MeasuredPart(1.0 / 3.0, "example (a), b1 = 1/3");
  skewsearch::MeasuredPart(2.0 / 3.0, "example (b), b1 = 2/3");
  std::printf(
      "\n  expected shape: ours' fitted exponent well below prefix's in "
      "(b)\n  and below chosen path's in (a); prefix grows ~n^0.1 in (b) "
      "per the paper.\n");
  return 0;
}
