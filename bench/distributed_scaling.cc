// Copyright 2026 The skewsearch Authors.
// Distributed all-pairs join scaling: pairs/sec vs worker count, and
// duplication factor vs skew.
//
// Part 1 runs the single-process SelfSimilarityJoin as the baseline,
// then DistributedJoin at increasing worker counts W, verifying at each
// W that the pair output is identical (the driver's core contract) and
// reporting probe throughput, duplication factor, probe fan-out, and
// worker balance (max/mean posting entries).
//
// Part 2 fixes W and sweeps dataset skew — Zipf exponents plus an
// adversarial all-duplicates ("mega-key") profile — to show how the
// planner's heavy-key splitting absorbs skew: duplication factor and
// fan-out grow with skew while the per-worker entry balance stays flat.
//
// Flags: --n <dataset> --b1 <threshold> --workers <list> --threads <T>
//        --seed <S> --rounds <timed repetitions>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/similarity_join.h"
#include "data/generators.h"
#include "distributed/distributed_join.h"
#include "util/random.h"
#include "util/timer.h"

namespace skewsearch {
namespace {

struct Config {
  size_t n = 4000;
  double b1 = 0.8;
  int threads = 4;
  int rounds = 3;
  uint64_t seed = 1;
  std::vector<int> workers = {1, 2, 4, 8};
};

std::vector<int> ParseIntList(const char* text) {
  std::vector<int> out;
  std::string token;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) out.push_back(std::max(1, std::atoi(token.c_str())));
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return out.empty() ? std::vector<int>{1} : out;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--n") == 0) {
      config.n = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--b1") == 0) {
      config.b1 = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.threads = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      config.rounds = std::max(1, std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = static_cast<uint64_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      config.workers = ParseIntList(argv[i + 1]);
    }
  }
  return config;
}

Dataset MakeData(const ProductDistribution& dist, size_t n, uint64_t seed,
                 size_t dimension) {
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) data.Add(dist.Sample(&rng));
  // Plant duplicates so the join has non-trivial output.
  for (size_t i = 0; i < n / 20; ++i) {
    data.Add(data.GetVector(static_cast<VectorId>(i * 7 % n)));
  }
  if (!data.SetDimension(dimension).ok()) std::abort();
  return data;
}

bool SamePairs(const std::vector<JoinPair>& a,
               const std::vector<JoinPair>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].left != b[i].left || a[i].right != b[i].right ||
        a[i].similarity != b[i].similarity) {
      return false;
    }
  }
  return true;
}

struct BalanceReport {
  size_t max_entries = 0;
  double mean_entries = 0.0;
};

BalanceReport Balance(const DistributedJoinStats& stats) {
  BalanceReport report;
  size_t total = 0;
  for (const WorkerLoad& load : stats.workers) {
    report.max_entries = std::max(report.max_entries, load.entries);
    total += load.entries;
  }
  if (!stats.workers.empty()) {
    report.mean_entries =
        static_cast<double>(total) / static_cast<double>(stats.workers.size());
  }
  return report;
}

int Run(int argc, char** argv) {
  Config config = ParseArgs(argc, argv);
  using bench::Banner;
  using bench::Fmt;
  using bench::Note;
  using bench::Table;

  JoinOptions join_options;
  join_options.index.mode = IndexMode::kAdversarial;
  join_options.index.b1 = config.b1;
  join_options.index.seed = config.seed;
  join_options.index.build_threads = config.threads;
  join_options.threshold = config.b1;
  join_options.probe_threads = config.threads;

  // Part 1: pairs/sec vs W on Zipf data ---------------------------------
  Banner("distributed join scaling (zipf, n = " + std::to_string(config.n) +
         ", b1 = " + bench::Fmt(config.b1, 2) + ")");
  auto dist = ZipfProbabilities(20000, 1.0, 0.4).value();
  Dataset data = MakeData(dist, config.n, config.seed, 20000);

  JoinStats baseline_stats;
  auto baseline = SelfSimilarityJoin(data, dist, join_options,
                                     &baseline_stats);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline join failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  double baseline_seconds = baseline_stats.probe_seconds;
  for (int round = 1; round < config.rounds; ++round) {
    JoinStats round_stats;
    auto again = SelfSimilarityJoin(data, dist, join_options, &round_stats);
    if (!again.ok()) return 1;
    baseline_seconds = std::min(baseline_seconds, round_stats.probe_seconds);
  }
  Note("single-process baseline: " + Fmt(baseline->size()) + " pairs, " +
       Fmt(baseline->size() / std::max(1e-9, baseline_seconds), 0) +
       " pairs/sec (probe phase, best of " + Fmt(config.rounds) +
       " rounds)");

  Table scaling({"workers", "pairs", "pairs/sec", "dup factor", "fan-out",
                 "max/mean entries", "identical"});
  bool all_identical = true;
  for (int workers : config.workers) {
    DistributedJoinOptions options;
    options.index = join_options.index;
    options.threshold = config.b1;
    options.workers = workers;
    options.threads = config.threads;
    DistributedJoin join;
    Status built = join.Build(&data, &dist, options);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
      return 1;
    }
    DistributedJoinStats stats;
    auto pairs = join.SelfJoin(&stats);
    if (!pairs.ok()) return 1;
    double best = stats.probe_seconds;
    for (int round = 1; round < config.rounds; ++round) {
      DistributedJoinStats round_stats;
      auto again = join.SelfJoin(&round_stats);
      if (!again.ok()) return 1;
      best = std::min(best, round_stats.probe_seconds);
    }
    const bool identical = SamePairs(*baseline, *pairs);
    all_identical = all_identical && identical;
    BalanceReport balance = Balance(stats);
    scaling.AddRow({Fmt(workers), Fmt(pairs->size()),
                    Fmt(pairs->size() / std::max(1e-9, best), 0),
                    Fmt(stats.duplication_factor, 2),
                    Fmt(stats.probe_fanout, 2),
                    Fmt(balance.max_entries) + "/" +
                        Fmt(balance.mean_entries, 0),
                    identical ? "yes" : "NO"});
  }
  scaling.Print();
  Note("container may be single-core; wall-clock scaling vs W needs "
       "multicore hardware, but duplication/balance/identity hold "
       "anywhere");

  // Part 2: duplication factor vs skew ----------------------------------
  Banner("duplication factor vs skew (W = 8)");
  struct SkewCase {
    std::string name;
    ProductDistribution dist;
    Dataset data;
  };
  std::vector<SkewCase> cases;
  for (double exponent : {0.5, 1.0, 1.5}) {
    auto d = ZipfProbabilities(20000, exponent, 0.4).value();
    Dataset sample = MakeData(d, config.n / 2, config.seed + 1, 20000);
    cases.push_back({"zipf exp " + Fmt(exponent, 1), std::move(d),
                     std::move(sample)});
  }
  {
    // Adversarial mega-key profile: every vector identical, so each
    // filter key's posting list spans the entire dataset.
    auto d = UniformProbabilities(100, 0.25).value();
    Rng rng(config.seed + 2);
    SparseVector proto = d.Sample(&rng);
    while (proto.span().size() < 5) proto = d.Sample(&rng);
    Dataset clones;
    for (size_t i = 0; i < std::min<size_t>(config.n / 2, 1000); ++i) {
      clones.Add(proto);
    }
    if (!clones.SetDimension(100).ok()) std::abort();
    cases.push_back({"all-duplicates", std::move(d), std::move(clones)});
  }

  Table skew({"profile", "heavy keys", "slices", "dup factor", "fan-out",
              "max/mean entries"});
  for (SkewCase& skew_case : cases) {
    DistributedJoinOptions options;
    options.index = join_options.index;
    options.threshold = config.b1;
    options.workers = 8;
    options.threads = config.threads;
    DistributedJoin join;
    Status built = join.Build(&skew_case.data, &skew_case.dist, options);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed (%s): %s\n",
                   skew_case.name.c_str(), built.ToString().c_str());
      return 1;
    }
    DistributedJoinStats stats;
    auto pairs = join.SelfJoin(&stats);
    if (!pairs.ok()) return 1;
    BalanceReport balance = Balance(stats);
    skew.AddRow({skew_case.name, Fmt(stats.heavy_keys),
                 Fmt(stats.replicated_slices),
                 Fmt(stats.duplication_factor, 2),
                 Fmt(stats.probe_fanout, 2),
                 Fmt(balance.max_entries) + "/" +
                     Fmt(balance.mean_entries, 0)});
  }
  skew.Print();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: distributed output diverged from the baseline\n");
    return 1;
  }
  Note("every worker count produced output identical to the "
       "single-process join");
  return 0;
}

}  // namespace
}  // namespace skewsearch

int main(int argc, char** argv) { return skewsearch::Run(argc, argv); }
