// Copyright 2026 The skewsearch Authors.
// Distributed all-pairs join scaling: pairs/sec vs worker count, and
// duplication factor vs skew.
//
// Part 1 runs the single-process SelfSimilarityJoin as the baseline,
// then DistributedJoin at increasing worker counts W, verifying at each
// W that the pair output is identical (the driver's core contract) and
// reporting probe throughput, duplication factor, probe fan-out, and
// worker balance (max/mean posting entries).
//
// Part 2 fixes W and sweeps dataset skew — Zipf exponents plus an
// adversarial all-duplicates ("mega-key") profile — to show how the
// planner's heavy-key splitting absorbs skew: duplication factor and
// fan-out grow with skew while the per-worker entry balance stays flat.
//
// With --transport loopback|tcp, part 1 serves the workers over the
// real transport seam (thread-hosted ServeConnection sessions; tcp uses
// actual localhost sockets) and reports bytes-on-wire plus the round
// trips taken three ways: pipelined batches (--pipeline frames in
// flight per worker, the default), strict batches (pipeline 1, wait for
// each response before the next send), and unbatched (one probe per
// frame) — identity against the single-process baseline is verified in
// every variant. The exposed-round-trip column is the pipelining win:
// same frames, fewer synchronous waits.
//
// With --json FILE the headline counts (pairs, exposed trips per
// variant, bytes shipped/on-wire) are written as a bench JSON document
// for tools/bench_compare.py; they are deterministic for a fixed seed,
// so CI gates them against BENCH_baseline.json.
//
// Flags: --n <dataset> --b1 <threshold> --workers <list> --threads <T>
//        --seed <S> --rounds <timed repetitions>
//        --transport inprocess|loopback|tcp --probe-batch <N>
//        --pipeline <W> --json <file>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/similarity_join.h"
#include "data/generators.h"
#include "distributed/distributed_join.h"
#include "distributed/transport/session.h"
#include "distributed/transport/tcp_transport.h"
#include "distributed/transport/transport.h"
#include "util/random.h"
#include "util/timer.h"

namespace skewsearch {
namespace {

struct Config {
  size_t n = 4000;
  double b1 = 0.8;
  int threads = 4;
  int rounds = 3;
  uint64_t seed = 1;
  std::vector<int> workers = {1, 2, 4, 8};
  std::string transport = "inprocess";  // inprocess | loopback | tcp
  size_t probe_batch = 256;
  size_t pipeline = 2;
};

std::vector<int> ParseIntList(const char* text) {
  std::vector<int> out;
  std::string token;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) out.push_back(std::max(1, std::atoi(token.c_str())));
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return out.empty() ? std::vector<int>{1} : out;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--n") == 0) {
      config.n = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--b1") == 0) {
      config.b1 = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.threads = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      config.rounds = std::max(1, std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = static_cast<uint64_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      config.workers = ParseIntList(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      config.transport = argv[i + 1];
    } else if (std::strcmp(argv[i], "--probe-batch") == 0) {
      config.probe_batch = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      config.pipeline =
          std::max<size_t>(1, static_cast<size_t>(std::atoll(argv[i + 1])));
    }
  }
  return config;
}

/// One thread-hosted remote worker (loopback queues or a real localhost
/// socket) running the same ServeConnection loop the join-worker
/// process runs. The destructor wakes a thread still blocked in
/// Accept (listener shared for exactly that) and joins, so bailing out
/// of the bench on any error path can never hit std::terminate on a
/// joinable thread.
struct HostedWorker {
  std::thread thread;
  Status status;
  std::shared_ptr<TcpListener> listener;

  ~HostedWorker() {
    if (listener) listener->Shutdown();
    if (thread.joinable()) thread.join();
  }

  void ServeLoopback(std::unique_ptr<FrameConnection> end) {
    thread = std::thread([this, conn = std::move(end)]() mutable {
      status = ServeConnection(conn.get());
    });
  }
  void ServeTcp(std::shared_ptr<TcpListener> shared_listener) {
    listener = shared_listener;
    thread = std::thread([this, l = std::move(shared_listener)] {
      auto conn = l->Accept();
      if (!conn.ok()) {
        status = conn.status();
        return;
      }
      status = ServeConnection(conn->get());
    });
  }
};

/// Attaches `join` to thread-hosted workers over the chosen transport.
bool AttachHosted(DistributedJoin* join, const std::string& transport,
                  std::vector<std::unique_ptr<HostedWorker>>* hosts) {
  std::vector<std::unique_ptr<FrameConnection>> connections;
  for (int w = 0; w < join->num_workers(); ++w) {
    auto host = std::make_unique<HostedWorker>();
    if (transport == "loopback") {
      auto [coordinator_end, worker_end] = LoopbackPair();
      host->ServeLoopback(std::move(worker_end));
      connections.push_back(std::move(coordinator_end));
    } else {
      auto listener = TcpListener::Listen(0);
      if (!listener.ok()) {
        std::fprintf(stderr, "listen failed: %s\n",
                     listener.status().ToString().c_str());
        return false;
      }
      const uint16_t port = listener->port();
      host->ServeTcp(
          std::make_shared<TcpListener>(std::move(listener).value()));
      auto connection = TcpConnect("127.0.0.1", port);
      if (!connection.ok()) {
        std::fprintf(stderr, "connect failed: %s\n",
                     connection.status().ToString().c_str());
        return false;
      }
      connections.push_back(std::move(connection).value());
    }
    hosts->push_back(std::move(host));
  }
  Status attached = join->AttachRemote(std::move(connections));
  if (!attached.ok()) {
    std::fprintf(stderr, "attach failed: %s\n",
                 attached.ToString().c_str());
    return false;
  }
  return true;
}

bool DetachHosted(DistributedJoin* join,
                  std::vector<std::unique_ptr<HostedWorker>>* hosts) {
  join->DetachRemote();
  bool ok = true;
  for (auto& host : *hosts) {
    if (host->thread.joinable()) host->thread.join();
    if (!host->status.ok()) {
      std::fprintf(stderr, "worker failed: %s\n",
                   host->status.ToString().c_str());
      ok = false;
    }
  }
  hosts->clear();
  return ok;
}

Dataset MakeData(const ProductDistribution& dist, size_t n, uint64_t seed,
                 size_t dimension) {
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) data.Add(dist.Sample(&rng));
  // Plant duplicates so the join has non-trivial output.
  for (size_t i = 0; i < n / 20; ++i) {
    data.Add(data.GetVector(static_cast<VectorId>(i * 7 % n)));
  }
  if (!data.SetDimension(dimension).ok()) std::abort();
  return data;
}

bool SamePairs(const std::vector<JoinPair>& a,
               const std::vector<JoinPair>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].left != b[i].left || a[i].right != b[i].right ||
        a[i].similarity != b[i].similarity) {
      return false;
    }
  }
  return true;
}

struct BalanceReport {
  size_t max_entries = 0;
  double mean_entries = 0.0;
};

BalanceReport Balance(const DistributedJoinStats& stats) {
  BalanceReport report;
  size_t total = 0;
  for (const WorkerLoad& load : stats.workers) {
    report.max_entries = std::max(report.max_entries, load.entries);
    total += load.entries;
  }
  if (!stats.workers.empty()) {
    report.mean_entries =
        static_cast<double>(total) / static_cast<double>(stats.workers.size());
  }
  return report;
}

int Run(int argc, char** argv) {
  Config config = ParseArgs(argc, argv);
  using bench::Banner;
  using bench::Fmt;
  using bench::Note;
  using bench::Table;

  bench::JsonReporter reporter("distributed_scaling");
  const bool remote_transport = config.transport != "inprocess";
  if (remote_transport && config.transport != "loopback" &&
      config.transport != "tcp") {
    std::fprintf(stderr,
                 "unknown --transport '%s' (inprocess, loopback, tcp)\n",
                 config.transport.c_str());
    return 1;
  }

  JoinOptions join_options;
  join_options.index.mode = IndexMode::kAdversarial;
  join_options.index.b1 = config.b1;
  join_options.index.seed = config.seed;
  join_options.index.build_threads = config.threads;
  join_options.threshold = config.b1;
  join_options.probe_threads = config.threads;

  // Part 1: pairs/sec vs W on Zipf data ---------------------------------
  Banner("distributed join scaling (zipf, n = " + std::to_string(config.n) +
         ", b1 = " + bench::Fmt(config.b1, 2) + ")");
  auto dist = ZipfProbabilities(20000, 1.0, 0.4).value();
  Dataset data = MakeData(dist, config.n, config.seed, 20000);

  JoinStats baseline_stats;
  auto baseline = SelfSimilarityJoin(data, dist, join_options,
                                     &baseline_stats);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline join failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  double baseline_seconds = baseline_stats.probe_seconds;
  for (int round = 1; round < config.rounds; ++round) {
    JoinStats round_stats;
    auto again = SelfSimilarityJoin(data, dist, join_options, &round_stats);
    if (!again.ok()) return 1;
    baseline_seconds = std::min(baseline_seconds, round_stats.probe_seconds);
  }
  Note("single-process baseline: " + Fmt(baseline->size()) + " pairs, " +
       Fmt(baseline->size() / std::max(1e-9, baseline_seconds), 0) +
       " pairs/sec (probe phase, best of " + Fmt(config.rounds) +
       " rounds)");

  bool all_identical = true;
  if (!remote_transport) {
    Table scaling({"workers", "pairs", "pairs/sec", "dup factor", "fan-out",
                   "max/mean entries", "identical"});
    for (int workers : config.workers) {
      DistributedJoinOptions options;
      options.index = join_options.index;
      options.threshold = config.b1;
      options.workers = workers;
      options.threads = config.threads;
      DistributedJoin join;
      Status built = join.Build(&data, &dist, options);
      if (!built.ok()) {
        std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
        return 1;
      }
      DistributedJoinStats stats;
      auto pairs = join.SelfJoin(&stats);
      if (!pairs.ok()) return 1;
      double best = stats.probe_seconds;
      for (int round = 1; round < config.rounds; ++round) {
        DistributedJoinStats round_stats;
        auto again = join.SelfJoin(&round_stats);
        if (!again.ok()) return 1;
        best = std::min(best, round_stats.probe_seconds);
      }
      const bool identical = SamePairs(*baseline, *pairs);
      all_identical = all_identical && identical;
      BalanceReport balance = Balance(stats);
      scaling.AddRow({Fmt(workers), Fmt(pairs->size()),
                      Fmt(pairs->size() / std::max(1e-9, best), 0),
                      Fmt(stats.duplication_factor, 2),
                      Fmt(stats.probe_fanout, 2),
                      Fmt(balance.max_entries) + "/" +
                          Fmt(balance.mean_entries, 0),
                      identical ? "yes" : "NO"});
    }
    scaling.Print();
    Note("container may be single-core; wall-clock scaling vs W needs "
         "multicore hardware, but duplication/balance/identity hold "
         "anywhere");
  } else {
    // Remote serving over the chosen transport: each worker count runs
    // three variants — pipelined batches (--pipeline ProbeBatch frames
    // in flight per worker), strict batches (pipeline 1: wait for every
    // response before the next send), and unbatched (1 probe per frame,
    // strict) — so the round-trip columns separate what batching buys
    // (fewer frames) from what pipelining buys (fewer synchronous waits
    // over the same frames). "wire KB" counts probe-phase frame bytes
    // both directions; "ship KB" is the one-time handshake + assignment
    // traffic (the duplication factor in bytes).
    Banner("transport = " + config.transport + " (batch " +
           Fmt(config.probe_batch) + " pipelined x" + Fmt(config.pipeline) +
           " vs strict vs unbatched)");
    Table scaling({"workers", "pairs", "pairs/sec", "ship KB", "wire KB",
                   "batches", "trips (pipe)", "trips (strict)",
                   "trips (b=1)", "identical"});
    struct RemoteRun {
      uint64_t wire_kb = 0;
      size_t round_trips = 0;
      size_t batches_sent = 0;
      uint64_t ship_kb = 0;
      double best_seconds = 1e9;
      size_t pairs = 0;
      bool identical = false;
    };
    RemoteRun last[3];  // the final worker count's runs, for the JSON
    for (int workers : config.workers) {
      RemoteRun runs[3];
      const size_t batches[3] = {config.probe_batch, config.probe_batch, 1};
      const size_t windows[3] = {config.pipeline, 1, 1};
      for (int variant = 0; variant < 3; ++variant) {
        DistributedJoinOptions options;
        options.index = join_options.index;
        options.threshold = config.b1;
        options.workers = workers;
        options.threads = config.threads;
        options.probe_batch = batches[variant];
        options.pipeline = windows[variant];
        // hosts must outlive join: join's destructor shuts the remote
        // sessions down, which is what lets the hosts' destructors
        // join their serving threads on early-error returns.
        std::vector<std::unique_ptr<HostedWorker>> hosts;
        DistributedJoin join;
        Status built = join.Build(&data, &dist, options);
        if (!built.ok()) {
          std::fprintf(stderr, "build failed: %s\n",
                       built.ToString().c_str());
          return 1;
        }
        if (!AttachHosted(&join, config.transport, &hosts)) return 1;
        const WireStats shipped = join.RemoteWireTotals();
        RemoteRun& run = runs[variant];
        run.ship_kb = shipped.bytes_sent / 1000;
        for (int round = 0; round < config.rounds; ++round) {
          DistributedJoinStats stats;
          auto pairs = join.SelfJoin(&stats);
          if (!pairs.ok()) {
            std::fprintf(stderr, "remote join failed: %s\n",
                         pairs.status().ToString().c_str());
            return 1;
          }
          run.best_seconds = std::min(run.best_seconds, stats.probe_seconds);
          run.wire_kb =
              (stats.wire_bytes_sent + stats.wire_bytes_received) / 1000;
          run.round_trips = stats.probe_round_trips;
          run.batches_sent = stats.probe_batches_sent;
          run.pairs = pairs->size();
          run.identical = SamePairs(*baseline, *pairs);
        }
        if (!DetachHosted(&join, &hosts)) return 1;
        all_identical = all_identical && run.identical;
      }
      scaling.AddRow(
          {Fmt(workers), Fmt(runs[0].pairs),
           Fmt(runs[0].pairs / std::max(1e-9, runs[0].best_seconds), 0),
           Fmt(runs[0].ship_kb), Fmt(runs[0].wire_kb),
           Fmt(runs[0].batches_sent), Fmt(runs[0].round_trips),
           Fmt(runs[1].round_trips), Fmt(runs[2].round_trips),
           runs[0].identical && runs[1].identical && runs[2].identical
               ? "yes"
               : "NO"});
      for (int variant = 0; variant < 3; ++variant) {
        last[variant] = runs[variant];
      }
    }
    scaling.Print();
    Note("batching amortizes per-frame overhead; pipelining overlaps the "
         "next batch with the worker's current one — same frames, fewer "
         "exposed round trips");
    // All counts here are deterministic for a fixed seed (the send/
    // receive order is driven purely by the coordinator loop), so CI
    // gates them as stable metrics.
    reporter.Metric("pairs", static_cast<double>(last[0].pairs),
                    /*stable=*/true, "pairs");
    reporter.Metric("probe_batches_sent",
                    static_cast<double>(last[0].batches_sent),
                    /*stable=*/true, "frames");
    reporter.Metric("trips_pipelined",
                    static_cast<double>(last[0].round_trips),
                    /*stable=*/true, "round trips");
    reporter.Metric("trips_strict", static_cast<double>(last[1].round_trips),
                    /*stable=*/true, "round trips");
    reporter.Metric("trips_unbatched",
                    static_cast<double>(last[2].round_trips),
                    /*stable=*/true, "round trips");
    reporter.Metric("pipelining_reduces_trips",
                    last[0].round_trips < last[1].round_trips ? 1 : 0,
                    /*stable=*/true, "bool");
    reporter.Metric("ship_kb", static_cast<double>(last[0].ship_kb),
                    /*stable=*/true, "KB");
    reporter.Metric("wire_kb", static_cast<double>(last[0].wire_kb),
                    /*stable=*/true, "KB");
    reporter.Metric("pairs_per_sec_pipelined",
                    static_cast<double>(last[0].pairs) /
                        std::max(1e-9, last[0].best_seconds),
                    /*stable=*/false, "pairs/s");
  }

  // Part 2: duplication factor vs skew ----------------------------------
  Banner("duplication factor vs skew (W = 8)");
  struct SkewCase {
    std::string name;
    ProductDistribution dist;
    Dataset data;
  };
  std::vector<SkewCase> cases;
  for (double exponent : {0.5, 1.0, 1.5}) {
    auto d = ZipfProbabilities(20000, exponent, 0.4).value();
    Dataset sample = MakeData(d, config.n / 2, config.seed + 1, 20000);
    cases.push_back({"zipf exp " + Fmt(exponent, 1), std::move(d),
                     std::move(sample)});
  }
  {
    // Adversarial mega-key profile: every vector identical, so each
    // filter key's posting list spans the entire dataset.
    auto d = UniformProbabilities(100, 0.25).value();
    Rng rng(config.seed + 2);
    SparseVector proto = d.Sample(&rng);
    while (proto.span().size() < 5) proto = d.Sample(&rng);
    Dataset clones;
    for (size_t i = 0; i < std::min<size_t>(config.n / 2, 1000); ++i) {
      clones.Add(proto);
    }
    if (!clones.SetDimension(100).ok()) std::abort();
    cases.push_back({"all-duplicates", std::move(d), std::move(clones)});
  }

  Table skew({"profile", "heavy keys", "slices", "dup factor", "fan-out",
              "max/mean entries"});
  for (SkewCase& skew_case : cases) {
    DistributedJoinOptions options;
    options.index = join_options.index;
    options.threshold = config.b1;
    options.workers = 8;
    options.threads = config.threads;
    DistributedJoin join;
    Status built = join.Build(&skew_case.data, &skew_case.dist, options);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed (%s): %s\n",
                   skew_case.name.c_str(), built.ToString().c_str());
      return 1;
    }
    DistributedJoinStats stats;
    auto pairs = join.SelfJoin(&stats);
    if (!pairs.ok()) return 1;
    BalanceReport balance = Balance(stats);
    skew.AddRow({skew_case.name, Fmt(stats.heavy_keys),
                 Fmt(stats.replicated_slices),
                 Fmt(stats.duplication_factor, 2),
                 Fmt(stats.probe_fanout, 2),
                 Fmt(balance.max_entries) + "/" +
                     Fmt(balance.mean_entries, 0)});
  }
  skew.Print();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: distributed output diverged from the baseline\n");
    return 1;
  }
  Note("every worker count produced output identical to the "
       "single-process join");
  reporter.Metric("results_identical", 1, /*stable=*/true, "bool");
  if (!reporter.WriteIfRequested(argc, argv)) return 1;
  return 0;
}

}  // namespace
}  // namespace skewsearch

int main(int argc, char** argv) { return skewsearch::Run(argc, argv); }
