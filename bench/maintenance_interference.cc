// Copyright 2026 The skewsearch Authors.
// Maintenance interference: query latency while the maintenance
// subsystem works vs. idle.
//
// The point of the epoch/snapshot read path is that background
// compaction and drift rebuilds never block readers: they build off to
// the side and publish with one pointer swap. This bench quantifies
// that. Three phases over the same correlated query stream:
//
//   idle       quiesced online index, no maintenance activity
//   compaction churn thread removes/re-inserts, maintenance thread
//              compacts dirty shards throughout
//   rebuild    churn plus repeated forced parameter rebuilds (the
//              heaviest maintenance action there is)
//
// Reported: p50/p99/max per-query latency and QPS per phase. With
// wait-free reads the p99 between phases should move by far less than a
// rebuild takes — readers only ever see a swap, never a lock.
//
// Flags: --n <dataset> --queries <count> --alpha <corr> --shards <K>
//        --churn <mutations per phase> --rounds <timed repetitions>
//        --json <file>  (bench JSON contract, see bench_util.h)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/dynamic_index.h"
#include "data/correlated.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "maintenance/service.h"
#include "util/random.h"
#include "util/timer.h"

namespace skewsearch {
namespace {

struct Config {
  size_t n = 20000;
  size_t num_queries = 2000;
  double alpha = 0.8;
  int shards = 8;
  size_t churn = 4000;
  int rounds = 3;
};

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--n") == 0) {
      config.n = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      config.num_queries = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--alpha") == 0) {
      config.alpha = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      config.shards = std::max(1, std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      config.churn = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      config.rounds = std::max(1, std::atoi(argv[i + 1]));
    }
  }
  return config;
}

struct LatencyProfile {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double qps = 0.0;
};

/// Pools every round's per-query latencies and reports quantiles over
/// the whole pool: an interference measurement must not cherry-pick the
/// least-disturbed round, or the tail it exists to expose disappears.
LatencyProfile Measure(const DynamicIndex& index, const Dataset& queries,
                       int rounds) {
  std::vector<double> latencies;
  latencies.reserve(queries.size() * static_cast<size_t>(rounds));
  double seconds = 0.0;
  for (int round = 0; round < rounds; ++round) {
    Timer wall;
    for (VectorId q = 0; q < queries.size(); ++q) {
      QueryStats stats;
      index.Query(queries.Get(q), &stats);
      latencies.push_back(stats.seconds * 1e6);
    }
    seconds += wall.ElapsedSeconds();
  }
  std::sort(latencies.begin(), latencies.end());
  LatencyProfile profile;
  if (latencies.empty()) return profile;  // --queries 0 / --rounds 0
  profile.p50_us = latencies[latencies.size() / 2];
  profile.p99_us = latencies[latencies.size() * 99 / 100];
  profile.max_us = latencies.back();
  profile.qps =
      seconds > 0.0 ? static_cast<double>(latencies.size()) / seconds : 0.0;
  return profile;
}

int Run(int argc, char** argv) {
  Config config = ParseArgs(argc, argv);

  bench::Banner("Maintenance interference (query latency vs. housekeeping)");
  bench::Note("hardware threads available: " +
              std::to_string(std::thread::hardware_concurrency()));

  auto dist = ZipfProbabilities(2000, 1.0, 0.3).value();
  Rng rng(131);
  Dataset data = GenerateDataset(dist, config.n, &rng);
  Dataset queries;
  CorrelatedQuerySampler sampler(&dist, config.alpha);
  for (size_t i = 0; i < config.num_queries; ++i) {
    queries.Add(sampler
                    .SampleCorrelated(
                        data.Get(static_cast<VectorId>(i % data.size())),
                        &rng)
                    .span());
  }
  std::vector<SparseVector> fresh;
  while (fresh.size() < config.churn) {
    SparseVector v = dist.Sample(&rng);
    if (!v.span().empty()) fresh.push_back(std::move(v));
  }

  DynamicIndexOptions options;
  options.index.mode = IndexMode::kCorrelated;
  options.index.alpha = config.alpha;
  options.index.build_threads = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  options.num_shards = config.shards;
  options.compact_dead_fraction = 0.10;
  DynamicIndex index;
  Status built = index.Build(&data, &dist, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
    return 1;
  }
  MaintenanceService service;
  MaintenanceOptions maintenance;
  maintenance.poll_interval_ms = 1;
  maintenance.drift_factor = 0.0;  // rebuilds are forced, not drifted into
  if (!service.Attach(&index, maintenance).ok() || !service.Start().ok()) {
    std::fprintf(stderr, "maintenance service failed to start\n");
    return 1;
  }

  bench::JsonReporter reporter("maintenance_interference");
  reporter.Metric("queries_per_round",
                  static_cast<double>(queries.size()),
                  /*stable=*/true, "queries");
  bench::Table table({"phase", "p50_us", "p99_us", "max_us", "qps",
                      "compactions", "rebuilds"});
  // Everything measured here is timing against racing housekeeping
  // threads, so every per-phase metric is advisory.
  auto add_row = [&](const std::string& phase, const LatencyProfile& p) {
    table.AddRow({phase, bench::Fmt(p.p50_us, 1), bench::Fmt(p.p99_us, 1),
                  bench::Fmt(p.max_us, 1), bench::Fmt(p.qps, 0),
                  bench::Fmt(index.num_compactions()),
                  bench::Fmt(index.num_rebuilds())});
    reporter.Metric(phase + "_p50_us", p.p50_us, /*stable=*/false, "us");
    reporter.Metric(phase + "_p99_us", p.p99_us, /*stable=*/false, "us");
    reporter.Metric(phase + "_qps", p.qps, /*stable=*/false, "qps");
  };

  // Phase 1: idle.
  Measure(index, queries, 1);  // warm-up
  add_row("idle", Measure(index, queries, config.rounds));

  // A churn thread that keeps dead-entry pressure on the shards.
  auto churn_loop = [&](std::atomic<bool>* stop) {
    Rng crng(132);
    size_t i = 0;
    while (!stop->load(std::memory_order_acquire)) {
      VectorId victim =
          static_cast<VectorId>(crng.NextBounded(data.size()));
      index.Remove(victim).ok();  // NotFound on repeats is fine
      index.Insert(fresh[i % fresh.size()].span()).ok();
      ++i;
    }
  };

  // Phase 2: background compaction under churn. A synchronous churn
  // batch first, so the shards are guaranteed dirty when measurement
  // starts (on a loaded single-CPU box the churn thread alone may not
  // get enough slices inside the measurement window).
  {
    Rng crng(133);
    for (size_t i = 0; i < config.churn; ++i) {
      index.Remove(static_cast<VectorId>(crng.NextBounded(data.size())))
          .ok();
      index.Insert(fresh[i % fresh.size()].span()).ok();
    }
    std::atomic<bool> stop{false};
    std::thread churn(churn_loop, &stop);
    LatencyProfile profile = Measure(index, queries, config.rounds);
    stop.store(true, std::memory_order_release);
    churn.join();
    service.RunOnce().ok();  // flush whatever the thread did not reach
    add_row("compaction", profile);
  }

  // Phase 3: churn plus repeated full parameter rebuilds.
  {
    std::atomic<bool> stop{false};
    std::thread churn(churn_loop, &stop);
    std::thread rebuilder([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const size_t live = index.size();
        if (live >= 2 && !index.RebuildForSize(live).ok()) return;
      }
    });
    LatencyProfile profile = Measure(index, queries, config.rounds);
    stop.store(true, std::memory_order_release);
    churn.join();
    rebuilder.join();
    add_row("rebuild", profile);
  }
  service.Detach();

  table.Print();
  bench::Note("wait-free reads: p99 should stay in the same ballpark "
              "across all three phases (a blocking design shows "
              "rebuild-length spikes in max_us).");
  bench::Note("NOTE: single-CPU containers timeshare the maintenance "
              "thread with the reader; interpret interference numbers on "
              "multicore hardware.");
  reporter.Metric("compactions", static_cast<double>(index.num_compactions()),
                  /*stable=*/false, "compactions");
  reporter.Metric("rebuilds", static_cast<double>(index.num_rebuilds()),
                  /*stable=*/false, "rebuilds");
  bench::ReportRegistrySnapshot(&reporter);
  if (!reporter.WriteIfRequested(argc, argv)) return 1;
  return 0;
}

}  // namespace
}  // namespace skewsearch

int main(int argc, char** argv) { return skewsearch::Run(argc, argv); }
