// End-to-end exponent validation (Theorems 1-2, no single figure in the
// paper): measures query cost against n for our index and all three
// baselines on a skewed two-block distribution with alpha-correlated
// queries, fits rho-hat on the log-log curve, and compares with the
// analytic exponents. Also reports recall so the cost numbers are
// comparable at equal quality.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/chosen_path.h"
#include "baselines/minhash_lsh.h"
#include "baselines/prefix_filter.h"
#include "bench_util.h"
#include "core/rho.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "sim/measures.h"
#include "stats/exponent_fit.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using bench::Fmt;

struct Series {
  std::vector<double> ns;
  std::vector<double> cost;
  double recall_sum = 0.0;
  int recall_count = 0;

  void Add(double n, double c, double recall) {
    ns.push_back(n);
    cost.push_back(c + 1.0);
    recall_sum += recall;
    recall_count++;
  }
  double AvgRecall() const {
    return recall_count > 0 ? recall_sum / recall_count : 0.0;
  }
  double Exponent() const {
    auto fit = FitPowerLaw(ns, cost);
    return fit.ok() ? fit->exponent : -99.0;
  }
};

void Run() {
  const double alpha = 2.0 / 3.0;
  // Fig-1 style skew: m = 60, half the mass at p = 1/4, half at p/32.
  auto dist = TwoBlockProbabilities(120, 0.25, 3840, 0.25 / 32).value();

  double rho_ours = CorrelatedRho(dist, alpha).value();
  double b1 = ExpectedCorrelatedSimilarity(dist, alpha);
  double b2 = ExpectedUncorrelatedSimilarity(dist);
  double rho_cp = ChosenPathRho(b1, b2);

  bench::Banner("Scaling: analytic exponents for this instance");
  bench::Note("distribution: 120 dims at 0.25 + 3840 at 0.0078 (m = 60)");
  std::printf("  ours (Theorem 1): rho = %.3f | chosen path: rho = %.3f | "
              "minhash (rho = ln j1/ln j2): %.3f | brute force: 1.0\n",
              rho_ours, rho_cp,
              ChosenPathRho(BraunBlanquetToJaccardEquivalent(b1),
                            BraunBlanquetToJaccardEquivalent(b2)));

  bench::Banner("Scaling: measured candidates/query vs n");
  Series ours_series, cp_series, mh_series, prefix_series, brute_series;
  bench::Table table({"n", "ours", "chosen path", "minhash", "prefix",
                      "brute", "recall(ours/cp/mh/pf)"});
  for (size_t n : {512, 1024, 2048, 4096, 8192}) {
    Rng rng(0x5ca1e + n);
    Dataset data = GenerateDataset(dist, n, &rng);

    SkewedPathIndex ours;
    SkewedIndexOptions our_options;
    our_options.mode = IndexMode::kCorrelated;
    our_options.alpha = alpha;
    our_options.repetitions = 8;
    our_options.delta = 0.05;
    if (!ours.Build(&data, &dist, our_options).ok()) continue;

    ChosenPathIndex cp;
    ChosenPathOptions cp_options;
    cp_options.b1 = b1;
    cp_options.b2 = b2 * 1.5;
    cp_options.repetitions = 8;
    cp_options.verify_threshold = alpha / 1.3;
    if (!cp.Build(&data, &dist, cp_options).ok()) continue;

    MinHashLsh minhash;
    MinHashOptions mh_options;
    mh_options.j1 = BraunBlanquetToJaccardEquivalent(b1);
    mh_options.j2 = BraunBlanquetToJaccardEquivalent(b2) * 1.5;
    mh_options.verify_measure = Measure::kBraunBlanquet;
    mh_options.verify_threshold = alpha / 1.3;
    if (!minhash.Build(&data, mh_options).ok()) continue;

    PrefixFilterIndex prefix;
    PrefixFilterOptions prefix_options;
    prefix_options.b1 = alpha / 1.3;
    if (!prefix.Build(&data, prefix_options).ok()) continue;

    CorrelatedQuerySampler sampler(&dist, alpha);
    const int kQueries = 60;
    double oc = 0, cc = 0, mc = 0, pc = 0;
    int of = 0, cf = 0, mf = 0, pf = 0;
    for (int t = 0; t < kQueries; ++t) {
      VectorId target = static_cast<VectorId>(rng.NextBounded(n));
      SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
      QueryStats s;
      auto h = ours.Query(q.span(), &s);
      of += (h && h->id == target);
      oc += static_cast<double>(s.candidates);
      h = cp.Query(q.span(), &s);
      cf += (h && h->id == target);
      cc += static_cast<double>(s.candidates);
      h = minhash.Query(q.span(), &s);
      mf += (h && h->id == target);
      mc += static_cast<double>(s.candidates);
      h = prefix.Query(q.span(), &s);
      pf += (h && h->id == target);
      pc += static_cast<double>(s.candidates);
    }
    double nq = kQueries;
    ours_series.Add(static_cast<double>(n), oc / nq, of / nq);
    cp_series.Add(static_cast<double>(n), cc / nq, cf / nq);
    mh_series.Add(static_cast<double>(n), mc / nq, mf / nq);
    prefix_series.Add(static_cast<double>(n), pc / nq, pf / nq);
    brute_series.Add(static_cast<double>(n), static_cast<double>(n), 1.0);
    table.AddRow({Fmt(n), Fmt(oc / nq, 1), Fmt(cc / nq, 1), Fmt(mc / nq, 1),
                  Fmt(pc / nq, 1), Fmt(static_cast<size_t>(n)),
                  Fmt(of / nq, 2) + "/" + Fmt(cf / nq, 2) + "/" +
                      Fmt(mf / nq, 2) + "/" + Fmt(pf / nq, 2)});
  }
  table.Print();

  bench::Banner("Fitted exponents vs analytic");
  bench::Table fits({"method", "analytic rho", "measured rho_hat",
                     "avg recall"});
  fits.AddRow({"ours", Fmt(rho_ours, 3), Fmt(ours_series.Exponent(), 3),
               Fmt(ours_series.AvgRecall(), 2)});
  fits.AddRow({"chosen path", Fmt(rho_cp, 3), Fmt(cp_series.Exponent(), 3),
               Fmt(cp_series.AvgRecall(), 2)});
  std::string minhash_rho = "~";
  minhash_rho += Fmt(ChosenPathRho(BraunBlanquetToJaccardEquivalent(b1),
                                   BraunBlanquetToJaccardEquivalent(b2)),
                     3);
  fits.AddRow({"minhash", minhash_rho, Fmt(mh_series.Exponent(), 3),
               Fmt(mh_series.AvgRecall(), 2)});
  fits.AddRow({"prefix filter", "1 (no guarantee)",
               Fmt(prefix_series.Exponent(), 3),
               Fmt(prefix_series.AvgRecall(), 2)});
  fits.AddRow({"brute force", "1.000", Fmt(brute_series.Exponent(), 3),
               "1.00"});
  fits.Print();
  bench::Note("expected shape: rho_hat(ours) < rho_hat(chosen path) <");
  bench::Note("rho_hat(minhash); prefix near-linear on this Theta(1)-");
  bench::Note("probability instance; measured exponents carry the delta");
  bench::Note("boost and O(n^eps) slack of Theorems 1-2, so bands not");
  bench::Note("exact values are compared.");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::Run();
  return 0;
}
