// Ablation for the paper's Section 9 dependence discussion: the analysis
// assumes independent bits; real data (SPOTIFY) violates this and "has
// recently been observed to be a difficult case for a variant of the
// Chosen Path algorithm". We plant topic-model dependence of increasing
// strength (heavy-tailed topic activation, the Table 1 mechanism), build
// the index from *estimated marginals* (all it can see), and measure how
// recall and candidate cost degrade.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/estimate.h"
#include "data/generators.h"
#include "stats/independence.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using bench::Fmt;

void Run() {
  const double alpha = 0.7;
  const size_t n = 2048;
  auto background = TwoBlockProbabilities(150, 0.2, 20000, 0.003).value();

  bench::Banner("Ablation: dependence robustness (Sec. 9 / SPOTIFY case)");
  bench::Note("dependence via heavy-tailed topic activation; exponent 0 =");
  bench::Note("independent, smaller exponent = heavier co-occurrence.");
  bench::Table table({"tail exponent", "indep ratio |I|=2",
                      "indep ratio |I|=3", "recall", "cand/q",
                      "filters/elem"});

  for (double tail : {0.0, 2.5, 1.8, 1.3}) {
    Rng rng(0xdede + static_cast<uint64_t>(tail * 100));
    Dataset data;
    if (tail == 0.0) {
      data = GenerateDataset(background, n, &rng);
    } else {
      TopicModelOptions topic_options;
      topic_options.num_topics = 48;
      topic_options.topic_size = 24;
      topic_options.include_prob = 0.6;
      topic_options.heavy_tail_exponent = tail;
      TopicModelGenerator gen(background, topic_options, &rng);
      data = gen.Generate(n, &rng);
    }
    auto r2 = ExactIndependenceRatio(data, 2);
    auto r3 = ExactIndependenceRatio(data, 3);
    auto estimated = EstimateFrequencies(data);
    if (!estimated.ok()) continue;

    SkewedPathIndex index;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = alpha;
    options.repetitions = 8;
    options.delta = 0.1;
    if (!index.Build(&data, &*estimated, options).ok()) continue;

    // Queries correlated with stored vectors via the bit-copy definition
    // (applied to the *empirical* data, not the generating model).
    CorrelatedQuerySampler sampler(&*estimated, alpha);
    const int kQueries = 50;
    int found = 0;
    double candidates = 0;
    for (int t = 0; t < kQueries; ++t) {
      VectorId target = static_cast<VectorId>(rng.NextBounded(n));
      SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
      QueryStats s;
      auto h = index.Query(q.span(), &s);
      found += (h && h->id == target);
      candidates += static_cast<double>(s.candidates);
    }
    table.AddRow({tail == 0.0 ? "independent" : Fmt(tail, 1),
                  r2.ok() ? Fmt(r2->ratio, 2) : "-",
                  r3.ok() ? Fmt(r3->ratio, 2) : "-",
                  Fmt(static_cast<double>(found) / kQueries, 2),
                  Fmt(candidates / kQueries, 1),
                  Fmt(index.build_stats().avg_filters_per_element, 1)});
  }
  table.Print();
  bench::Note("expected shape: recall stays usable under mild dependence");
  bench::Note("(paper: 'correlations weak enough that the analysis is");
  bench::Note("indicative'), while candidate cost inflates as co-occurring");
  bench::Note("items make far vectors collide more than independence");
  bench::Note("predicts — the SPOTIFY effect.");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::Run();
  return 0;
}
