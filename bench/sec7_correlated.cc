// Reproduces the Section 7.2 worked examples (correlated queries).
//
// (i) Extreme skew: 4*C*log n bits at pa = 1/4 plus n^{0.9}*C*log n bits
//     at pb = n^{-0.9}, alpha = 2/3. Paper: our expected query time is
//     O(n^eps) for every eps > 0; prefix filtering takes Omega(n^{0.1}).
// (ii) Theta(1) probabilities (the Figure 1 regime): pa = p, pb = p/8 —
//     prefix filtering has no nontrivial guarantee, Chosen Path pays
//     rho_CP, and we pay the strictly smaller Theorem 1 rho.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/chosen_path.h"
#include "baselines/prefix_filter.h"
#include "bench_util.h"
#include "core/rho.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/generators.h"
#include "stats/exponent_fit.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using bench::Fmt;

void AnalyticPart() {
  bench::Banner("Section 7.2, Part A: analytic exponents (alpha = 2/3)");
  bench::Table table({"instance", "method", "paper", "solved"});
  // (i) extreme skew, evaluated at asymptotic n via grouped solver.
  auto extreme_ours = [](double n) {
    double c_log_n = 20.0 * std::log(n);
    double pb = std::pow(n, -0.9);
    std::vector<ProbabilityGroup> g{{0.25, 4.0 * c_log_n},
                                    {pb, c_log_n / pb}};
    return CorrelatedRhoGrouped(g, 2.0 / 3.0).value();
  };
  table.AddRow({"(i) extreme skew", "ours", "O(n^eps), rho -> 0",
                Fmt(extreme_ours(1e96), 3) + " (at n=1e96)"});
  table.AddRow({"(i) extreme skew", "prefix filter", "Omega(n^0.1)", "-"});
  // (ii) Theta(1) case, p = 0.25.
  std::vector<ProbabilityGroup> theta{{0.25, 500.0}, {0.25 / 8, 500.0}};
  double ours2 = CorrelatedRhoGrouped(theta, 2.0 / 3.0).value();
  double m = 500.0 * 0.25 + 500.0 * 0.25 / 8;
  double b1 = (500.0 * 0.25 * ConditionalProbability(0.25, 2.0 / 3.0) +
               500.0 * (0.25 / 8) *
                   ConditionalProbability(0.25 / 8, 2.0 / 3.0)) /
              m;
  double b2 = (500.0 * 0.0625 + 500.0 * 0.25 * 0.25 / 64) / m;
  table.AddRow({"(ii) p, p/8 at p=1/4", "ours", "below Chosen Path",
                Fmt(ours2, 3)});
  table.AddRow({"(ii) p, p/8 at p=1/4", "chosen path", "Figure 1 blue",
                Fmt(ChosenPathRho(b1, b2), 3)});
  table.AddRow({"(ii) p, p/8 at p=1/4", "prefix filter",
                "rho = 1 (all p Theta(1))", "-"});
  table.Print();
}

void MeasuredExtreme() {
  bench::Banner(
      "Section 7.2, Part B: measured, extreme skew (alpha = 2/3)");
  const double alpha = 2.0 / 3.0;
  std::vector<double> ns, ours_cost, prefix_cost;
  bench::Table table(
      {"n", "d", "ours cand/q", "prefix cand/q", "ours recall",
       "prefix recall"});
  for (size_t n : {512, 1024, 2048, 4096, 8192}) {
    const double log_n = std::log(static_cast<double>(n));
    const double c_log_n = 4.0 * log_n;
    const double pb = std::pow(static_cast<double>(n), -0.9);
    const size_t d_a = static_cast<size_t>(4.0 * c_log_n / 0.25);
    const size_t d_b = static_cast<size_t>(c_log_n / pb);
    auto dist = TwoBlockProbabilities(d_a, 0.25, d_b, pb).value();
    Rng rng(0xc077 + n);
    Dataset data = GenerateDataset(dist, n, &rng);

    SkewedPathIndex ours;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = alpha;
    options.repetitions = 8;
    options.delta = 0.1;
    if (!ours.Build(&data, &dist, options).ok()) continue;

    PrefixFilterIndex prefix;
    PrefixFilterOptions prefix_options;
    prefix_options.b1 = alpha / 1.3;
    if (!prefix.Build(&data, prefix_options).ok()) continue;

    CorrelatedQuerySampler sampler(&dist, alpha);
    const int kQueries = 50;
    double oc = 0, pc = 0;
    int of = 0, pf = 0;
    for (int t = 0; t < kQueries; ++t) {
      VectorId target = static_cast<VectorId>(rng.NextBounded(n));
      SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
      QueryStats s;
      auto h1 = ours.Query(q.span(), &s);
      if (h1 && h1->id == target) ++of;
      oc += static_cast<double>(s.candidates);
      auto h2 = prefix.Query(q.span(), &s);
      if (h2 && h2->id == target) ++pf;
      pc += static_cast<double>(s.candidates);
    }
    ns.push_back(static_cast<double>(n));
    ours_cost.push_back(oc / kQueries + 1.0);
    prefix_cost.push_back(pc / kQueries + 1.0);
    table.AddRow({Fmt(n), Fmt(d_a + d_b), Fmt(oc / kQueries, 1),
                  Fmt(pc / kQueries, 1),
                  Fmt(static_cast<double>(of) / kQueries, 2),
                  Fmt(static_cast<double>(pf) / kQueries, 2)});
  }
  table.Print();
  auto fo = FitPowerLaw(ns, ours_cost);
  auto fp = FitPowerLaw(ns, prefix_cost);
  if (fo.ok() && fp.ok()) {
    std::printf(
        "  fitted exponents: ours rho_hat = %+.3f, prefix rho_hat = %+.3f\n",
        fo->exponent, fp->exponent);
    std::printf("  paper shape: ours ~ n^eps (near-flat), prefix ~ n^0.1 "
                "(growing): %s\n",
                fo->exponent < fp->exponent ? "MATCHES" : "MISMATCH");
  }
}

void MeasuredTheta() {
  bench::Banner(
      "Section 7.2, Part B: measured, Theta(1) two-block (Figure 1 regime)");
  const double alpha = 2.0 / 3.0;
  const double p = 0.25;
  std::vector<double> ns, ours_cost, cp_cost;
  bench::Table table({"n", "ours cand/q", "cp cand/q", "ours recall",
                      "cp recall"});
  for (size_t n : {512, 1024, 2048, 4096}) {
    // m = 60: 120 dims at p and 960 at p/8.
    auto dist = TwoBlockProbabilities(120, p, 960, p / 8).value();
    Rng rng(0x7e7a + n);
    Dataset data = GenerateDataset(dist, n, &rng);

    SkewedPathIndex ours;
    SkewedIndexOptions options;
    options.mode = IndexMode::kCorrelated;
    options.alpha = alpha;
    options.repetitions = 8;
    options.delta = 0.05;
    if (!ours.Build(&data, &dist, options).ok()) continue;

    ChosenPathIndex cp;
    ChosenPathOptions cp_options;
    cp_options.b1 = ExpectedCorrelatedSimilarity(dist, alpha);
    cp_options.b2 = ExpectedUncorrelatedSimilarity(dist) * 1.5;
    cp_options.repetitions = 8;
    cp_options.verify_threshold = alpha / 1.3;
    if (!cp.Build(&data, &dist, cp_options).ok()) continue;

    CorrelatedQuerySampler sampler(&dist, alpha);
    const int kQueries = 50;
    double oc = 0, cc = 0;
    int of = 0, cf = 0;
    for (int t = 0; t < kQueries; ++t) {
      VectorId target = static_cast<VectorId>(rng.NextBounded(n));
      SparseVector q = sampler.SampleCorrelated(data.Get(target), &rng);
      QueryStats s;
      auto h1 = ours.Query(q.span(), &s);
      if (h1 && h1->id == target) ++of;
      oc += static_cast<double>(s.candidates);
      auto h2 = cp.Query(q.span(), &s);
      if (h2 && h2->id == target) ++cf;
      cc += static_cast<double>(s.candidates);
    }
    ns.push_back(static_cast<double>(n));
    ours_cost.push_back(oc / kQueries + 1.0);
    cp_cost.push_back(cc / kQueries + 1.0);
    table.AddRow({Fmt(n), Fmt(oc / kQueries, 1), Fmt(cc / kQueries, 1),
                  Fmt(static_cast<double>(of) / kQueries, 2),
                  Fmt(static_cast<double>(cf) / kQueries, 2)});
  }
  table.Print();
  auto fo = FitPowerLaw(ns, ours_cost);
  auto fc = FitPowerLaw(ns, cp_cost);
  if (fo.ok() && fc.ok()) {
    std::printf(
        "  fitted exponents: ours rho_hat = %+.3f, chosen path rho_hat = "
        "%+.3f\n",
        fo->exponent, fc->exponent);
    std::printf("  paper shape (Figure 1): ours grows more slowly: %s\n",
                fo->exponent <= fc->exponent + 0.05 ? "MATCHES"
                                                    : "MISMATCH");
  }
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::AnalyticPart();
  skewsearch::MeasuredExtreme();
  skewsearch::MeasuredTheta();
  return 0;
}
