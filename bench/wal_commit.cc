// Copyright 2026 The skewsearch Authors.
// WAL commit bench: acknowledged-write throughput and commit latency
// per sync policy. The durability spectrum under test: kNone (no
// fsync — the upper bound), kInterval (piggybacked lazy syncs),
// kGroup (fsync before every ack, shared across concurrent
// committers), kAlways (a dedicated fsync per ack — the floor). The
// group-commit claim gets its own multi-threaded leg: with W
// committers sharing fsyncs, acked-write throughput should sit well
// above W times nothing — fsyncs per ack drop below 1.
//
// Stable metrics (deterministic): records appended, log bytes,
// records recovered by a full decode after close. Advisory: QPS and
// p50/p99 commit latency (wall clock).
//
// Flags: --json FILE   write metrics JSON (see bench_util.h)

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "durability/wal.h"

namespace skewsearch {
namespace {

struct PolicyResult {
  std::string tag;
  size_t appended = 0;
  uint64_t bytes = 0;
  uint64_t fsyncs = 0;
  size_t recovered = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

std::string BenchPath(const std::string& tag) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
         "/skewsearch_wal_bench_" + std::to_string(::getpid()) + "_" + tag +
         ".skw";
}

double Percentile(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0;
  const size_t k = std::min(
      latencies->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies->size())));
  std::nth_element(latencies->begin(), latencies->begin() + k,
                   latencies->end());
  return (*latencies)[k];
}

// Runs `appends` acknowledged inserts across `threads` committers and
// returns the filled result (recovered count from a post-close decode).
PolicyResult RunPolicy(SyncPolicy policy, const std::string& tag,
                       int threads, size_t appends) {
  PolicyResult r;
  r.tag = tag;
  const std::string path = BenchPath(tag);
  std::remove(path.c_str());

  WalWriterOptions options;
  options.sync_policy = policy;
  options.interval_ms = 5;
  auto writer = WalWriter::Open(path, options, 0, 1);
  if (!writer.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 writer.status().ToString().c_str());
    return r;
  }

  // A fixed 8-item payload: log bytes depend only on the append count.
  const std::vector<ItemId> items = {3, 7, 20, 55, 148, 403, 1096, 2980};
  std::vector<std::vector<double>> latencies(threads);
  const size_t per_thread = appends / threads;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> committers;
  for (int t = 0; t < threads; ++t) {
    committers.emplace_back([&, t] {
      latencies[t].reserve(per_thread);
      for (size_t i = 0; i < per_thread; ++i) {
        const auto begin = std::chrono::steady_clock::now();
        auto seq = (*writer)->Append(
            WalRecord::Type::kInsert,
            static_cast<VectorId>(100000 + t * per_thread + i), items);
        const auto end = std::chrono::steady_clock::now();
        if (!seq.ok()) return;
        latencies[t].push_back(
            std::chrono::duration<double, std::micro>(end - begin).count());
      }
    });
  }
  for (auto& thread : committers) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if ((*writer)->Sync().ok()) {
    // Everything acked is now on disk regardless of policy.
  }
  r.appended = (*writer)->num_appends();
  r.bytes = (*writer)->bytes();
  r.fsyncs = (*writer)->num_fsyncs();
  r.qps = seconds > 0 ? static_cast<double>(r.appended) / seconds : 0;

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  r.p50_us = Percentile(&all, 0.50);
  r.p99_us = Percentile(&all, 0.99);

  auto read = ReadWal(path);
  if (read.ok() && !read->truncated) r.recovered = read->records.size();
  std::remove(path.c_str());
  return r;
}

int Run(int argc, char** argv) {
  bench::JsonReporter reporter("wal_commit");
  bench::Banner("WAL commit throughput vs sync policy");

  struct Config {
    SyncPolicy policy;
    const char* tag;
    int threads;
    size_t appends;
  };
  const Config configs[] = {
      {SyncPolicy::kNone, "none", 1, 20000},
      {SyncPolicy::kInterval, "interval", 1, 20000},
      {SyncPolicy::kGroup, "group", 1, 4000},
      {SyncPolicy::kAlways, "always", 1, 4000},
      {SyncPolicy::kGroup, "group_mt4", 4, 8000},
  };

  bench::Table table({"policy", "threads", "acked", "QPS", "p50 us",
                      "p99 us", "fsyncs/ack", "recovered"});
  for (const Config& c : configs) {
    PolicyResult r = RunPolicy(c.policy, c.tag, c.threads, c.appends);
    const double fsyncs_per_ack =
        r.appended > 0
            ? static_cast<double>(r.fsyncs) / static_cast<double>(r.appended)
            : 0;
    table.AddRow({r.tag, bench::Fmt(c.threads, 0), bench::Fmt(r.appended, 0),
                  bench::Fmt(r.qps, 0), bench::Fmt(r.p50_us, 1),
                  bench::Fmt(r.p99_us, 1), bench::Fmt(fsyncs_per_ack, 3),
                  bench::Fmt(r.recovered, 0)});
    // Counts and bytes are append-count determined; QPS and latency
    // are machine facts.
    reporter.Metric("acked_" + r.tag, static_cast<double>(r.appended),
                    /*stable=*/true, "records");
    reporter.Metric("wal_bytes_" + r.tag, static_cast<double>(r.bytes),
                    /*stable=*/true, "bytes");
    reporter.Metric("recovered_" + r.tag, static_cast<double>(r.recovered),
                    /*stable=*/true, "records");
    reporter.Metric("qps_" + r.tag, r.qps, /*stable=*/false, "acks/s");
    reporter.Metric("p50_us_" + r.tag, r.p50_us, /*stable=*/false, "us");
    reporter.Metric("p99_us_" + r.tag, r.p99_us, /*stable=*/false, "us");
    if (c.threads > 1) {
      reporter.Metric("fsyncs_per_ack_" + r.tag, fsyncs_per_ack,
                      /*stable=*/false, "fsyncs");
    }
  }
  table.Print();
  bench::Note("group commit shares fsyncs: the mt4 leg's fsyncs/ack "
              "falling below 1.0 is the batching at work");

  return reporter.WriteIfRequested(argc, argv) ? 0 : 1;
}

}  // namespace
}  // namespace skewsearch

int main(int argc, char** argv) { return skewsearch::Run(argc, argv); }
