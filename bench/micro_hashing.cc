// Copyright 2026 The skewsearch Authors.
// Microbenchmarks: hashing primitives and the one-pass sketcher.
//
// Standalone timer harness (bench_util.h), no external dependency.
// The sketch section measures the fast one-pass sketcher against the
// classic t-pass MinHash it replaces — the "fast similarity sketching"
// speedup the hashing layer claims.
//
// Flags: --json FILE   write metrics JSON (see bench_util.h)

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hashing/mix.h"
#include "hashing/pairwise.h"
#include "hashing/path_hasher.h"
#include "hashing/sketch.h"
#include "hashing/tabulation.h"
#include "util/random.h"

namespace skewsearch {
namespace {

int Run(int argc, char** argv) {
  bench::Banner("Hashing primitives");
  bench::JsonReporter reporter("micro_hashing");

  bench::Table table({"primitive", "ns/op"});
  uint64_t x = 0x12345678;
  const double mix_ns = bench::NsPerOp([&] {
    x = Mix64(x);
    bench::DoNotOptimize(x);
  });
  table.AddRow({"Mix64", bench::Fmt(mix_ns, 2)});

  const double avalanche_ns = bench::NsPerOp([&] {
    x = Avalanche64(x);
    bench::DoNotOptimize(x);
  });
  table.AddRow({"Avalanche64", bench::Fmt(avalanche_ns, 2)});

  uint64_t b = 0x9876;
  const double mixpair_ns = bench::NsPerOp([&] {
    x = MixPair(x, b);
    bench::DoNotOptimize(x);
  });
  table.AddRow({"MixPair", bench::Fmt(mixpair_ns, 2)});

  Rng rng(1);
  PairwiseHash pairwise(&rng);
  const double pairwise_ns = bench::NsPerOp([&] {
    x = pairwise.HashInt(x);
    bench::DoNotOptimize(x);
  });
  table.AddRow({"PairwiseHash", bench::Fmt(pairwise_ns, 2)});

  TabulationHash tabulation(&rng);
  const double tabulation_ns = bench::NsPerOp([&] {
    x = tabulation.Hash(x);
    bench::DoNotOptimize(x);
  });
  table.AddRow({"TabulationHash", bench::Fmt(tabulation_ns, 2)});

  PathHasher hasher(42, 32, HashEngine::kMixer);
  uint64_t key = hasher.RootKey(0);
  uint32_t item = 0;
  const double draw_ns = bench::NsPerOp([&] {
    bench::DoNotOptimize(hasher.LevelDraw(1 + (item % 31), key, item));
    key += 0x9e3779b97f4a7c15ULL;
    ++item;
  });
  table.AddRow({"PathHasher::LevelDraw", bench::Fmt(draw_ns, 2)});
  table.Print();

  reporter.Metric("mix64_ns", mix_ns, /*stable=*/false, "ns");
  reporter.Metric("pairwise_ns", pairwise_ns, /*stable=*/false, "ns");
  reporter.Metric("tabulation_ns", tabulation_ns, /*stable=*/false, "ns");
  reporter.Metric("level_draw_ns", draw_ns, /*stable=*/false, "ns");

  bench::Banner("One-pass similarity sketching vs classic t-pass MinHash");
  bench::Table sketch_table({"t", "set", "classic_us", "fast_us", "speedup"});
  // The one-pass scheme wins when the set is large relative to t (its
  // per-element cost collapses to O(1) expected once the sketch fills);
  // 8192-element sets cover the join-verification regime it serves.
  for (uint32_t t : {64u, 256u, 1024u}) {
    std::vector<ItemId> items;
    Rng set_rng(9);
    for (size_t i = 0; i < 8192; ++i) {
      items.push_back(static_cast<ItemId>(set_rng.NextBounded(1u << 24)));
    }
    FastSketcher sketcher(t, 77);
    std::vector<double> sketch;
    const double classic_ns = bench::NsPerOp(
        [&] { sketcher.SketchClassic(items, &sketch); }, 5, 0.02);
    const double fast_ns =
        bench::NsPerOp([&] { sketcher.Sketch(items, &sketch); }, 5, 0.02);
    const double speedup = classic_ns / fast_ns;
    sketch_table.AddRow({bench::Fmt(static_cast<size_t>(t)),
                         bench::Fmt(items.size()),
                         bench::Fmt(classic_ns / 1e3, 1),
                         bench::Fmt(fast_ns / 1e3, 1),
                         bench::Fmt(speedup, 2)});
    reporter.Metric("sketch_speedup_t" + std::to_string(t), speedup,
                    /*stable=*/false, "x");
  }
  sketch_table.Print();

  return reporter.WriteIfRequested(argc, argv) ? 0 : 1;
}

}  // namespace
}  // namespace skewsearch

int main(int argc, char** argv) { return skewsearch::Run(argc, argv); }
