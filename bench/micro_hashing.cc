// Microbenchmarks: hashing primitives (google-benchmark).

#include <benchmark/benchmark.h>

#include "hashing/mix.h"
#include "hashing/pairwise.h"
#include "hashing/path_hasher.h"
#include "hashing/tabulation.h"
#include "util/random.h"

namespace skewsearch {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 0x12345678;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_Avalanche64(benchmark::State& state) {
  uint64_t x = 0x12345678;
  for (auto _ : state) {
    x = Avalanche64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Avalanche64);

void BM_MixPair(benchmark::State& state) {
  uint64_t a = 0x1234, b = 0x9876;
  for (auto _ : state) {
    a = MixPair(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_MixPair);

void BM_PairwiseHash(benchmark::State& state) {
  Rng rng(1);
  PairwiseHash hash(&rng);
  uint64_t x = 777;
  for (auto _ : state) {
    x = hash.HashInt(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_PairwiseHash);

void BM_TabulationHash(benchmark::State& state) {
  Rng rng(1);
  TabulationHash hash(&rng);
  uint64_t x = 777;
  for (auto _ : state) {
    x = hash.Hash(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_TabulationHash);

void BM_PathHasherLevelDraw(benchmark::State& state) {
  PathHasher hasher(42, 32, state.range(0) == 0 ? HashEngine::kMixer
                                                : HashEngine::kPairwise);
  uint64_t key = hasher.RootKey(0);
  uint32_t item = 0;
  for (auto _ : state) {
    double draw = hasher.LevelDraw(1 + (item % 31), key, item);
    benchmark::DoNotOptimize(draw);
    key += 0x9e3779b97f4a7c15ULL;
    ++item;
  }
}
BENCHMARK(BM_PathHasherLevelDraw)->Arg(0)->Arg(1);

void BM_RngNextDouble(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDouble());
  }
}
BENCHMARK(BM_RngNextDouble);

void BM_RngGeometricSkips(benchmark::State& state) {
  Rng rng(7);
  double p = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextGeometricSkips(p));
  }
}
BENCHMARK(BM_RngGeometricSkips)->Arg(10)->Arg(1000);

}  // namespace
}  // namespace skewsearch

BENCHMARK_MAIN();
