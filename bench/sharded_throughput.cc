// Copyright 2026 The skewsearch Authors.
// Sharded-index throughput: batch QPS vs shard count, plus online insert
// throughput of the dynamic layer.
//
// Part 1 builds a ShardedIndex at increasing shard counts K and answers
// the same correlated query batch with BatchQuery() at several worker
// counts, verifying along the way that every configuration returns
// results byte-identical to the unsharded SkewedPathIndex (the engine's
// core determinism contract). Part 2 builds a DynamicIndex and measures
// Insert() throughput at increasing writer counts, then verifies the
// inserted vectors are findable.
//
// Flags: --n <dataset> --queries <batch> --inserts <count> --alpha <corr>
//        --shards <list> --threads <list> --rounds <timed repetitions>
//        --json <file>  (bench JSON contract, see bench_util.h)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/dynamic_index.h"
#include "core/sharded_index.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace skewsearch {
namespace {

struct Config {
  size_t n = 20000;
  size_t num_queries = 4000;
  size_t num_inserts = 2000;
  double alpha = 0.8;
  int rounds = 3;
  std::vector<int> shards = {1, 2, 4, 8};
  std::vector<int> threads = {1, 4};
};

std::vector<int> ParseIntList(const char* text) {
  std::vector<int> out;
  std::string token;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) out.push_back(std::max(1, std::atoi(token.c_str())));
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return out.empty() ? std::vector<int>{1} : out;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--n") == 0) {
      config.n = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      config.num_queries = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--inserts") == 0) {
      config.num_inserts = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--alpha") == 0) {
      config.alpha = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      config.rounds = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      config.shards = ParseIntList(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.threads = ParseIntList(argv[i + 1]);
    }
  }
  return config;
}

bool SameResults(const std::vector<std::optional<Match>>& a,
                 const std::vector<std::optional<Match>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].has_value() != b[i].has_value()) return false;
    if (a[i].has_value() &&
        (a[i]->id != b[i]->id || a[i]->similarity != b[i]->similarity)) {
      return false;
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  Config config = ParseArgs(argc, argv);

  bench::Banner("Sharded-index throughput (QPS vs shards, insert rate)");
  bench::Note("hardware threads available: " +
              std::to_string(std::thread::hardware_concurrency()));

  auto dist = ZipfProbabilities(2000, 1.0, 0.3).value();
  Rng rng(99);
  Dataset data = GenerateDataset(dist, config.n, &rng);
  Dataset queries;
  CorrelatedQuerySampler sampler(&dist, config.alpha);
  for (size_t i = 0; i < config.num_queries; ++i) {
    SparseVector q = sampler.SampleCorrelated(
        data.Get(static_cast<VectorId>(i % data.size())), &rng);
    queries.Add(q.span());
  }

  SkewedIndexOptions index_options;
  index_options.mode = IndexMode::kCorrelated;
  index_options.alpha = config.alpha;
  index_options.build_threads = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));

  // Unsharded baseline: the answer sheet every sharded run must match.
  SkewedPathIndex baseline_index;
  Status built = baseline_index.Build(&data, &dist, index_options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
    return 1;
  }
  const auto baseline = baseline_index.BatchQuery(queries, 1);

  bool all_identical = true;
  bench::JsonReporter reporter("sharded_throughput");
  size_t baseline_matches = 0;
  for (const auto& match : baseline) baseline_matches += match.has_value();
  reporter.Metric("baseline_matches", static_cast<double>(baseline_matches),
                  /*stable=*/true, "matches");
  bench::Table table({"shards", "threads", "qps", "wall_s", "build_s",
                      "max/min shard", "identical"});
  for (int num_shards : config.shards) {
    ShardedIndexOptions sharded_options;
    sharded_options.index = index_options;
    sharded_options.num_shards = num_shards;
    ShardedIndex index;
    built = index.Build(&data, &dist, sharded_options);
    if (!built.ok()) {
      std::fprintf(stderr, "sharded build failed: %s\n",
                   built.ToString().c_str());
      return 1;
    }
    size_t min_entries = index.shard_entries(0), max_entries = min_entries;
    for (int s = 1; s < index.num_shards(); ++s) {
      min_entries = std::min(min_entries, index.shard_entries(s));
      max_entries = std::max(max_entries, index.shard_entries(s));
    }
    // Shard assignment is a pure hash of the build input, so the
    // balance ratio is deterministic — a stable gate metric.
    reporter.Metric("shard_balance_s" + std::to_string(num_shards),
                    min_entries > 0 ? static_cast<double>(max_entries) /
                                          static_cast<double>(min_entries)
                                    : 0.0,
                    /*stable=*/true, "x");
    for (int threads : config.threads) {
      ThreadPool pool(threads);
      std::vector<std::optional<Match>> results =
          index.BatchQuery(queries, &pool);  // warm-up
      double best_seconds = 0.0;
      for (int round = 0; round < config.rounds; ++round) {
        BatchQueryStats round_stats;
        results = index.BatchQuery(queries, &pool, nullptr, &round_stats);
        if (round == 0 || round_stats.wall_seconds < best_seconds) {
          best_seconds = round_stats.wall_seconds;
        }
      }
      const bool identical = SameResults(baseline, results);
      all_identical = all_identical && identical;
      const double qps =
          best_seconds > 0.0
              ? static_cast<double>(queries.size()) / best_seconds
              : 0.0;
      reporter.Metric("qps_s" + std::to_string(num_shards) + "_t" +
                          std::to_string(threads),
                      qps, /*stable=*/false, "qps");
      table.AddRow({bench::Fmt(num_shards), bench::Fmt(threads),
                    bench::Fmt(qps, 0), bench::Fmt(best_seconds, 4),
                    bench::Fmt(index.build_stats().build_seconds, 2),
                    bench::Fmt(min_entries > 0
                                   ? static_cast<double>(max_entries) /
                                         static_cast<double>(min_entries)
                                   : 0.0,
                               2),
                    identical ? "yes" : "NO"});
    }
  }
  table.Print();
  bench::Note(all_identical
                  ? "sharded results byte-identical to unsharded: OK"
                  : "DETERMINISM VIOLATION: sharded results differ!");

  // ---- Part 2: online insert throughput --------------------------------
  bench::Banner("Dynamic-index insert throughput");
  std::vector<SparseVector> fresh;
  fresh.reserve(config.num_inserts);
  for (size_t i = 0; i < config.num_inserts; ++i) {
    fresh.push_back(dist.Sample(&rng));
    if (fresh.back().span().empty()) {
      fresh.pop_back();
      --i;
    }
  }

  bench::Table insert_table(
      {"writers", "inserts/s", "wall_s", "tombstone rm/s"});
  for (int writers : config.threads) {
    DynamicIndexOptions dyn_options;
    dyn_options.index = index_options;
    dyn_options.num_shards =
        *std::max_element(config.shards.begin(), config.shards.end());
    DynamicIndex dynamic;
    built = dynamic.Build(&data, &dist, dyn_options);
    if (!built.ok()) {
      std::fprintf(stderr, "dynamic build failed: %s\n",
                   built.ToString().c_str());
      return 1;
    }
    std::vector<VectorId> inserted_ids(fresh.size());
    Timer timer;
    if (writers <= 1) {
      for (size_t i = 0; i < fresh.size(); ++i) {
        auto id = dynamic.Insert(fresh[i].span());
        inserted_ids[i] = id.ok() ? *id : 0;
      }
    } else {
      std::atomic<size_t> cursor{0};
      std::vector<std::thread> workers;
      for (int w = 0; w < writers; ++w) {
        workers.emplace_back([&] {
          for (size_t i = cursor.fetch_add(1); i < fresh.size();
               i = cursor.fetch_add(1)) {
            auto id = dynamic.Insert(fresh[i].span());
            inserted_ids[i] = id.ok() ? *id : 0;
          }
        });
      }
      for (auto& worker : workers) worker.join();
    }
    const double insert_seconds = timer.ElapsedSeconds();

    // Remove half of what we inserted to measure tombstoning (and let
    // compaction fire).
    Timer remove_timer;
    for (size_t i = 0; i < inserted_ids.size(); i += 2) {
      dynamic.Remove(inserted_ids[i]).ok();
    }
    const double remove_seconds = remove_timer.ElapsedSeconds();
    const double removes = static_cast<double>((inserted_ids.size() + 1) / 2);
    reporter.Metric("inserts_per_s_w" + std::to_string(writers),
                    insert_seconds > 0.0
                        ? static_cast<double>(fresh.size()) / insert_seconds
                        : 0.0,
                    /*stable=*/false, "inserts/s");
    insert_table.AddRow(
        {bench::Fmt(writers),
         bench::Fmt(insert_seconds > 0.0
                        ? static_cast<double>(fresh.size()) / insert_seconds
                        : 0.0,
                    0),
         bench::Fmt(insert_seconds, 4),
         bench::Fmt(remove_seconds > 0.0 ? removes / remove_seconds : 0.0,
                    0)});
  }
  insert_table.Print();
  reporter.Metric("results_identical", all_identical ? 1.0 : 0.0,
                  /*stable=*/true, "bool");
  bench::ReportRegistrySnapshot(&reporter);
  if (!reporter.WriteIfRequested(argc, argv)) return 1;
  return all_identical ? 0 : 2;
}

}  // namespace
}  // namespace skewsearch

int main(int argc, char** argv) { return skewsearch::Run(argc, argv); }
