// Exploration of the paper's Section 9 open problem: "find a class of
// distributions that accurately characterizes the skew of real data while
// remaining interesting for asymptotic analysis."
//
// For each candidate class we track, over growing n:
//   m(n)   = expected set size,
//   C(n)   = m(n)/ln n  (the paper needs this large: "interesting"),
//   the Theorem 1 exponent vs Chosen Path's (the skew advantage).
//
// Expected outcome: pure Zipf trivializes (C -> const or 0, as the paper
// observes); density-rescaled and piecewise Zipf keep C(n) = C0 while the
// advantage persists — concrete candidates for the open problem.

#include <cstdio>

#include "bench_util.h"
#include "core/zipf_analysis.h"

namespace skewsearch {
namespace {

using bench::Fmt;

void RunClass(const char* label, const ZipfClassOptions& options) {
  bench::Banner(label);
  auto points = AnalyzeZipfClass(
      options, {1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18});
  if (!points.ok()) {
    std::printf("  error: %s\n", points.status().ToString().c_str());
    return;
  }
  bench::Table table(
      {"n", "m(n)=E|x|", "C(n)=m/ln n", "rho_ours", "rho_cp", "gap"});
  for (const auto& pt : *points) {
    table.AddRow({Fmt(pt.n), Fmt(pt.expected_size, 1), Fmt(pt.c_of_n, 2),
                  Fmt(pt.rho_ours, 3), Fmt(pt.rho_chosen_path, 3),
                  Fmt(pt.gap, 3)});
  }
  table.Print();
}

void Run() {
  ZipfClassOptions pure;
  pure.kind = ZipfClass::kPureZipf;
  pure.exponent = 1.5;
  RunClass("Pure Zipf, s = 1.5 (the paper's trivializing case)", pure);
  bench::Note("C(n) decays and E|x| stays O(1): asymptotics trivialize,");
  bench::Note("matching the paper's Section 9 remark.");

  ZipfClassOptions pure1;
  pure1.kind = ZipfClass::kPureZipf;
  pure1.exponent = 1.0;
  RunClass("Pure Zipf, s = 1.0", pure1);
  bench::Note("E|x| ~ ln d keeps C(n) ~ 1/2 bounded: still too small for");
  bench::Note("the theorems' large-C regime.");

  ZipfClassOptions scaled;
  scaled.kind = ZipfClass::kScaledZipf;
  scaled.exponent = 1.0;
  scaled.c0 = 10.0;
  RunClass("Density-rescaled Zipf, s = 1.0, C0 = 10 (candidate answer)",
           scaled);
  bench::Note("C(n) pinned at C0 while the Zipf shape (and hence the");
  bench::Note("positive exponent gap over Chosen Path) is preserved.");

  ZipfClassOptions piecewise;
  piecewise.kind = ZipfClass::kPiecewiseZipf;
  piecewise.exponent = 1.1;
  piecewise.c0 = 10.0;
  RunClass("Piecewise Zipf, head = Theta(ln n), C0 = 10 (Sec. 8 shape)",
           piecewise);
  bench::Note("Matches the empirically observed piecewise-Zipfian profiles");
  bench::Note("of Figure 2 AND stays in the large-C regime: a class that");
  bench::Note("answers both halves of the open problem.");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::Run();
  return 0;
}
