// Validates the analytic cost model (core/cost_model.h — Lemma 6's
// recursion evaluated numerically) against measured index builds across
// distributions, deltas, and n: predicted vs measured filters/element.
// A model that tracks measurements lets users size indexes without
// building them.

#include <cstdio>

#include "bench_util.h"
#include "core/cost_model.h"
#include "core/skewed_index.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using bench::Fmt;

struct Scenario {
  const char* name;
  ProductDistribution dist;
  IndexMode mode;
  double alpha_or_b1;
};

void Run() {
  bench::Banner("Cost model: predicted vs measured filters per element");
  std::vector<Scenario> scenarios;
  scenarios.push_back({"uniform m=60, corr a=0.7",
                       UniformProbabilities(240, 0.25).value(),
                       IndexMode::kCorrelated, 0.7});
  scenarios.push_back({"two-block skew, corr a=0.7",
                       TwoBlockProbabilities(150, 0.25, 15000, 0.0015).value(),
                       IndexMode::kCorrelated, 0.7});
  scenarios.push_back({"two-block skew, corr a=0.5",
                       TwoBlockProbabilities(150, 0.25, 15000, 0.0015).value(),
                       IndexMode::kCorrelated, 0.5});
  scenarios.push_back({"two-block skew, adv b1=0.5",
                       TwoBlockProbabilities(150, 0.25, 15000, 0.0015).value(),
                       IndexMode::kAdversarial, 0.5});
  scenarios.push_back({"harmonic d=30000, adv b1=0.5",
                       HarmonicProbabilities(30000).value(),
                       IndexMode::kAdversarial, 0.5});

  bench::Table table({"scenario", "n", "predicted", "measured",
                      "pred/meas"});
  int within_2x = 0, total = 0;
  for (const Scenario& scenario : scenarios) {
    for (size_t n : {512, 2048}) {
      SkewedIndexOptions options;
      options.mode = scenario.mode;
      options.alpha = scenario.alpha_or_b1;
      options.b1 = scenario.alpha_or_b1;
      options.delta = 0.1;
      options.repetitions = 6;
      Rng rng(0xc057 + n);
      Dataset data = GenerateDataset(scenario.dist, n, &rng);
      SkewedPathIndex index;
      if (!index.Build(&data, &scenario.dist, options).ok()) continue;
      double measured = index.build_stats().avg_filters_per_element;
      auto predicted =
          PredictFiltersPerElement(scenario.dist, options, n);
      if (!predicted.ok()) continue;
      double ratio = measured > 0.0 ? *predicted / measured : 0.0;
      ++total;
      if (ratio > 0.5 && ratio < 2.0) ++within_2x;
      table.AddRow({scenario.name, Fmt(n), Fmt(*predicted, 2),
                    Fmt(measured, 2), Fmt(ratio, 2)});
    }
  }
  table.Print();
  std::printf("  %d/%d predictions within 2x of measurement\n", within_2x,
              total);
  bench::Note("deviations reflect the model's annealed approximation");
  bench::Note("(expectation over x and hashes; no without-replacement");
  bench::Note("correction) — Lemma 6 is an upper-bound argument, and the");
  bench::Note("model inherits that character.");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::Run();
  return 0;
}
