// Reproduces Table 1 of the paper: for each dataset, the ratio between the
// expected observed co-occurrence E_I[Pr_x(forall j in I: x_j = 1)] and the
// independence prediction E_I[prod_{j in I} p_j], for random item subsets
// of size |I| = 2 and 3.
//
// SUBSTITUTION: synthetic stand-ins replace the original datasets
// (DESIGN.md §5). Profiles the paper found near-independent are generated
// from a product distribution (ratio ~ 1); the four strongly dependent
// ones (KOSARAK, NETFLIX, ORKUT, SPOTIFY) carry a topic-model component
// whose strength was chosen to reproduce the paper's qualitative ordering
// (ratios > 1, growing with |I|, SPOTIFY the most extreme).

#include <cstdio>

#include "bench_util.h"
#include "data/mann_profiles.h"
#include "stats/independence.h"
#include "util/random.h"

namespace skewsearch {
namespace {

struct PaperRow {
  const char* name;
  double ratio2;
  double ratio3;
};

// Values from the paper's Table 1.
constexpr PaperRow kPaperTable[] = {
    {"AOL", 1.2, 3.9},          {"BMS-POS", 1.5, 3.9},
    {"DBLP", 1.4, 2.3},         {"ENRON", 2.9, 21.8},
    {"FLICKR", 1.7, 4.9},       {"KOSARAK", 7.1, 269.4},
    {"LIVEJOURNAL", 2.3, 7.3},  {"NETFLIX", 3.1, 24.0},
    {"ORKUT", 4.0, 37.9},       {"SPOTIFY", 24.7, 6022.1},
};

void Run() {
  using bench::Fmt;
  bench::Banner("Table 1: independence ratios, |I| = 2 and |I| = 3");
  Rng rng(0x7ab1e1);

  bench::Table table({"dataset", "paper |I|=2", "ours |I|=2", "paper |I|=3",
                      "ours |I|=3", "class"});
  bool ordering_ok = true;
  double spotify2 = 0.0, max_other2 = 0.0;
  for (const PaperRow& row : kPaperTable) {
    auto spec = FindMannProfile(row.name).value();
    spec.n = std::min<size_t>(spec.n, 6000);
    auto inst = BuildMannInstance(spec, &rng);
    if (!inst.ok()) continue;
    auto r2 = ExactIndependenceRatio(inst->data, 2);
    auto r3 = ExactIndependenceRatio(inst->data, 3);
    double v2 = r2.ok() ? r2->ratio : -1.0;
    double v3 = r3.ok() ? r3->ratio : -1.0;
    bool dependent = spec.topic_strength > 0.0;
    if (dependent && v3 < v2) ordering_ok = false;
    if (spec.name == "SPOTIFY") {
      spotify2 = v2;
    } else {
      max_other2 = std::max(max_other2, v2);
    }
    table.AddRow({row.name, Fmt(row.ratio2, 1), Fmt(v2, 2),
                  Fmt(row.ratio3, 1), Fmt(v3, 2),
                  dependent ? "dependent (topic model)" : "independent"});
  }
  table.Print();

  bench::Banner("Shape check vs paper");
  bench::Note("paper: all ratios >= 1; dependent datasets have |I|=3 ratio");
  bench::Note(">> |I|=2 ratio; SPOTIFY is the most extreme at |I|=2.");
  std::printf("  measured: |I|=3 > |I|=2 on all dependent stand-ins: %s\n",
              ordering_ok ? "MATCHES" : "MISMATCH");
  std::printf("  measured: SPOTIFY |I|=2 ratio (%.2f) is the largest "
              "(next: %.2f): %s\n",
              spotify2, max_other2,
              spotify2 > max_other2 ? "MATCHES" : "MISMATCH");
  bench::Note("absolute values depend on the real datasets' hidden");
  bench::Note("co-occurrence structure and are not expected to match;");
  bench::Note("the independent/dependent split and the ordering are.");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::Run();
  return 0;
}
