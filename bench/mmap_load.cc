// Copyright 2026 The skewsearch Authors.
// Frozen-shard load bench: heap Load() (deserialize the posting table
// into owned vectors) vs MapFrozen() (mmap the SKF1 file and serve the
// table zero-copy). The claim under test is the tentpole's: map time is
// O(1) in the index size — metadata validation only — while heap load
// is O(index), and the mapped index answers queries identically.
//
// Flags: --json FILE   write metrics JSON (see bench_util.h)

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sharded_index.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

double FileBytes(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<double>(st.st_size)
                                        : -1.0;
}

/// Current resident set in KB from /proc/self/status (-1 off Linux).
double RssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1.0;
  char line[256];
  double kb = -1.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

/// Milliseconds of the fastest of \p repeats runs of \p fn.
template <typename F>
double BestMs(F&& fn, int repeats = 5) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    fn();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count());
  }
  return best;
}

struct LoadTimes {
  double heap_ms = 0.0;
  double map_ms = 0.0;
  double frozen_bytes = 0.0;
  size_t entries = 0;
  size_t query_mismatches = 0;
};

LoadTimes RunCase(const std::string& tag, size_t n,
                  const ProductDistribution& dist) {
  Rng rng(1);
  Dataset data;
  for (size_t i = 0; i < n; ++i) data.Add(dist.Sample(&rng));
  if (!data.SetDimension(dist.dimension()).ok()) return {};

  ShardedIndexOptions options;
  options.index.mode = IndexMode::kCorrelated;
  options.index.alpha = 0.7;
  options.index.seed = 1;
  options.num_shards = 4;
  ShardedIndex built;
  if (!built.Build(&data, &dist, options).ok()) {
    std::fprintf(stderr, "build failed (n=%zu)\n", n);
    return {};
  }

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string stem = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                           "/skewsearch_mmap_bench_" +
                           std::to_string(::getpid()) + "_" + tag;
  const std::string heap_path = stem + ".skidx";
  const std::string frozen_path = stem + ".skf";
  LoadTimes times;
  if (!built.Save(heap_path).ok() || !built.Freeze(frozen_path).ok()) {
    std::fprintf(stderr, "persist failed (n=%zu)\n", n);
    return {};
  }
  times.frozen_bytes = FileBytes(frozen_path);
  times.entries = built.build_stats().total_filters;

  times.heap_ms = BestMs([&] {
    ShardedIndex loaded;
    bench::DoNotOptimize(loaded.Load(heap_path, &data, &dist));
  });
  times.map_ms = BestMs([&] {
    ShardedIndex mapped;
    bench::DoNotOptimize(mapped.MapFrozen(frozen_path, &data, &dist));
  });

  // Identity spot check: the mapped index must answer queries exactly
  // like the heap-loaded one (the full differential is in the tests;
  // here it guards the bench against measuring a broken mapping).
  ShardedIndex loaded;
  ShardedIndex mapped;
  if (!loaded.Load(heap_path, &data, &dist).ok() ||
      !mapped.MapFrozen(frozen_path, &data, &dist).ok()) {
    std::fprintf(stderr, "reload failed (n=%zu)\n", n);
    return times;
  }
  Rng query_rng(7);
  for (int q = 0; q < 50; ++q) {
    auto probe = data.Get(
        static_cast<VectorId>(query_rng.NextBounded(data.size())));
    QueryStats heap_stats, map_stats;
    auto heap_hit = loaded.Query(probe, &heap_stats);
    auto map_hit = mapped.Query(probe, &map_stats);
    const bool same_hit =
        heap_hit.has_value() == map_hit.has_value() &&
        (!heap_hit.has_value() || (heap_hit->id == map_hit->id &&
                                   heap_hit->similarity ==
                                       map_hit->similarity));
    if (!same_hit || heap_stats.candidates != map_stats.candidates) {
      times.query_mismatches++;
    }
  }

  std::remove(heap_path.c_str());
  std::remove(frozen_path.c_str());
  return times;
}

int Run(int argc, char** argv) {
  bench::Banner("Zero-copy mmap load vs heap load (SKF1 frozen shards)");
  bench::JsonReporter reporter("mmap_load");

  auto dist = ZipfProbabilities(5000, 1.0, 0.4).value();
  const double rss_before = RssKb();

  bench::Table table({"n", "entries", "frozen MB", "heap load ms",
                      "mmap ms", "speedup"});
  struct Case {
    const char* tag;
    size_t n;
  };
  const Case cases[] = {{"small", 1500}, {"large", 12000}};
  std::vector<LoadTimes> results;
  for (const Case& c : cases) {
    LoadTimes t = RunCase(c.tag, c.n, dist);
    results.push_back(t);
    const double speedup = t.map_ms > 0.0 ? t.heap_ms / t.map_ms : 0.0;
    table.AddRow({bench::Fmt(c.n), bench::Fmt(t.entries),
                  bench::Fmt(t.frozen_bytes / 1e6, 2),
                  bench::Fmt(t.heap_ms, 3), bench::Fmt(t.map_ms, 3),
                  bench::Fmt(speedup, 1)});
    const std::string tag = c.tag;
    reporter.Metric("frozen_bytes_" + tag, t.frozen_bytes,
                    /*stable=*/true, "bytes");
    reporter.Metric("posting_entries_" + tag,
                    static_cast<double>(t.entries), /*stable=*/true,
                    "entries");
    reporter.Metric("query_mismatches_" + tag,
                    static_cast<double>(t.query_mismatches),
                    /*stable=*/true, "queries");
    reporter.Metric("heap_load_ms_" + tag, t.heap_ms, /*stable=*/false,
                    "ms");
    reporter.Metric("mmap_map_ms_" + tag, t.map_ms, /*stable=*/false, "ms");
    reporter.Metric("map_speedup_" + tag, speedup, /*stable=*/false, "x");
  }
  table.Print();

  // The O(1)-start headline: growing the index ~8x should grow heap
  // load time roughly with it, while map time stays near-flat (it
  // validates a 64-byte header, a param block and one ShardInfo row per
  // shard — never the payload).
  if (results.size() == 2 && results[0].map_ms > 0.0 &&
      results[0].heap_ms > 0.0) {
    const double load_scale = results[1].heap_ms / results[0].heap_ms;
    const double map_scale = results[1].map_ms / results[0].map_ms;
    bench::Note("heap load scaled " + bench::Fmt(load_scale, 1) +
                "x with the index; mmap scaled " + bench::Fmt(map_scale, 1) +
                "x (O(1) start)");
    reporter.Metric("heap_load_scale", load_scale, /*stable=*/false, "x");
    reporter.Metric("mmap_map_scale", map_scale, /*stable=*/false, "x");
  }
  const double rss_after = RssKb();
  if (rss_before >= 0.0 && rss_after >= 0.0) {
    bench::Note("process RSS " + bench::Fmt(rss_after - rss_before, 0) +
                " KB over the run (mapped pages stay file-backed)");
    reporter.Metric("rss_delta_kb", rss_after - rss_before,
                    /*stable=*/false, "KB");
  }

  return reporter.WriteIfRequested(argc, argv) ? 0 : 1;
}

}  // namespace
}  // namespace skewsearch

int main(int argc, char** argv) { return skewsearch::Run(argc, argv); }
