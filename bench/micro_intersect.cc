// Microbenchmarks: intersection kernels and similarity measures.

#include <benchmark/benchmark.h>

#include <vector>

#include "data/sparse_vector.h"
#include "sim/intersect.h"
#include "sim/measures.h"
#include "util/random.h"

namespace skewsearch {
namespace {

std::vector<ItemId> MakeSorted(size_t count, ItemId universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<ItemId> ids;
  ids.reserve(count);
  while (ids.size() < count) {
    ids.push_back(static_cast<ItemId>(rng.NextBounded(universe)));
  }
  SparseVector v = SparseVector::FromIds(std::move(ids));
  return v.ids();
}

void BM_IntersectMerge(benchmark::State& state) {
  auto a = MakeSorted(static_cast<size_t>(state.range(0)), 1 << 20, 1);
  auto b = MakeSorted(static_cast<size_t>(state.range(0)), 1 << 20, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectSizeMerge(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_IntersectMerge)->Arg(64)->Arg(256)->Arg(1024);

void BM_IntersectGallopingAsymmetric(benchmark::State& state) {
  auto a = MakeSorted(32, 1 << 20, 1);
  auto b = MakeSorted(static_cast<size_t>(state.range(0)), 1 << 20, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectSizeGalloping(a, b));
  }
}
BENCHMARK(BM_IntersectGallopingAsymmetric)->Arg(1024)->Arg(16384);

void BM_IntersectAutoAsymmetric(benchmark::State& state) {
  auto a = MakeSorted(32, 1 << 20, 1);
  auto b = MakeSorted(static_cast<size_t>(state.range(0)), 1 << 20, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectSize(a, b));
  }
}
BENCHMARK(BM_IntersectAutoAsymmetric)->Arg(1024)->Arg(16384);

void BM_BraunBlanquet(benchmark::State& state) {
  auto a = MakeSorted(256, 1 << 16, 3);
  auto b = MakeSorted(256, 1 << 16, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BraunBlanquet(a, b));
  }
}
BENCHMARK(BM_BraunBlanquet);

}  // namespace
}  // namespace skewsearch

BENCHMARK_MAIN();
