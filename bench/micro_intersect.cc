// Copyright 2026 The skewsearch Authors.
// Microbenchmark: sorted-set intersection kernels (the verification
// inner loop of every query and join).
//
// Times the scalar merge reference against the runtime-selected SIMD
// kernel (core/intersect.h) and the galloping path across size and
// overlap regimes, asserts the kernels agree with the reference on
// every timed input, and (with --require-speedup X) fails unless the
// SIMD kernel beats the scalar reference by at least X on the balanced
// regimes — the CI Release leg passes 1.5.
//
// Flags: --json FILE            write metrics JSON (see bench_util.h)
//        --require-speedup X    exit nonzero unless min balanced
//                               speedup >= X

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/intersect.h"
#include "data/sparse_vector.h"
#include "sim/intersect.h"
#include "util/random.h"

namespace skewsearch {
namespace {

std::vector<ItemId> MakeSorted(size_t count, ItemId universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<ItemId> ids;
  ids.reserve(count);
  while (ids.size() < count) {
    ids.push_back(static_cast<ItemId>(rng.NextBounded(universe)));
  }
  SparseVector v = SparseVector::FromIds(std::move(ids));
  return v.ids();
}

int Run(int argc, char** argv) {
  double require_speedup = 0.0;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--require-speedup") == 0) {
      require_speedup = std::atof(argv[i + 1]);
    }
  }

  bench::Banner("Sorted-set intersection kernels");
  bench::Note(std::string("active kernel: ") +
              IntersectKernelName(ActiveIntersectKernel()));
  bench::JsonReporter reporter("micro_intersect");

  // Balanced regimes: equal-size lists at a universe giving ~6%
  // overlap. These route to the block kernels, the case the SIMD path
  // exists for.
  bench::Table table({"size", "overlap", "scalar_ns", "kernel_ns", "speedup",
                      "galloping_ns"});
  double min_balanced_speedup = 0.0;
  bool first = true;
  bool all_agree = true;
  for (size_t size : {256u, 1024u, 4096u, 16384u}) {
    auto a = MakeSorted(size, static_cast<ItemId>(size * 16), 2 * size + 1);
    auto b = MakeSorted(size, static_cast<ItemId>(size * 16), 2 * size + 2);
    const size_t expect = IntersectSizeScalar(a, b);
    all_agree = all_agree && IntersectSizeKernel(a, b) == expect &&
                IntersectSizeGalloping(a, b) == expect;
    const double scalar_ns =
        bench::NsPerOp([&] { bench::DoNotOptimize(IntersectSizeScalar(a, b)); });
    const double kernel_ns =
        bench::NsPerOp([&] { bench::DoNotOptimize(IntersectSizeKernel(a, b)); });
    const double gallop_ns = bench::NsPerOp(
        [&] { bench::DoNotOptimize(IntersectSizeGalloping(a, b)); });
    const double speedup = scalar_ns / kernel_ns;
    min_balanced_speedup =
        first ? speedup : std::min(min_balanced_speedup, speedup);
    first = false;
    table.AddRow({bench::Fmt(size), bench::Fmt(expect), bench::Fmt(scalar_ns, 1),
                  bench::Fmt(kernel_ns, 1), bench::Fmt(speedup, 2),
                  bench::Fmt(gallop_ns, 1)});
    const std::string tag = std::to_string(size);
    reporter.Metric("intersect_size_" + tag, static_cast<double>(expect),
                    /*stable=*/true, "elements");
    reporter.Metric("scalar_ns_" + tag, scalar_ns, /*stable=*/false, "ns");
    reporter.Metric("kernel_ns_" + tag, kernel_ns, /*stable=*/false, "ns");
    reporter.Metric("speedup_" + tag, speedup, /*stable=*/false, "x");
  }
  table.Print();

  // Asymmetric regime: tiny probe against a large posting list — the
  // galloping route IntersectSizeKernel takes on skewed inputs.
  bench::Table asym({"small", "large", "kernel_ns", "galloping_ns"});
  for (size_t large : {4096u, 65536u}) {
    auto a = MakeSorted(32, static_cast<ItemId>(large * 4), 7);
    auto b = MakeSorted(large, static_cast<ItemId>(large * 4), 8);
    all_agree =
        all_agree && IntersectSizeKernel(a, b) == IntersectSizeScalar(a, b);
    const double kernel_ns =
        bench::NsPerOp([&] { bench::DoNotOptimize(IntersectSizeKernel(a, b)); });
    const double gallop_ns = bench::NsPerOp(
        [&] { bench::DoNotOptimize(IntersectSizeGalloping(a, b)); });
    asym.AddRow({bench::Fmt(size_t{32}), bench::Fmt(large),
                 bench::Fmt(kernel_ns, 1),
                 bench::Fmt(gallop_ns, 1)});
    reporter.Metric("asym_kernel_ns_" + std::to_string(large), kernel_ns,
                    /*stable=*/false, "ns");
  }
  asym.Print();

  reporter.Metric("kernels_agree", all_agree ? 1.0 : 0.0, /*stable=*/true,
                  "bool");
  reporter.Metric("min_balanced_speedup", min_balanced_speedup,
                  /*stable=*/false, "x");
  bench::Note("kernels agree with scalar reference: " +
              std::string(all_agree ? "yes" : "NO"));
  bench::Note("min balanced speedup: " + bench::Fmt(min_balanced_speedup, 2));

  if (!reporter.WriteIfRequested(argc, argv)) return 1;
  if (!all_agree) {
    std::fprintf(stderr, "kernel/scalar mismatch\n");
    return 1;
  }
  if (require_speedup > 0.0 && min_balanced_speedup < require_speedup) {
    std::fprintf(stderr, "speedup %.2f below required %.2f\n",
                 min_balanced_speedup, require_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace skewsearch

int main(int argc, char** argv) { return skewsearch::Run(argc, argv); }
