// Ablation for the paper's Section 9 open question: how much does the
// index lose when the item probabilities p_i are *estimated from the
// dataset* instead of known exactly? We compare recall, query cost, and
// the solved exponent for ground-truth vs estimated distributions, at
// several dataset sizes (estimation quality improves with n).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/rho.h"
#include "core/skewed_index.h"
#include "data/correlated.h"
#include "data/estimate.h"
#include "data/generators.h"
#include "util/random.h"

namespace skewsearch {
namespace {

using bench::Fmt;

void Run() {
  const double alpha = 0.7;
  auto truth = TwoBlockProbabilities(150, 0.25, 20000, 0.004).value();
  double rho_truth = CorrelatedRho(truth, alpha).value();

  bench::Banner("Ablation: known vs estimated item probabilities (Sec. 9)");
  bench::Note("truth: 150 dims at 0.25 + 20000 at 0.004, alpha = 0.7, "
              "rho(truth) = " + Fmt(rho_truth, 3));
  bench::Table table({"n", "rho(estimated)", "recall known", "recall est",
                      "cand/q known", "cand/q est"});

  for (size_t n : {256, 1024, 4096}) {
    Rng rng(0xab1a + n);
    Dataset data = GenerateDataset(truth, n, &rng);
    auto estimated = EstimateFrequencies(data);
    if (!estimated.ok()) continue;
    double rho_est = CorrelatedRho(*estimated, alpha).value();

    auto measure = [&](const ProductDistribution& dist, uint64_t seed,
                       double* recall, double* cost) {
      SkewedPathIndex index;
      SkewedIndexOptions options;
      options.mode = IndexMode::kCorrelated;
      options.alpha = alpha;
      options.repetitions = 8;
      options.delta = 0.1;
      options.seed = seed;
      if (!index.Build(&data, &dist, options).ok()) {
        *recall = -1;
        *cost = -1;
        return;
      }
      CorrelatedQuerySampler sampler(&truth, alpha);
      Rng qrng(seed ^ 0x123);
      const int kQueries = 50;
      int found = 0;
      double candidates = 0;
      for (int t = 0; t < kQueries; ++t) {
        VectorId target = static_cast<VectorId>(qrng.NextBounded(n));
        SparseVector q = sampler.SampleCorrelated(data.Get(target), &qrng);
        QueryStats s;
        auto h = index.Query(q.span(), &s);
        found += (h && h->id == target);
        candidates += static_cast<double>(s.candidates);
      }
      *recall = static_cast<double>(found) / kQueries;
      *cost = candidates / kQueries;
    };

    double rk, ck, re, ce;
    measure(truth, 0x1111, &rk, &ck);
    measure(*estimated, 0x2222, &re, &ce);
    table.AddRow({Fmt(n), Fmt(rho_est, 3), Fmt(rk, 2), Fmt(re, 2),
                  Fmt(ck, 1), Fmt(ce, 1)});
  }
  table.Print();
  bench::Note("expected shape (paper's conjecture in Sec. 9): estimated");
  bench::Note("probabilities converge to the truth, so recall and cost with");
  bench::Note("estimation approach the known-p numbers as n grows.");
}

}  // namespace
}  // namespace skewsearch

int main() {
  skewsearch::Run();
  return 0;
}
